"""The public LAPI interface.

One :class:`Lapi` object per task implements the full function set of
the paper's Table 1:

=======================  =====================================
Paper function           Method here
=======================  =====================================
LAPI_Init / LAPI_Term    :meth:`Lapi.init` / :meth:`Lapi.term`
LAPI_Amsend              :meth:`Lapi.amsend`
LAPI_Put / LAPI_Get      :meth:`Lapi.put` / :meth:`Lapi.get`
LAPI_Rmw                 :meth:`Lapi.rmw` (+ :meth:`Lapi.rmw_sync`)
LAPI_Setcntr             :meth:`Lapi.setcntr`
LAPI_Waitcntr            :meth:`Lapi.waitcntr`
LAPI_Getcntr             :meth:`Lapi.getcntr`
LAPI_Fence / LAPI_Gfence :meth:`Lapi.fence` / :meth:`Lapi.gfence`
LAPI_Address_init        :meth:`Lapi.address_init`
LAPI_Qenv / LAPI_Senv    :meth:`Lapi.qenv` / :meth:`Lapi.senv`
LAPI_Probe               :meth:`Lapi.probe`
=======================  =====================================

All communication methods are generator coroutines: call them with
``yield from`` on a node CPU thread.  Data-transfer calls are
non-blocking (they return once the operation is queued -- the paper's
"unordered pipelining"); completion is observed through counters.
Blocking convenience wrappers (``put_sync`` etc.) pair each call with
an immediate Waitcntr, exactly the "simple extension" section 3 notes.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Generator, Optional,
                    Union)

from ..errors import LapiError
from ..machine.cpu import INTERRUPT
from .amsend import do_amsend
from .constants import PacketKind, QenvKey, RmwOp, SenvKey
from .context import LapiContext, RmwPending
from .counters import LapiCounter
from .dispatcher import Dispatcher
from .env import do_qenv, do_senv
from .fence import do_fence, do_gfence
from .protocol import PROTO
from .putget import do_get, do_put
from .reliability import ReliableTransport
from .rmw import do_rmw

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cluster import Task
    from ..machine.cpu import Thread

__all__ = ["Lapi"]


class Lapi:
    """LAPI communication handle of one task.

    Constructed by :meth:`repro.machine.cluster.Cluster.run_job`; user
    code reaches it as ``task.lapi``.
    """

    def __init__(self, task: "Task", interrupt_mode: bool = True,
                 error_handler: Optional[Callable] = None) -> None:
        self.task = task
        self.config = task.node.config
        self.ctx = LapiContext(task.cluster.sim, task.rank, task.size)
        self.interrupt_mode = interrupt_mode
        self.client = None
        self.transport: Optional[ReliableTransport] = None
        self.dispatcher: Optional[Dispatcher] = None
        self._initialized = False
        self._terminated = False
        #: User error handler (the ``LAPI_Init`` registration): called
        #: with the terminal error when the transport declares a peer
        #: unreachable.  A truthy return suppresses the failure (the
        #: handler recovered); otherwise the run terminates cleanly
        #: through ``Cluster.fail_run``.
        self._error_handler: Optional[Callable] = None
        self.register_error_handler(error_handler)

    # convenient shorthands ------------------------------------------------
    @property
    def memory(self):
        return self.task.node.memory

    @property
    def sim(self):
        return self.task.cluster.sim

    @property
    def spans(self):
        """The cluster's span recorder, or None when tracing is off."""
        return self.task.cluster.sim.spans

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.ctx.size

    @property
    def stats(self):
        return self.ctx.stats

    def current_thread(self) -> "Thread":
        """The CPU thread executing the current call."""
        return self.task.node.cpu.current_thread()

    def _check_live(self) -> None:
        if not self._initialized:
            raise LapiError("LAPI used before LAPI_Init")
        if self._terminated:
            raise LapiError("LAPI used after LAPI_Term")

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def init(self) -> Generator:
        """LAPI_Init: attach to the adapter and start progress engines."""
        if self._initialized:
            raise LapiError("LAPI_Init called twice")
        thread = self.current_thread()
        yield from thread.execute(self.config.lapi_call_overhead)
        adapter = self.task.node.adapter
        self.client = adapter.attach_client(PROTO)
        cfg = self.config
        # adaptive_rto=None means auto: Jacobson/Karels timing exactly
        # when a fault schedule is installed, fixed-timeout arithmetic
        # (and its bit-exact virtual-time trajectory) otherwise.
        adaptive = (cfg.adaptive_rto if cfg.adaptive_rto is not None
                    else self.task.cluster.faults is not None)
        self.transport = ReliableTransport(
            self.sim, adapter, PROTO,
            window=cfg.lapi_window,
            timeout=cfg.lapi_retrans_timeout,
            adaptive=adaptive, rto_min=cfg.rto_min,
            rto_max=cfg.rto_max, backoff=cfg.rto_backoff,
            degraded_after=cfg.peer_degraded_after,
            retry_budget=cfg.retry_budget)
        self.dispatcher = Dispatcher(self)
        self.transport.wait_credit = self._wait_credit
        self.transport.on_progress = self.ctx.progress_ws.notify_all
        self.transport.on_fatal = self._transport_fatal
        self.client.delivery_filter = self._ack_fast_path
        self.client.on_arrival = self._spawn_interrupt_dispatcher
        self.client.interrupts_enabled = self.interrupt_mode
        self._register_metrics()
        resilience = self.task.cluster.resilience
        if resilience is not None:
            resilience.attach_stack(self.task.node.node_id, self)
        self._initialized = True

    def _register_metrics(self) -> None:
        """Wire this stack into the cluster's observability registry."""
        from ..obs import DEPTH_BUCKETS
        metrics = self.task.cluster.metrics
        rank = self.ctx.rank
        self.transport.ack_rtt = metrics.histogram(
            "core.reliability", "ack_rtt_us", node=rank)
        metrics.register_collector("core.reliability",
                                   self.transport.metrics, node=rank)
        telemetry = self.task.cluster.telemetry
        if telemetry is not None:
            # Timeline-only goodput/retransmit streams: per-window
            # curves with no end-of-run metric, so the registry's
            # snapshots/renders stay identical armed or disarmed.
            tl = telemetry.timeline
            self.transport.rx_goodput_bytes = tl.stream_counter(
                "telemetry.transport", "rx_payload_bytes", node=rank)
            self.transport.rx_goodput_packets = tl.stream_counter(
                "telemetry.transport", "rx_packets", node=rank)
            self.transport.retx_stream = tl.stream_counter(
                "telemetry.transport", "retransmits", node=rank)
        self.dispatcher.ooo_depth = metrics.histogram(
            "core.dispatcher", "reassembly_ooo_depth", node=rank,
            buckets=DEPTH_BUCKETS)
        metrics.register_collector("core.dispatcher",
                                   self._dispatcher_metrics, node=rank)

    def _dispatcher_metrics(self) -> dict:
        s = self.ctx.stats
        return {
            "packets_processed": s.packets_processed,
            "interrupts_taken": s.interrupts_taken,
            "hdr_handlers_run": s.hdr_handlers_run,
            "cmpl_handlers_run": s.cmpl_handlers_run,
            "bytes_sent": s.bytes_sent,
            "bytes_received": s.bytes_received,
            "local_fastpaths": s.local_fastpaths,
        }

    def _wait_credit(self, thread, event) -> Generator:
        """Block on a send-window credit, driving progress if polling."""
        if self.interrupt_mode:
            yield from thread.wait(event)
        else:
            while not event.triggered:
                yield from self.dispatcher.poll_step(thread)

    def register_error_handler(self, fn: Optional[Callable]) -> None:
        """Register (or clear) the LAPI error handler.

        ``LAPI_Init`` semantics: ``fn(err)`` is invoked when the
        transport hits a terminal failure (peer unreachable after
        exhausting retransmissions).  Returning a truthy value marks
        the error handled and the run continues; otherwise -- or with
        no handler registered -- the run terminates cleanly through
        :meth:`repro.machine.cluster.Cluster.fail_run` with the error's
        node/peer/attempt context intact.

        The handler must be callable (validated here, at registration,
        so a bad handler fails loudly at ``LAPI_Init`` instead of
        silently at first-failure time deep in a kernel callback).
        """
        if fn is not None and not callable(fn):
            raise LapiError(
                f"LAPI error handler must be callable, got"
                f" {type(fn).__name__}")
        self._error_handler = fn

    def _transport_fatal(self, err) -> None:
        """Terminal transport failure: user handler, then fail_run.

        The handler runs inside a bare kernel timer callback (the
        retransmit timer) or a detector conviction, so an exception it
        raises must not escape: it is captured, chained to the original
        transport error (``__cause__``), and routed through
        ``Cluster.fail_run`` like the failure it was handling.
        """
        handler = self._error_handler
        if handler is not None:
            try:
                if handler(err):
                    return
            except BaseException as handler_exc:
                handler_exc.__cause__ = err
                self.task.cluster.fail_run(handler_exc)
                return
        self.task.cluster.fail_run(err)

    # ------------------------------------------------------------------
    # failure-detector integration (called by repro.resilience)
    # ------------------------------------------------------------------
    def peer_unreachable(self, peer: int, err) -> None:
        """The failure detector convicted ``peer``.

        Crash-aware cleanup first (always): the peer joins
        ``ctx.dead_peers`` (gfence rounds stop waiting for its token),
        the transport's circuit breaker opens and in-flight operations
        toward it complete in error (counters fire, credits post), and
        progress waiters are notified so blocked predicates re-check.
        Then policy: under ``on_peer_failure="fail"`` the error routes
        through the registered handler and ``Cluster.fail_run``; under
        ``"continue"`` the survivors keep running degraded.
        """
        self.ctx.dead_peers.add(peer)
        self.transport.peer_down(peer)
        self.ctx.progress_ws.notify_all()
        if self.task.cluster.on_peer_failure == "fail":
            self._transport_fatal(err)

    def peer_absolved(self, peer: int) -> None:
        """The detector heard from a convicted peer again (machine
        restart): close the breaker.  The peer's *task* stays dead, so
        it remains in ``dead_peers`` -- reachability is not
        resurrection."""
        self.transport.breaker_close(peer)

    def crash_reset(self) -> None:
        """This stack's own node restarted after a fail-stop crash:
        clear all protocol state (the restarted machine has no memory
        of in-flight transfers)."""
        self.transport._tx.clear()
        self.transport._rx.clear()
        ctx = self.ctx
        ctx.send_msgs.clear()
        ctx.recv_asm.clear()
        ctx.pending_gets.clear()
        ctx.pending_rmws.clear()
        ctx.outstanding.clear()
        ctx.barrier_tokens.clear()

    def _ack_fast_path(self, packet) -> bool:
        """Adapter-level handling of transport acknowledgements.

        Window bookkeeping is adapter-assisted: ACKs neither occupy the
        RX FIFO nor raise interrupts, so pure ack traffic never
        perturbs dispatcher scheduling (and cannot mask data-packet
        interrupts).
        """
        if packet.kind == PacketKind.ACK:
            self.transport.on_ack(packet)
            return True
        return False

    def term(self) -> Generator:
        """LAPI_Term: quiesce (collective) and detach."""
        self._check_live()
        yield from self.gfence()
        yield from self.wait_for(lambda: self.ctx.active_handlers == 0)
        # All peers have passed the gfence: nothing further will arrive.
        self._terminated = True
        self.client.interrupts_enabled = False

    def _spawn_interrupt_dispatcher(self) -> None:
        """Adapter arrival hook: run the dispatcher at interrupt priority."""
        self.task.node.cpu.spawn(
            self.dispatcher.interrupt_service,
            name=f"lapi{self.rank}.irq", priority=INTERRUPT)

    def set_interrupt_mode(self, enabled: bool) -> None:
        """Switch between interrupt (True) and polling (False) modes."""
        self.interrupt_mode = enabled
        if self.client is not None:
            self.client.interrupts_enabled = enabled
            if enabled:
                self.client.arm_interrupt()

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def counter(self, name: str = "") -> LapiCounter:
        """Create a completion counter (registered for remote updates).

        Counters are identified across tasks by creation order, so SPMD
        code that creates them symmetrically can pass ``cntr.id`` as a
        ``tgt_cntr`` argument.
        """
        return self.ctx.new_counter(name=name)

    def setcntr(self, cntr: LapiCounter, value: int) -> None:
        """LAPI_Setcntr."""
        cntr.set(value)

    def getcntr(self, cntr: LapiCounter) -> Generator:
        """LAPI_Getcntr: read a counter; drives progress when polling."""
        self._check_live()
        thread = self.current_thread()
        yield from thread.execute(self.config.lapi_call_overhead * 0.5)
        if not self.interrupt_mode and self.client.pending > 0:
            yield from self.dispatcher.drain(thread)
        return cntr.value

    def waitcntr(self, cntr: LapiCounter, value: int = 1) -> Generator:
        """LAPI_Waitcntr: block until ``cntr`` reaches ``value``; the
        counter is decremented by ``value`` on return (section 2.3)."""
        self._check_live()
        thread = self.current_thread()
        yield from thread.execute(self.config.lapi_call_overhead * 0.5)
        if self.interrupt_mode:
            ev = cntr.wait_event(value)
            if not ev.triggered:
                yield from thread.wait(ev)
        else:
            while not cntr.try_consume(value):
                yield from self.dispatcher.poll_step(thread)

    def probe(self) -> Generator:
        """LAPI_Probe: explicitly drive progress (polling mode)."""
        self._check_live()
        thread = self.current_thread()
        yield from thread.execute(self.config.poll_check_cost)
        if self.client.pending > 0:
            yield from self.dispatcher.drain(thread)

    def wait_for(self, predicate: Callable[[], bool]) -> Generator:
        """Block until ``predicate()`` holds, driving progress as the
        current mode requires.  Internal building block for fence,
        rmw_sync, and the GA layer."""
        thread = self.current_thread()
        while not predicate():
            if self.interrupt_mode:
                yield from thread.wait(self.ctx.progress_ws.wait())
            else:
                yield from self.dispatcher.poll_step(thread)

    # ------------------------------------------------------------------
    # data transfer
    # ------------------------------------------------------------------
    def put(self, target: int, length: int, tgt_addr: int, org_addr: int,
            tgt_cntr: Optional[int] = None,
            org_cntr: Optional[LapiCounter] = None,
            cmpl_cntr: Optional[LapiCounter] = None) -> Generator:
        """LAPI_Put (non-blocking remote write).  ``tgt_cntr`` is the
        *target task's* counter id; ``org_cntr``/``cmpl_cntr`` are local
        counter objects."""
        self._check_live()
        yield from do_put(self, target, length, tgt_addr, org_addr,
                          tgt_cntr, org_cntr, cmpl_cntr)

    def get(self, target: int, length: int, tgt_addr: int, org_addr: int,
            tgt_cntr: Optional[int] = None,
            org_cntr: Optional[LapiCounter] = None) -> Generator:
        """LAPI_Get (non-blocking remote read into ``org_addr``)."""
        self._check_live()
        yield from do_get(self, target, length, tgt_addr, org_addr,
                          tgt_cntr, org_cntr)

    def amsend(self, target: int, handler_id: int, uhdr: bytes,
               udata: Union[int, bytes, None] = None, udata_len: int = 0,
               tgt_cntr: Optional[int] = None,
               org_cntr: Optional[LapiCounter] = None,
               cmpl_cntr: Optional[LapiCounter] = None) -> Generator:
        """LAPI_Amsend (non-blocking active message)."""
        self._check_live()
        yield from do_amsend(self, target, handler_id, uhdr, udata,
                             udata_len, tgt_cntr, org_cntr, cmpl_cntr)

    def putv(self, target: int, runs, tgt_cntr: Optional[int] = None,
             org_cntr: Optional[LapiCounter] = None,
             cmpl_cntr: Optional[LapiCounter] = None) -> Generator:
        """LAPI_Putv -- the non-contiguous put of section 6's future
        work: one call scatters ``(tgt_addr, org_addr, nbytes)`` runs."""
        self._check_live()
        from .vector import do_putv
        yield from do_putv(self, target, runs, tgt_cntr, org_cntr,
                           cmpl_cntr)

    def getv(self, target: int, runs,
             org_cntr: Optional[LapiCounter] = None) -> Generator:
        """LAPI_Getv -- the non-contiguous get of section 6's future
        work: one call gathers ``(tgt_addr, org_addr, nbytes)`` runs."""
        self._check_live()
        from .vector import do_getv
        yield from do_getv(self, target, runs, org_cntr)

    def rmw(self, op: RmwOp, target: int, tgt_addr: int, in_val: int,
            cmp_val: Optional[int] = None,
            prev_addr: Optional[int] = None,
            org_cntr: Optional[LapiCounter] = None) -> Generator:
        """LAPI_Rmw (non-blocking atomic op); returns a pending handle."""
        self._check_live()
        pending = yield from do_rmw(self, op, target, tgt_addr, in_val,
                                    cmp_val, prev_addr, org_cntr)
        return pending

    # ------------------------------------------------------------------
    # blocking conveniences ("a simple extension", section 3)
    # ------------------------------------------------------------------
    def put_sync(self, target: int, length: int, tgt_addr: int,
                 org_addr: int, tgt_cntr: Optional[int] = None) -> Generator:
        """Put and wait until the data has completed at the target."""
        cmpl = self.counter()
        yield from self.put(target, length, tgt_addr, org_addr,
                            tgt_cntr=tgt_cntr, cmpl_cntr=cmpl)
        yield from self.waitcntr(cmpl, 1)

    def get_sync(self, target: int, length: int, tgt_addr: int,
                 org_addr: int) -> Generator:
        """Get and wait until the data has arrived locally."""
        org = self.counter()
        yield from self.get(target, length, tgt_addr, org_addr,
                            org_cntr=org)
        yield from self.waitcntr(org, 1)

    def rmw_sync(self, op: RmwOp, target: int, tgt_addr: int, in_val: int,
                 cmp_val: Optional[int] = None) -> Generator:
        """Rmw and wait; returns the previous value of the target word."""
        pending: RmwPending = yield from self.rmw(
            op, target, tgt_addr, in_val, cmp_val=cmp_val)
        yield from self.wait_for(lambda: pending.done)
        return pending.prev_value

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def fence(self, target: Optional[int] = None) -> Generator:
        """LAPI_Fence: wait for this task's data transfers to complete."""
        self._check_live()
        yield from do_fence(self, target)

    def gfence(self) -> Generator:
        """LAPI_Gfence: collective fence + barrier."""
        self._check_live()
        yield from do_gfence(self)

    barrier = gfence

    # ------------------------------------------------------------------
    # addresses, handlers, environment
    # ------------------------------------------------------------------
    def register_handler(self, fn: Callable) -> int:
        """Register an AM header handler; returns its id.

        SPMD programs registering handlers in the same order on every
        task obtain matching ids (the analogue of identical function
        addresses in identically linked executables).
        """
        self.ctx.handlers.append(fn)
        return len(self.ctx.handlers) - 1

    def address_init(self, value: Any) -> Generator:
        """LAPI_Address_init: collective exchange of one value per task.

        Returns the list indexed by rank.  The exchange itself rides the
        service network (out of band), as address setup did on real SP
        systems; the trailing gfence synchronizes through the switch.
        """
        self._check_live()
        thread = self.current_thread()
        yield from thread.execute(self.config.lapi_call_overhead)
        key = f"lapi.addr.{self.ctx.barrier_epoch}.{id(self.task.cluster)}"
        table = self.task.cluster.oob_allgather(key, self.rank, value,
                                                self.size)
        yield from self.gfence()
        return [table[r] for r in range(self.size)]

    def qenv(self, key: QenvKey) -> int:
        """LAPI_Qenv."""
        return do_qenv(self, key)

    def senv(self, key: SenvKey, value: int) -> None:
        """LAPI_Senv."""
        do_senv(self, key, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "interrupt" if self.interrupt_mode else "polling"
        return f"<Lapi rank={self.rank}/{self.size} {mode}>"
