"""Origin-side implementation of LAPI_Amsend.

The active-message primitive of section 2.1: ships a user header and
optional user data to the target, where a registered *header handler*
names the receive buffer and an optional *completion handler* runs once
all packets have landed.  Origin-side mechanics mirror put (same
internal-copy / acknowledgement counter semantics); what differs is the
first packet, which carries the uhdr and the handler id.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Union

from ..errors import LapiError
from .context import SendState
from .protocol import am_packets
from .putget import _make_send_complete

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Lapi
    from .counters import LapiCounter

__all__ = ["do_amsend"]


def do_amsend(lapi: "Lapi", target: int, handler_id: int, uhdr: bytes,
              udata: Union[int, bytes, None], udata_len: int,
              tgt_cntr: Optional[int],
              org_cntr: Optional["LapiCounter"],
              cmpl_cntr: Optional["LapiCounter"]) -> Generator:
    """LAPI_Amsend: send ``uhdr`` (+ ``udata_len`` bytes of data) to the
    header handler ``handler_id`` registered at ``target``.

    ``udata`` may be a local memory address (the faithful interface) or
    a ``bytes`` object (convenience for tests and internal protocols);
    ``None`` sends a data-less active message.
    """
    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    if not (0 <= target < ctx.size):
        raise LapiError(
            f"target {target} outside job of {ctx.size} tasks")
    if udata_len < 0:
        raise LapiError(f"negative udata_len {udata_len}")
    sp = lapi.spans
    op_sid = None
    if sp is not None:
        t_call = lapi.sim.now
        op_sid = sp.open(ctx.rank, "lapi", "amsend", t_call,
                         parent=getattr(thread, "span_parent", None),
                         dst=target, bytes=udata_len, handler=handler_id)
    yield from thread.execute(cfg.lapi_call_overhead)
    if sp is not None:
        sp.emit(ctx.rank, "lapi", "amsend", "call", t_call,
                lapi.sim.now, parent=op_sid, bytes=udata_len)
    ctx.stats.amsends += 1
    ctx.stats.bytes_sent += udata_len

    if udata is None:
        if udata_len:
            raise LapiError("udata_len nonzero but no udata supplied")
        data = b""
    elif isinstance(udata, (bytes, bytearray, memoryview)):
        data = bytes(udata[:udata_len])
        if len(data) != udata_len:
            raise LapiError(
                f"udata holds {len(data)} bytes, expected {udata_len}")
    else:
        data = lapi.memory.read(udata, udata_len) if udata_len else b""

    if target == ctx.rank:
        yield from _local_amsend(lapi, thread, handler_id, bytes(uhdr),
                                 data, tgt_cntr, org_cntr, cmpl_cntr)
        if sp is not None:
            sp.close(op_sid, lapi.sim.now, local=True)
        return

    msg_id = ctx.new_msg_id()
    cmpl_id = cmpl_cntr.id if cmpl_cntr is not None else None
    packets = am_packets(cfg, ctx.rank, target, msg_id, handler_id,
                         bytes(uhdr), data, tgt_cntr, cmpl_id)
    if sp is not None:
        sp.bind_packets(packets, op_sid, "amsend", udata_len,
                        msg_key=("lapi", ctx.rank, msg_id))

    small = udata_len <= cfg.lapi_retrans_copy_limit
    state = SendState(msg_id, target, total_packets=len(packets),
                      org_cntr=None if small else org_cntr,
                      org_counted=small)
    ctx.send_msgs[msg_id] = state
    ctx.op_issued(target)
    state.on_complete = _make_send_complete(lapi, state)

    if small:
        if sp is not None:
            t_copy = lapi.sim.now
        yield from thread.execute(cfg.copy_cost(udata_len + len(uhdr)))
        if sp is not None:
            sp.emit(ctx.rank, "lapi", "amsend", "copy", t_copy,
                    lapi.sim.now, parent=op_sid, bytes=udata_len)
        if org_cntr is not None:
            if sp is not None:
                t_cu = lapi.sim.now
            yield from thread.execute(cfg.lapi_counter_update)
            if sp is not None:
                sp.emit(ctx.rank, "lapi", "amsend", "counter_update",
                        t_cu, lapi.sim.now, parent=op_sid)
            org_cntr.add(1)

    for pkt in packets:
        yield from thread.execute(cfg.lapi_pkt_send_cost)
        yield from lapi.transport.send_data(thread, pkt,
                                            on_ack=state.ack_one)
    if sp is not None:
        sp.close(op_sid, lapi.sim.now, packets=len(packets))


def _local_amsend(lapi: "Lapi", thread, handler_id: int, uhdr: bytes,
                  data: bytes, tgt_cntr: Optional[int],
                  org_cntr: Optional["LapiCounter"],
                  cmpl_cntr: Optional["LapiCounter"]) -> Generator:
    """Active message to self: handlers run locally, in order."""
    from ..machine.cpu import HANDLER

    cfg = lapi.config
    ctx = lapi.ctx
    ctx.stats.local_fastpaths += 1
    yield from thread.execute(cfg.lapi_hdr_handler_cost)
    ctx.stats.hdr_handlers_run += 1
    handler = ctx.handler_by_id(handler_id)
    reply = handler(lapi.task, ctx.rank, uhdr, len(data))
    from .dispatcher import Dispatcher
    buf_addr, cmpl_fn, user_info = Dispatcher._check_hh_reply(
        reply, len(data))
    if data:
        yield from thread.execute(cfg.copy_cost(len(data)))
        lapi.memory.write(buf_addr, data)

    if org_cntr is not None:
        org_cntr.add(1)

    def finish(hthread):
        if cmpl_fn is not None:
            ctx.stats.cmpl_handlers_run += 1
            result = cmpl_fn(lapi.task, user_info)
            if result is not None and hasattr(result, "send"):
                yield from result
            else:
                yield from hthread.execute(0.0)
        if tgt_cntr is not None:
            ctx.counter_by_id(tgt_cntr).add(1)
        if cmpl_cntr is not None:
            cmpl_cntr.add(1)
        ctx.progress_ws.notify_all()

    ctx.active_handlers += 1

    def wrapped(hthread):
        try:
            yield from finish(hthread)
        finally:
            ctx.active_handlers -= 1

    thread.cpu.spawn(wrapped, name=f"lapi{ctx.rank}.localcmpl",
                     priority=HANDLER)
