"""LAPI_Fence and LAPI_Gfence.

Section 5.3.2's semantics, implemented precisely: a fence waits until
every data transfer this task initiated has *arrived in the remote user
buffers* -- it says nothing about completion handlers, which may still
be running.  Arrival is observed through the reliability layer's
acknowledgements (an ack is sent when the dispatcher has placed the
packet), so fence completion is exactly "all my packets have been
processed at their targets".

``LAPI_Gfence`` is the collective version: a local fence followed by a
dissemination barrier (log2(N) rounds of point-to-point tokens over the
switch -- no magic global operation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import LapiError
from .constants import PacketKind
from .protocol import control_packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Lapi

__all__ = ["do_fence", "do_gfence"]


def do_fence(lapi: "Lapi", target: Optional[int] = None) -> Generator:
    """Block until data transfers to ``target`` (or everyone) complete.

    Completion here is the data-transfer level of section 5.3.2: packets
    acknowledged / replies received; completion-handler execution status
    remains unknown to a fence, as in real LAPI.
    """
    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    if target is not None and not (0 <= target < ctx.size):
        raise LapiError(f"fence target {target} outside job")
    sp = lapi.spans
    op_sid = None
    if sp is not None:
        t_call = lapi.sim.now
        op_sid = sp.open(ctx.rank, "lapi", "fence", t_call,
                         parent=getattr(thread, "span_parent", None))
    yield from thread.execute(cfg.lapi_call_overhead)
    if sp is not None:
        sp.emit(ctx.rank, "lapi", "fence", "call", t_call, lapi.sim.now,
                parent=op_sid)
    ctx.stats.fences += 1
    yield from lapi.wait_for(lambda: ctx.outstanding_to(target) == 0)
    if sp is not None:
        sp.close(op_sid, lapi.sim.now)


def do_gfence(lapi: "Lapi") -> Generator:
    """Collective fence: local fence + dissemination barrier."""
    ctx = lapi.ctx
    cfg = lapi.config
    thread = lapi.current_thread()
    ctx.stats.gfences += 1
    sp = lapi.spans
    op_sid = None
    if sp is not None:
        op_sid = sp.open(ctx.rank, "lapi", "gfence", lapi.sim.now,
                         parent=getattr(thread, "span_parent", None))
        prev_parent = getattr(thread, "span_parent", None)
        thread.span_parent = op_sid
    try:
        yield from do_fence(lapi, None)
    finally:
        if sp is not None:
            thread.span_parent = prev_parent

    size = ctx.size
    if size == 1:
        if sp is not None:
            sp.close(op_sid, lapi.sim.now)
        return
    epoch = ctx.barrier_epoch
    ctx.barrier_epoch += 1
    rounds = 0
    span = 1
    while span < size:
        rounds += 1
        span <<= 1
    for r in range(rounds):
        dist = 1 << r
        peer = (ctx.rank + dist) % size
        yield from thread.execute(cfg.lapi_pkt_send_cost)
        token = control_packet(
            cfg, ctx.rank, peer, PacketKind.BARRIER,
            epoch=epoch, round=r)
        if sp is not None:
            sp.bind_packet(token, op_sid, "gfence")
        lapi.transport.send_control(token)
        # A round's token comes from (rank - dist) mod size; a peer
        # the failure detector convicted will never send it, so a dead
        # sender satisfies the wait (degraded-mode barrier: survivors
        # synchronize among themselves instead of hanging).
        src_peer = (ctx.rank - dist) % size
        yield from lapi.wait_for(
            lambda e=epoch, rr=r, src=src_peer:
            (e, rr) in ctx.barrier_tokens or src in ctx.dead_peers)
    # Tokens of this epoch are consumed; drop them to bound memory.
    ctx.barrier_tokens = {(e, r) for (e, r) in ctx.barrier_tokens
                          if e != epoch}
    if sp is not None:
        sp.close(op_sid, lapi.sim.now, epoch=epoch)
