"""Vector (non-contiguous) remote memory copy: LAPI_Putv / LAPI_Getv.

Section 6's first future-work item: "Providing a non-contiguous
interface to LAPI_Put and LAPI_Get to help applications like GA ...
by removing the overhead associated with multiple requests or the copy
overhead in the AM-based implementations."  This module implements that
proposed extension so the ablation benchmarks can quantify exactly what
the authors anticipated:

* ``putv``: one call, one message; packets pack multiple address/length
  *runs* densely (each run costs a 16-byte sub-header on the wire), so
  a strided section moves with neither per-column call overhead nor
  pack/unpack copies;
* ``getv``: the request ships the run list (chunked over as many
  request packets as needed); the target streams vector reply packets
  whose runs land directly in the origin's final addresses.

Counter semantics mirror put/get: ``org_cntr`` when the source buffers
are reusable, ``tgt_cntr`` at the target on completion, ``cmpl_cntr``
back at the origin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

from ..errors import LapiError
from ..machine.packet import Packet
from .constants import PacketKind
from .context import SendState
from .putget import _make_send_complete

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Lapi
    from .counters import LapiCounter

__all__ = ["do_putv", "do_getv", "VECTOR_SUBHEADER", "MSG_PUTV",
           "MSG_GETV_REP", "GETV_REQ"]

#: Wire bytes per vector run descriptor (address + length).
VECTOR_SUBHEADER = 16
#: Run descriptors per getv request packet.
GETV_RUNS_PER_PACKET = 40

MSG_PUTV = "putv"
MSG_GETV_REP = "getv_rep"
GETV_REQ = "getv_req"


def _mk(config, src, dst, kind, header, payload, info) -> "Packet":
    return Packet(src=src, dst=dst, proto="lapi", kind=kind,
                  header_bytes=header, payload=payload, info=info)


def pack_vector_packets(config, src: int, dst: int, msg_id: int,
                        mtype: str, runs, read_run, *,
                        extra_info: Optional[dict] = None) -> list:
    """Split (addr, nbytes) ``runs`` into densely packed packets.

    ``read_run(run_index, offset, length) -> bytes`` supplies the data.
    Each packet's ``info['runs']`` lists ``(dest_addr, length)`` pairs
    describing consecutive payload slices; a long run may straddle
    packets as two sub-runs with adjusted addresses.
    """
    total = sum(n for _, n in runs)
    packets = []
    cur_runs: list[tuple[int, int]] = []
    cur_chunks: list[bytes] = []
    room = config.packet_size - config.lapi_header
    sent = 0

    def flush():
        nonlocal cur_runs, cur_chunks, room
        info = {"mtype": mtype, "msg_id": msg_id, "total": total,
                "runs": list(cur_runs)}
        if extra_info:
            info.update(extra_info)
        header = config.lapi_header + VECTOR_SUBHEADER * len(cur_runs)
        packets.append(_mk(config, src, dst, PacketKind.DATA, header,
                           b"".join(cur_chunks), info))
        cur_runs = []
        cur_chunks = []
        room = config.packet_size - config.lapi_header

    for ridx, (addr, nbytes) in enumerate(runs):
        off = 0
        while off < nbytes:
            if room <= VECTOR_SUBHEADER:
                flush()
            take = min(nbytes - off, room - VECTOR_SUBHEADER)
            cur_runs.append((addr + off, take))
            cur_chunks.append(read_run(ridx, off, take))
            room -= VECTOR_SUBHEADER + take
            sent += take
            off += take
    if cur_runs or not packets:
        flush()
    assert sent == total
    return packets


def _check_runs(lapi: "Lapi", target: int,
                runs: Sequence[tuple]) -> None:
    if not (0 <= target < lapi.ctx.size):
        raise LapiError(
            f"target {target} outside job of {lapi.ctx.size} tasks")
    if not runs:
        raise LapiError("vector operation needs at least one run")
    for run in runs:
        if run[-1] <= 0:
            raise LapiError(f"vector run with non-positive length:"
                            f" {run}")


def do_putv(lapi: "Lapi", target: int,
            runs: Sequence[tuple[int, int, int]],
            tgt_cntr: Optional[int],
            org_cntr: Optional["LapiCounter"],
            cmpl_cntr: Optional["LapiCounter"]) -> Generator:
    """LAPI_Putv: one-call scatter of ``(tgt_addr, org_addr, nbytes)``
    runs into the target's address space."""
    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    _check_runs(lapi, target, runs)
    yield from thread.execute(cfg.lapi_call_overhead)
    ctx.stats.puts += 1
    total = sum(n for _, _, n in runs)
    ctx.stats.bytes_sent += total

    if target == ctx.rank:
        ctx.stats.local_fastpaths += 1
        yield from thread.execute(cfg.copy_cost(total))
        for tgt_addr, org_addr, nbytes in runs:
            lapi.memory.write(tgt_addr, lapi.memory.read(org_addr,
                                                         nbytes))
        for cntr in (org_cntr, cmpl_cntr):
            if cntr is not None:
                cntr.add(1)
        if tgt_cntr is not None:
            ctx.counter_by_id(tgt_cntr).add(1)
        ctx.progress_ws.notify_all()
        return

    msg_id = ctx.new_msg_id()
    cmpl_id = cmpl_cntr.id if cmpl_cntr is not None else None
    dest_runs = [(t, n) for t, _, n in runs]
    srcs = [(o, n) for _, o, n in runs]

    def read_run(ridx: int, off: int, length: int) -> bytes:
        org_addr, _ = srcs[ridx]
        return lapi.memory.read(org_addr + off, length)

    packets = pack_vector_packets(
        cfg, ctx.rank, target, msg_id, MSG_PUTV, dest_runs, read_run,
        extra_info={"tgt_cntr_id": tgt_cntr, "cmpl_cntr_id": cmpl_id})

    small = total <= cfg.lapi_retrans_copy_limit
    state = SendState(msg_id, target, total_packets=len(packets),
                      org_cntr=None if small else org_cntr,
                      org_counted=small)
    ctx.send_msgs[msg_id] = state
    ctx.op_issued(target)
    state.on_complete = _make_send_complete(lapi, state)
    if small:
        yield from thread.execute(cfg.copy_cost(total))
        if org_cntr is not None:
            org_cntr.add(1)
    for pkt in packets:
        yield from thread.execute(cfg.lapi_pkt_send_cost)
        yield from lapi.transport.send_data(thread, pkt,
                                            on_ack=state.ack_one)


def do_getv(lapi: "Lapi", target: int,
            runs: Sequence[tuple[int, int, int]],
            org_cntr: Optional["LapiCounter"]) -> Generator:
    """LAPI_Getv: one-call gather of ``(tgt_addr, org_addr, nbytes)``
    runs from the target into local addresses."""
    from .context import GetPending

    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    _check_runs(lapi, target, runs)
    yield from thread.execute(cfg.lapi_call_overhead
                              + cfg.lapi_get_extra)
    ctx.stats.gets += 1
    total = sum(n for _, _, n in runs)

    if target == ctx.rank:
        ctx.stats.local_fastpaths += 1
        yield from thread.execute(cfg.copy_cost(total))
        for tgt_addr, org_addr, nbytes in runs:
            lapi.memory.write(org_addr, lapi.memory.read(tgt_addr,
                                                         nbytes))
        if org_cntr is not None:
            org_cntr.add(1)
        ctx.progress_ws.notify_all()
        return

    msg_id = ctx.new_msg_id()
    pending = GetPending(msg_id, target, org_addr=0, length=total,
                         org_cntr=org_cntr)
    ctx.pending_gets[msg_id] = pending
    ctx.op_issued(target)
    # Ship the run list in as many request packets as needed; each run
    # names both its target source and its origin destination, so reply
    # packets can land directly in the final addresses.
    triples = [tuple(r) for r in runs]
    for i in range(0, len(triples), GETV_RUNS_PER_PACKET):
        group = triples[i:i + GETV_RUNS_PER_PACKET]
        yield from thread.execute(cfg.lapi_pkt_send_cost)
        header = cfg.lapi_header + VECTOR_SUBHEADER * len(group)
        if header > cfg.packet_size:
            raise LapiError("getv run group exceeds a packet")
        lapi.transport.send_control(_mk(
            cfg, ctx.rank, target, GETV_REQ, header, b"",
            {"msg_id": msg_id, "runs": group,
             "final": i + GETV_RUNS_PER_PACKET >= len(triples)}))
