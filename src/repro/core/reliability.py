"""Reliable packet transport over the (lossy, reordering) SP switch.

The switch may drop packets (CRC errors, link faults) and the multipath
core reorders them; both LAPI and MPL therefore run a per-peer
sequencing/acknowledgement/retransmission layer.  Section 5.3.1 notes
its sender-side consequence: LAPI copies small messages into internal
buffers "since retransmissions might be required in a case of switch
failures" -- that copy is what lets small sends return immediately.

Design:

* every reliable packet gets a per-``(self, peer)`` sequence number;
* the receiver acknowledges each packet (control path, no CPU thread)
  and filters duplicates with a cumulative watermark + sparse set;
* the sender keeps unacknowledged packets and retransmits them after a
  timeout (a lazily started per-peer timer process); retransmitted
  *data* packets re-enter the adapter through the credit-accounted
  data path (best-effort, retried next round when the TX FIFO is
  saturated) while control packets keep their reserved slots;
* *data* packets additionally consume send-window credits, giving
  end-to-end flow control that back-pressures the sending thread; pure
  control packets bypass the window so a dispatcher can always respond
  without blocking (deadlock freedom).

Retransmission timing comes in two modes (see ``docs/reliability.md``):

* **fixed** (default): every packet's retransmit deadline is
  ``now + timeout`` -- the original arithmetic, kept bit-for-bit so
  fault-free runs are byte-identical to historical outputs;
* **adaptive** (``adaptive=True``; selected automatically when a
  ``FaultSchedule`` is installed): Jacobson/Karels smoothed-RTT
  estimation (``SRTT + 4*RTTVAR``, clamped to ``[rto_min, rto_max]``)
  with exponential per-round backoff and Karn's rule (no RTT sample
  from a retransmitted packet), plus a per-peer health state machine
  ``healthy -> degraded -> unreachable``.

Terminal failures (a peer that never acknowledges) no longer raise out
of the bare kernel timer callback: they are routed through the
``on_fatal`` hook, which the owning stack points at its registered
error handler (``LAPI_Init`` semantics) and ultimately at
``Cluster.fail_run`` so the run terminates cleanly with full
node/peer/attempt context.

The class is protocol-agnostic: LAPI instantiates it with its packet
kinds, MPL with its own.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..errors import PeerUnreachableError
from ..machine.packet import Packet as _Packet
from ..sim import Semaphore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.adapter import Adapter
    from ..machine.cpu import Thread
    from ..machine.packet import Packet
    from ..sim import Simulator

__all__ = ["ReliableTransport", "ACK_HEADER_BYTES",
           "HEALTHY", "DEGRADED", "UNREACHABLE"]

#: Wire size of a bare acknowledgement packet.
ACK_HEADER_BYTES = 16

#: Peer health states (sender-side view of one destination).
HEALTHY = "healthy"
DEGRADED = "degraded"
UNREACHABLE = "unreachable"


class _PeerTx:
    """Sender-side state toward one peer."""

    __slots__ = ("next_seq", "unacked", "window", "timer_running",
                 "attempts", "srtt", "rttvar", "rto", "backoff_mult",
                 "health", "breaker_open")

    def __init__(self, sim: "Simulator", window: int, name: str,
                 rto: float) -> None:
        self.next_seq = 0
        #: seq -> (packet, deadline, uses_window, on_ack, sent_at)
        self.unacked: dict[int, tuple] = {}
        #: seq -> retransmission count.
        self.attempts: dict[int, int] = {}
        self.window = Semaphore(sim, value=window, name=f"win:{name}")
        self.timer_running = False
        # Adaptive-RTO estimator state (Jacobson/Karels).  ``srtt`` is
        # None until the first valid sample; ``rto`` starts at the
        # configured timeout, the conventional pre-sample initial RTO.
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = rto
        #: Karn backoff multiplier; doubles per retransmitting timer
        #: round, resets to 1.0 on any fresh acknowledgement.
        self.backoff_mult = 1.0
        self.health = HEALTHY
        #: Circuit breaker: True once the peer is convicted (by the
        #: failure detector) or exhausts its retry budget.  Open, data
        #: sends fail fast and control sends are suppressed -- no more
        #: retransmit storms toward a dead peer.  Closed again when the
        #: detector absolves the peer after a machine restart.
        self.breaker_open = False


class _PeerRx:
    """Receiver-side duplicate filter for one peer."""

    __slots__ = ("cum", "seen")

    def __init__(self) -> None:
        #: All seqs < cum have been delivered.
        self.cum = 0
        self.seen: set[int] = set()

    def fresh(self, seq: int) -> bool:
        """Record ``seq``; True if it has not been delivered before."""
        if seq < self.cum or seq in self.seen:
            return False
        self.seen.add(seq)
        while self.cum in self.seen:
            self.seen.remove(self.cum)
            self.cum += 1
        return True


class ReliableTransport:
    """Sequencing + ack + retransmission for one protocol stack."""

    #: Default retransmission budget for one packet before the
    #: transport declares the peer unreachable.  Real transports give
    #: up too; in the model the overwhelmingly common cause is a
    #: program bug (mismatched collectives leaving one task
    #: retransmitting to a terminated peer), and a loud error beats an
    #: eternal silent retry loop.  Configurable per transport via the
    #: ``retry_budget`` constructor argument
    #: (``MachineConfig.retry_budget``).
    MAX_RETRANSMITS_PER_PACKET = 50

    def __init__(self, sim: "Simulator", adapter: "Adapter", proto: str,
                 *, window: int, timeout: float, ack_kind: str = "ack",
                 adaptive: bool = False, rto_min: float = 200.0,
                 rto_max: float = 30000.0, backoff: float = 2.0,
                 degraded_after: int = 3,
                 retry_budget: Optional[int] = None) -> None:
        self.sim = sim
        self.adapter = adapter
        self.proto = proto
        self.window_size = window
        self.timeout = timeout
        self.ack_kind = ack_kind
        #: Adaptive (Jacobson/Karels) retransmission timing.  Off by
        #: default: the fixed-timeout arithmetic below is kept
        #: bit-identical to the historical path, which the byte-identity
        #: contract of fault-free runs depends on.
        self.adaptive = adaptive
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.backoff = backoff
        self.degraded_after = degraded_after
        #: Retransmissions of one packet before giving up on the peer;
        #: ``None`` falls back to ``MAX_RETRANSMITS_PER_PACKET`` at
        #: check time (instance overrides of the class cap keep
        #: working).
        self._retry_budget = retry_budget
        self._tx: dict[int, _PeerTx] = {}
        self._rx: dict[int, _PeerRx] = {}
        #: Called with (packet) after every retransmission (stats hooks).
        self.on_retransmit: Optional[Callable[["Packet"], None]] = None
        #: Called with the terminal :class:`PeerUnreachableError` when a
        #: peer exhausts its retransmission budget.  The owning stack
        #: installs a structured handler (user error handler +
        #: ``Cluster.fail_run``); without one the error is raised from
        #: the timer callback -- loud, but with no run context.
        self.on_fatal: Optional[
            Callable[[PeerUnreachableError], None]] = None
        #: Generator ``(thread, event) -> None`` used to block on a send
        #: window credit.  The owning stack installs a progress-aware
        #: version: in polling mode the waiting thread must drive the
        #: dispatcher (to process the very acknowledgements that free
        #: credits), or a long transfer deadlocks -- the polling-mode
        #: hazard section 2.1 warns about, solved the way real LAPI
        #: does: every LAPI call makes progress.
        self.wait_credit: Callable = \
            lambda thread, event: thread.wait(event)
        #: Called after every acknowledgement is applied; the stack
        #: points it at its progress wait-set so pollers blocked on a
        #: window credit wake up when acks free one.
        self.on_progress: Optional[Callable[[], None]] = None
        # Statistics
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.acks_sent = 0
        #: Acknowledgements for already-acked or unknown sequence
        #: numbers (retransmission overlap); previously silently
        #: dropped, now counted.
        self.duplicate_acks = 0
        #: Data retransmissions deferred because the TX FIFO had no
        #: free credit (retried on the next timer round).
        self.retransmit_backoffs = 0
        #: RTT samples skipped under Karn's rule (the packet had been
        #: retransmitted, so the ack is ambiguous).
        self.karn_skips = 0
        #: Peer health transitions (healthy -> degraded and back).
        self.peer_degraded_events = 0
        self.peer_recovered_events = 0
        #: Peers declared unreachable (terminal).
        self.peers_unreachable = 0
        #: Circuit-breaker transitions and consequences: opens
        #: (conviction or retry-budget exhaustion), closes (peer
        #: absolved after a machine restart), control packets
        #: suppressed while open, and in-flight operations completed
        #: in error when a conviction cleared their entries.
        self.breaker_opens = 0
        self.breaker_closes = 0
        self.breaker_suppressed = 0
        self.completed_in_error = 0
        #: Optional :class:`repro.obs.Histogram` observing the
        #: virtual-time gap between a packet's (latest) injection and
        #: its acknowledgement.  Installed by the owning stack.
        self.ack_rtt = None
        #: Optional timeline counter streams
        #: (:mod:`repro.obs.timeline`), installed by the owning stack
        #: when cluster telemetry is armed: fresh (first-delivery)
        #: payload bytes and packets received, and retransmissions --
        #: the per-window goodput/retransmit curves the chaos bench and
        #: the SLO goodput floor read.  Disarmed, each hot path pays a
        #: single ``is None`` test.
        self.rx_goodput_bytes = None
        self.rx_goodput_packets = None
        self.retx_stream = None

    # ------------------------------------------------------------------
    @property
    def retry_budget(self) -> int:
        """Effective per-packet retransmission cap."""
        if self._retry_budget is not None:
            return self._retry_budget
        return self.MAX_RETRANSMITS_PER_PACKET

    def _peer_tx(self, peer: int) -> _PeerTx:
        st = self._tx.get(peer)
        if st is None:
            st = _PeerTx(self.sim, self.window_size,
                         f"{self.proto}{self.adapter.node_id}->{peer}",
                         self.timeout)
            self._tx[peer] = st
        return st

    def _peer_rx(self, peer: int) -> _PeerRx:
        st = self._rx.get(peer)
        if st is None:
            st = _PeerRx()
            self._rx[peer] = st
        return st

    def outstanding_to(self, peer: int) -> int:
        """Unacknowledged packets in flight toward ``peer``."""
        st = self._tx.get(peer)
        return len(st.unacked) if st is not None else 0

    def outstanding_total(self) -> int:
        return sum(len(st.unacked) for st in self._tx.values())

    def peer_health(self, peer: int) -> str:
        """Health state of one destination (sender-side view)."""
        st = self._tx.get(peer)
        return st.health if st is not None else HEALTHY

    def peer_rto(self, peer: int) -> float:
        """Current estimated RTO toward ``peer`` (before backoff)."""
        st = self._tx.get(peer)
        return st.rto if st is not None else self.timeout

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def send_data(self, thread: "Thread", packet: "Packet",
                  on_ack: Optional[Callable[[], None]] = None) -> Generator:
        """Send a data packet from a CPU thread, honouring the window.

        Blocks (in virtual time) while the peer's send window is full.
        ``on_ack`` fires when this packet is acknowledged.  Raises
        :class:`PeerUnreachableError` immediately (fail fast, no
        retransmit storm) while the peer's circuit breaker is open.
        """
        st = self._peer_tx(packet.dst)
        if st.breaker_open:
            raise self._breaker_error(packet.dst)
        credit = st.window.wait()
        if not credit.triggered:
            yield from self.wait_credit(thread, credit)
        self._register(st, packet, uses_window=True, on_ack=on_ack)
        yield from self.adapter.inject(thread, packet)

    def send_control(self, packet: "Packet",
                     on_ack: Optional[Callable[[], None]] = None) -> None:
        """Send a control packet reliably, bypassing the window.

        Callable from dispatcher context (no thread, never blocks); the
        adapter reserves control slots so injection always succeeds.
        While the peer's circuit breaker is open the packet is
        *suppressed* (counted, never injected, ``on_ack`` never fires):
        dispatcher context cannot absorb an exception, and a dead peer
        will not answer anyway.
        """
        st = self._peer_tx(packet.dst)
        if st.breaker_open:
            self.breaker_suppressed += 1
            return
        self._register(st, packet, uses_window=False, on_ack=on_ack)
        self.adapter.inject_control(packet)

    def _deadline(self, st: _PeerTx, now: float) -> float:
        """Retransmit deadline for a packet (re)injected at ``now``."""
        if self.adaptive:
            return now + min(st.rto * st.backoff_mult, self.rto_max)
        return now + self.timeout

    def _register(self, st: _PeerTx, packet: "Packet", *,
                  uses_window: bool, on_ack) -> None:
        packet.seq = st.next_seq
        st.next_seq += 1
        now = self.sim.now
        st.unacked[packet.seq] = (packet, self._deadline(st, now),
                                  uses_window, on_ack, now)
        if not st.timer_running:
            st.timer_running = True
            self._arm_timer(packet.dst, st)

    def _arm_timer(self, peer: int, st: _PeerTx) -> None:
        """Schedule the next retransmit check for ``peer``.

        The timer used to be a per-peer generator process
        (boot event + a :class:`Timeout` per round); it is now a
        :meth:`Simulator.call_at` chain -- one bare heap entry per
        round, re-armed from the fire callback while packets remain
        unacknowledged.  The delay arithmetic is unchanged, so rounds
        fire at the same virtual instants the process-based timer did.
        """
        horizon = min(d for (_, d, _, _, _) in st.unacked.values())
        delay = max(horizon - self.sim.now, self.timeout * 0.25)
        self.sim.call_at(self.sim.now + delay, self._timer_fire, (peer, st))

    def _timer_fire(self, peer_st: tuple) -> None:
        """One retransmit round: re-inject packets whose ack is overdue.

        Data packets re-enter through :meth:`Adapter.inject_async` so
        the retransmission consumes a TX FIFO credit exactly like the
        original injection (the timer has no CPU thread to block, so a
        saturated FIFO defers the packet to the next round instead).
        Control packets keep their reserved slots via
        :meth:`Adapter.inject_control`.
        """
        peer, st = peer_st
        if self.adapter.crashed or st.breaker_open:
            # This node died (its timers die with it) or the peer was
            # convicted and its in-flight state already cleared: either
            # way the chain ends here.
            st.timer_running = False
            return
        now = self.sim.now
        retransmitted_any = False
        for seq in sorted(st.unacked):
            pkt, deadline, uses_window, on_ack, sent_at = \
                st.unacked[seq]
            if deadline > now:
                continue
            tries = st.attempts.get(seq, 0) + 1
            if tries > self.retry_budget:  # property: config or class cap
                self._peer_fatal(peer, st, pkt, tries)
                return
            if uses_window:
                if not self.adapter.inject_async(pkt):
                    # TX FIFO saturated: defer without charging an
                    # attempt; the backlog drains in virtual time.
                    self.retransmit_backoffs += 1
                    st.unacked[seq] = (pkt, now + self.timeout * 0.25,
                                       uses_window, on_ack, sent_at)
                    continue
            else:
                self.adapter.inject_control(pkt)
            st.attempts[seq] = tries
            self.retransmissions += 1
            retransmitted_any = True
            if self.retx_stream is not None:
                self.retx_stream.add(1)
            flight = self.sim.flight
            if flight is not None:
                flight.note(self.adapter.node_id, "core.reliability",
                            "retransmit", peer=peer, pkt_seq=seq,
                            tries=tries, kind=str(pkt.kind))
            if (self.adaptive and st.health == HEALTHY
                    and tries >= self.degraded_after):
                st.health = DEGRADED
                self.peer_degraded_events += 1
            st.unacked[seq] = (pkt, self._deadline(st, now),
                               uses_window, on_ack, now)
            if self.on_retransmit is not None:
                self.on_retransmit(pkt)
        if self.adaptive and retransmitted_any:
            # Karn backoff: the round timed out, so double the effective
            # RTO for the next one (bounded by rto_max at deadline
            # computation).
            st.backoff_mult *= self.backoff
        if st.unacked:
            self._arm_timer(peer, st)
        else:
            st.timer_running = False

    def _peer_fatal(self, peer: int, st: _PeerTx, pkt: "Packet",
                    tries: int) -> None:
        """Declare ``peer`` unreachable and route the terminal error.

        Abandons all packets in flight toward the peer (posting their
        window credits so blocked senders can observe the failure
        instead of hanging) and hands a :class:`PeerUnreachableError`
        with full context to ``on_fatal``.  Raising from here -- a bare
        kernel timer callback -- is the fallback for bare transports
        only; stacks install a structured path through the registered
        error handler and ``Cluster.fail_run``.
        """
        st.health = UNREACHABLE
        st.timer_running = False
        if not st.breaker_open:
            st.breaker_open = True
            self.breaker_opens += 1
        self.peers_unreachable += 1
        for _, (_, _, uses_window, _, _) in sorted(st.unacked.items()):
            if uses_window:
                st.window.post()
        st.unacked.clear()
        st.attempts.clear()
        err = PeerUnreachableError(
            f"{self.proto}@{self.adapter.node_id}: no"
            f" acknowledgement from node {peer} after"
            f" {tries - 1} retransmissions of {pkt!r}"
            " -- peer terminated or collective calls"
            " are mismatched")
        err.proto = self.proto
        err.node = self.adapter.node_id
        err.peer = peer
        err.attempts = tries - 1
        err.via = "retries"
        flight = self.sim.flight
        if flight is not None:
            # Black-box dump before the error routes anywhere: the ring
            # holds the retransmit history that led here.
            flight.trigger(
                "peer-unreachable",
                key=("peer", self.proto, self.adapter.node_id, peer),
                proto=self.proto, node=self.adapter.node_id, peer=peer,
                attempts=tries - 1)
        if self.on_fatal is not None:
            self.on_fatal(err)
        else:
            raise err

    # ------------------------------------------------------------------
    # failure-detector integration (circuit breaker)
    # ------------------------------------------------------------------
    def peer_down(self, peer: int) -> None:
        """The failure detector convicted ``peer``: open the breaker.

        Clears all in-flight state toward the peer so blocked
        primitives resolve promptly instead of timing out one by one:
        window credits are posted (blocked senders wake), every cleared
        entry's ``on_ack`` fires as a *completion in error* (counted --
        counters advance so waiters unblock; the data was **not**
        delivered), and ``on_progress`` is notified so predicate
        waiters re-evaluate.  Idempotent.
        """
        st = self._peer_tx(peer)
        if st.breaker_open:
            return
        st.breaker_open = True
        self.breaker_opens += 1
        if st.health != UNREACHABLE:
            st.health = UNREACHABLE
            self.peers_unreachable += 1
        st.timer_running = False
        cleared = sorted(st.unacked.items())
        st.unacked.clear()
        st.attempts.clear()
        for _, (_, _, uses_window, on_ack, _) in cleared:
            if uses_window:
                st.window.post()
            if on_ack is not None:
                self.completed_in_error += 1
                on_ack()
        if self.on_progress is not None:
            self.on_progress()

    def breaker_close(self, peer: int) -> None:
        """The detector absolved ``peer`` (machine restart): close the
        breaker so control traffic flows again.  Idempotent."""
        st = self._tx.get(peer)
        if st is None or not st.breaker_open:
            return
        st.breaker_open = False
        st.health = HEALTHY
        st.backoff_mult = 1.0
        self.breaker_closes += 1

    def breaker_is_open(self, peer: int) -> bool:
        st = self._tx.get(peer)
        return st.breaker_open if st is not None else False

    def _breaker_error(self, peer: int) -> PeerUnreachableError:
        err = PeerUnreachableError(
            f"{self.proto}@{self.adapter.node_id}: peer node {peer} is"
            " unreachable (circuit breaker open -- the failure detector"
            " convicted it or its retry budget is exhausted)")
        err.proto = self.proto
        err.node = self.adapter.node_id
        err.peer = peer
        return err

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def on_packet(self, packet: "Packet") -> bool:
        """Process an arriving reliable packet.

        Sends the acknowledgement and returns True exactly when the
        packet is fresh (first delivery); duplicates return False and
        must not be re-applied by the protocol layer.
        """
        pools = self.sim.pools
        if pools is not None:
            # Pooled fast path: reset-on-acquire with a fresh uid (the
            # uid stream is byte-identical to a fresh construction, and
            # uid-keyed span tracks can never alias a recycled packet).
            ack = pools.packets.acquire(
                self.adapter.node_id, packet.src, self.proto,
                self.ack_kind, ACK_HEADER_BYTES)
            ack.info["acked_seq"] = packet.seq
        else:
            ack = _Packet(src=self.adapter.node_id, dst=packet.src,
                          proto=self.proto, kind=self.ack_kind,
                          header_bytes=ACK_HEADER_BYTES,
                          info={"acked_seq": packet.seq})
        self.adapter.inject_control(ack)
        self.acks_sent += 1
        fresh = self._peer_rx(packet.src).fresh(packet.seq)
        if not fresh:
            self.duplicates_dropped += 1
        elif self.rx_goodput_bytes is not None:
            # First delivery: what the application actually receives.
            # Duplicates and retransmitted copies of already-delivered
            # packets are *not* goodput -- that distinction is the whole
            # point of the per-window recovery curves.
            self.rx_goodput_bytes.add(len(packet.payload))
            self.rx_goodput_packets.add(1)
        return fresh

    def _observe_rtt(self, st: _PeerTx, sample: float) -> None:
        """Fold one valid RTT sample into the Jacobson/Karels estimator
        (alpha = 1/8, beta = 1/4; RTO = SRTT + 4*RTTVAR, clamped)."""
        if st.srtt is None:
            st.srtt = sample
            st.rttvar = sample / 2.0
        else:
            delta = sample - st.srtt
            st.srtt += 0.125 * delta
            st.rttvar += 0.25 * (abs(delta) - st.rttvar)
        st.rto = min(max(st.srtt + 4.0 * st.rttvar, self.rto_min),
                     self.rto_max)

    def on_ack(self, packet: "Packet") -> None:
        """Process an arriving acknowledgement.

        Duplicate acknowledgements (retransmission overlap: both the
        original and the retransmitted copy got acked) and acks from
        peers with no send state are counted, not silently dropped.
        Karn's rule applies to RTT sampling: an ack for a packet that
        was ever retransmitted is ambiguous (it may answer the original
        injection), so it contributes no sample to ``ack_rtt`` or the
        adaptive estimator.
        """
        st = self._tx.get(packet.src)
        if st is None:
            self.duplicate_acks += 1
            self._retire_ack(packet)
            return
        seq = packet.info["acked_seq"]
        entry = st.unacked.pop(seq, None)
        if entry is None:
            self.duplicate_acks += 1
            self._retire_ack(packet)
            return
        retransmitted = seq in st.attempts
        st.attempts.pop(seq, None)
        _, _, uses_window, on_ack, sent_at = entry
        if retransmitted:
            self.karn_skips += 1
        else:
            if self.ack_rtt is not None:
                self.ack_rtt.observe(self.sim.now - sent_at)
            if self.adaptive:
                self._observe_rtt(st, self.sim.now - sent_at)
        if self.adaptive:
            st.backoff_mult = 1.0
            if st.health == DEGRADED:
                st.health = HEALTHY
                self.peer_recovered_events += 1
        if uses_window:
            st.window.post()
        if on_ack is not None:
            on_ack()
        if self.on_progress is not None:
            self.on_progress()
        self._retire_ack(packet)

    def _retire_ack(self, packet: "Packet") -> None:
        """Recycle a fully-consumed acknowledgement packet.

        ``on_ack`` is the single consumption point for transport acks in
        both stacks (adapter fast path and dispatcher branch); nothing
        references the packet afterwards -- acks are never registered
        for retransmission.  Pool-owned packets return to the free
        list; foreign ones (tests driving ``on_ack`` directly) no-op.
        The span recorder's uid-keyed track is retired alongside, so
        the side table stays bounded on long runs.
        """
        pools = self.sim.pools
        if pools is not None and packet.pooled:
            sp = self.sim.spans
            if sp is not None:
                sp.retire_packet(packet.uid)
            pools.packets.release(packet)

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Counter block for the observability registry (collector).

        The adaptive-mode counters (Karn skips, health transitions)
        appear only once nonzero, so fault-free fixed-timeout runs keep
        their historical ``--metrics`` blocks byte-identical.
        """
        out = {
            "retransmissions": self.retransmissions,
            "retransmit_backoffs": self.retransmit_backoffs,
            "duplicates_dropped": self.duplicates_dropped,
            "duplicate_acks": self.duplicate_acks,
            "acks_sent": self.acks_sent,
            "unacked_in_flight": self.outstanding_total(),
        }
        if self.karn_skips:
            out["karn_rtt_skips"] = self.karn_skips
        if self.peer_degraded_events:
            out["peer_degraded_events"] = self.peer_degraded_events
        if self.peer_recovered_events:
            out["peer_recovered_events"] = self.peer_recovered_events
        if self.peers_unreachable:
            out["peers_unreachable"] = self.peers_unreachable
        if self.breaker_opens:
            out["breaker_opens"] = self.breaker_opens
        if self.breaker_closes:
            out["breaker_closes"] = self.breaker_closes
        if self.breaker_suppressed:
            out["breaker_suppressed"] = self.breaker_suppressed
        if self.completed_in_error:
            out["completed_in_error"] = self.completed_in_error
        if self.adaptive:
            # Peer-health gauges: adaptive mode only (it is what drives
            # the health machine), so fixed-timeout fault-free runs keep
            # their historical metrics blocks byte-identical.
            counts = {HEALTHY: 0, DEGRADED: 0, UNREACHABLE: 0}
            states = []
            for peer in sorted(self._tx):
                health = self._tx[peer].health
                counts[health] += 1
                states.append(f"{peer}:{health}")
            out["peers_healthy"] = counts[HEALTHY]
            out["peers_degraded"] = counts[DEGRADED]
            out["peers_unreachable_now"] = counts[UNREACHABLE]
            # Flat string, not a nested dict: the text renderer treats
            # dict values as histogram snapshots.
            out["peer_health_states"] = ",".join(states)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ReliableTransport {self.proto}@{self.adapter.node_id}"
                f" outstanding={self.outstanding_total()}"
                f" retx={self.retransmissions}>")
