"""Origin-side implementation of LAPI_Put and LAPI_Get.

Put and Get are the remote-memory-copy (RMC) primitives of section 2.2:
unilateral, non-blocking, unordered.  The origin-side work is: charge
the call overhead, packetize (for put) or issue a request (for get),
register fence/counter bookkeeping, and hand packets to the reliable
transport.  Target-side placement happens in the dispatcher.

Origin-counter semantics (section 2.3): for a put no larger than the
internal-retransmit-copy limit, LAPI copies the data into its own
buffers and the origin counter fires before the call returns ("data is
safely stored away"); for larger puts the user buffer must survive until
every packet is acknowledged, so the origin counter fires on the last
ack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import LapiError
from .constants import PacketKind
from .context import GetPending, SendState
from .protocol import control_packet, put_packets

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Lapi
    from .counters import LapiCounter

__all__ = ["do_put", "do_get"]


def _validate_common(lapi: "Lapi", target: int, length: int) -> None:
    if not (0 <= target < lapi.ctx.size):
        raise LapiError(
            f"target {target} outside job of {lapi.ctx.size} tasks")
    if length < 0:
        raise LapiError(f"negative transfer length {length}")


def do_put(lapi: "Lapi", target: int, length: int, tgt_addr: int,
           org_addr: int, tgt_cntr: Optional[int],
           org_cntr: Optional["LapiCounter"],
           cmpl_cntr: Optional["LapiCounter"]) -> Generator:
    """LAPI_Put: copy ``length`` bytes from local ``org_addr`` to
    ``tgt_addr`` in ``target``'s address space.  Non-blocking: returns
    after the message is staged/queued (the "pipeline latency" of
    section 4)."""
    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    _validate_common(lapi, target, length)
    sp = lapi.spans
    op_sid = None
    if sp is not None:
        t_call = lapi.sim.now
        op_sid = sp.open(ctx.rank, "lapi", "put", t_call,
                         parent=getattr(thread, "span_parent", None),
                         dst=target, bytes=length)
    yield from thread.execute(cfg.lapi_call_overhead)
    if sp is not None:
        sp.emit(ctx.rank, "lapi", "put", "call", t_call, lapi.sim.now,
                parent=op_sid, bytes=length)
    ctx.stats.puts += 1
    ctx.stats.bytes_sent += length

    data = lapi.memory.read(org_addr, length) if length else b""

    if target == ctx.rank:
        yield from _local_put(lapi, thread, data, tgt_addr, tgt_cntr,
                              org_cntr, cmpl_cntr)
        if sp is not None:
            sp.close(op_sid, lapi.sim.now, local=True)
        return

    msg_id = ctx.new_msg_id()
    cmpl_id = cmpl_cntr.id if cmpl_cntr is not None else None
    packets = put_packets(cfg, ctx.rank, target, msg_id, data, tgt_addr,
                          tgt_cntr, cmpl_id)
    if sp is not None:
        sp.bind_packets(packets, op_sid, "put", length,
                        msg_key=("lapi", ctx.rank, msg_id))

    small = length <= cfg.lapi_retrans_copy_limit
    state = SendState(msg_id, target, total_packets=len(packets),
                      org_cntr=None if small else org_cntr,
                      org_counted=small)
    ctx.send_msgs[msg_id] = state
    ctx.op_issued(target)
    state.on_complete = _make_send_complete(lapi, state)

    if small:
        # Copy into LAPI's internal (retransmission) buffers: the user
        # buffer is immediately reusable.
        if sp is not None:
            t_copy = lapi.sim.now
        yield from thread.execute(cfg.copy_cost(length))
        if sp is not None:
            sp.emit(ctx.rank, "lapi", "put", "copy", t_copy,
                    lapi.sim.now, parent=op_sid, bytes=length)
        if org_cntr is not None:
            if sp is not None:
                t_cu = lapi.sim.now
            yield from thread.execute(cfg.lapi_counter_update)
            if sp is not None:
                sp.emit(ctx.rank, "lapi", "put", "counter_update", t_cu,
                        lapi.sim.now, parent=op_sid)
            org_cntr.add(1)

    for pkt in packets:
        yield from thread.execute(cfg.lapi_pkt_send_cost)
        yield from lapi.transport.send_data(thread, pkt,
                                            on_ack=state.ack_one)
    if sp is not None:
        sp.close(op_sid, lapi.sim.now, packets=len(packets))


def _make_send_complete(lapi: "Lapi", state: SendState):
    def on_complete() -> None:
        del lapi.ctx.send_msgs[state.msg_id]
        if state.org_cntr is not None:
            state.org_cntr.add(1)
        lapi.ctx.op_completed(state.dst)
    return on_complete


def _local_put(lapi: "Lapi", thread, data: bytes, tgt_addr: int,
               tgt_cntr: Optional[int],
               org_cntr: Optional["LapiCounter"],
               cmpl_cntr: Optional["LapiCounter"]) -> Generator:
    """Put to self: one memcpy, all three counters fire locally."""
    cfg = lapi.config
    ctx = lapi.ctx
    ctx.stats.local_fastpaths += 1
    if data:
        yield from thread.execute(cfg.copy_cost(len(data)))
        lapi.memory.write(tgt_addr, data)
    for cntr in (org_cntr, cmpl_cntr):
        if cntr is not None:
            cntr.add(1)
    if tgt_cntr is not None:
        ctx.counter_by_id(tgt_cntr).add(1)
    ctx.progress_ws.notify_all()


def do_get(lapi: "Lapi", target: int, length: int, tgt_addr: int,
           org_addr: int, tgt_cntr: Optional[int],
           org_cntr: Optional["LapiCounter"]) -> Generator:
    """LAPI_Get: pull ``length`` bytes from ``tgt_addr`` at ``target``
    into local ``org_addr``.  Non-blocking: returns once the request is
    queued; ``org_cntr`` fires when the data has arrived."""
    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    _validate_common(lapi, target, length)
    sp = lapi.spans
    op_sid = None
    if sp is not None:
        t_call = lapi.sim.now
        op_sid = sp.open(ctx.rank, "lapi", "get", t_call,
                         parent=getattr(thread, "span_parent", None),
                         src=target, bytes=length)
    yield from thread.execute(cfg.lapi_call_overhead + cfg.lapi_get_extra)
    if sp is not None:
        sp.emit(ctx.rank, "lapi", "get", "call", t_call, lapi.sim.now,
                parent=op_sid, bytes=length)
    ctx.stats.gets += 1

    if target == ctx.rank:
        ctx.stats.local_fastpaths += 1
        if length:
            data = lapi.memory.read(tgt_addr, length)
            yield from thread.execute(cfg.copy_cost(length))
            lapi.memory.write(org_addr, data)
        if org_cntr is not None:
            org_cntr.add(1)
        if tgt_cntr is not None:
            ctx.counter_by_id(tgt_cntr).add(1)
        ctx.progress_ws.notify_all()
        if sp is not None:
            sp.close(op_sid, lapi.sim.now, local=True)
        return

    msg_id = ctx.new_msg_id()
    ctx.pending_gets[msg_id] = GetPending(msg_id, target, org_addr,
                                          length, org_cntr)
    ctx.op_issued(target)
    yield from thread.execute(cfg.lapi_pkt_send_cost)
    req = control_packet(
        cfg, ctx.rank, target, PacketKind.GET_REQ,
        msg_id=msg_id, tgt_addr=tgt_addr, length=length,
        tgt_cntr_id=tgt_cntr)
    if sp is not None:
        sp.bind_packet(req, op_sid, "get", length)
        sp.close(op_sid, lapi.sim.now)
    lapi.transport.send_control(req)
