"""LAPI -- the paper's primary contribution.

A faithful model of the Low-level Applications Programming Interface of
the IBM RS/6000 SP (PSSP 2.3): one-sided Put/Get, active messages with
decoupled header/completion handlers, atomic Rmw, three-counter
completion signalling, fences, and interrupt/polling progress modes --
all running on the simulated SP machine of :mod:`repro.machine`.

Public surface: :class:`Lapi` (the per-task handle), :class:`LapiCounter`,
the :class:`RmwOp`/:class:`QenvKey`/:class:`SenvKey` enums, and the
reusable :class:`ReliableTransport`.
"""

from .api import Lapi
from .constants import PacketKind, QenvKey, RmwOp, SenvKey
from .counters import LapiCounter
from .reliability import ReliableTransport

__all__ = [
    "Lapi",
    "LapiCounter",
    "PacketKind",
    "QenvKey",
    "ReliableTransport",
    "RmwOp",
    "SenvKey",
]
