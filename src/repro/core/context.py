"""Per-task LAPI state.

Everything a LAPI instance tracks between calls lives in a
:class:`LapiContext`: the counter and handler tables, in-flight send
message states, receive-side reassembly buffers, pending gets and RMWs,
fence accounting, barrier tokens, and statistics.  Keeping it in one
object (separate from the API facade) makes the dispatcher/API split
clean and the state inspectable from tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import LapiError
from ..sim import SimLock, WaitSet
from .counters import LapiCounter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Event, Simulator

__all__ = ["LapiContext", "LapiStats", "SendState", "RecvAssembly",
           "GetPending", "RmwPending"]


@dataclass
class LapiStats:
    """Operation and packet counters for one LAPI context."""

    puts: int = 0
    gets: int = 0
    amsends: int = 0
    rmws: int = 0
    fences: int = 0
    gfences: int = 0
    packets_processed: int = 0
    interrupts_taken: int = 0
    hdr_handlers_run: int = 0
    cmpl_handlers_run: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    local_fastpaths: int = 0


class SendState:
    """Origin-side tracking of one outgoing data message."""

    __slots__ = ("msg_id", "dst", "total_packets", "acked_packets",
                 "org_cntr", "org_counted", "on_complete")

    def __init__(self, msg_id: int, dst: int, total_packets: int,
                 org_cntr: Optional[LapiCounter],
                 org_counted: bool) -> None:
        self.msg_id = msg_id
        self.dst = dst
        self.total_packets = total_packets
        self.acked_packets = 0
        #: Origin counter still owed an increment when the message is
        #: fully acknowledged (None if it fired at send time -- the
        #: small-message internal-copy case).
        self.org_cntr = org_cntr
        self.org_counted = org_counted
        #: Hook run when the last packet is acknowledged.
        self.on_complete: Optional[Callable[[], None]] = None

    @property
    def complete(self) -> bool:
        return self.acked_packets >= self.total_packets

    def ack_one(self) -> None:
        """Record one packet acknowledgement; fires ``on_complete`` when
        the whole message has been acknowledged."""
        self.acked_packets += 1
        if self.complete and self.on_complete is not None:
            self.on_complete()


class RecvAssembly:
    """Target-side reassembly of one multi-packet message.

    Tolerates arbitrary packet arrival order: packets that land before
    the message's first packet (which carries the AM user header) are
    stashed in LAPI-internal buffers and flushed once the header handler
    has supplied the destination buffer.
    """

    __slots__ = ("src", "msg_id", "mtype", "total_len", "received",
                 "buf_addr", "stash", "hdr_seen", "cmpl_fn", "user_info",
                 "tgt_cntr_id", "cmpl_cntr_id", "tgt_addr")

    def __init__(self, src: int, msg_id: int, mtype: str,
                 total_len: int) -> None:
        self.src = src
        self.msg_id = msg_id
        self.mtype = mtype
        self.total_len = total_len
        self.received = 0
        #: Destination base address (known immediately for put; supplied
        #: by the header handler for active messages).
        self.buf_addr: Optional[int] = None
        #: Early packets awaiting the buffer address: (offset, payload).
        self.stash: list[tuple[int, bytes]] = []
        self.hdr_seen = False
        self.cmpl_fn: Optional[Callable] = None
        self.user_info: Any = None
        self.tgt_cntr_id: Optional[int] = None
        self.cmpl_cntr_id: Optional[int] = None
        self.tgt_addr: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.hdr_seen and self.received >= self.total_len


class GetPending:
    """Origin-side state of one outstanding LAPI_Get."""

    __slots__ = ("msg_id", "target", "org_addr", "length", "received",
                 "org_cntr")

    def __init__(self, msg_id: int, target: int, org_addr: int,
                 length: int, org_cntr: Optional[LapiCounter]) -> None:
        self.msg_id = msg_id
        self.target = target
        self.org_addr = org_addr
        self.length = length
        self.received = 0
        self.org_cntr = org_cntr

    @property
    def complete(self) -> bool:
        return self.received >= self.length


class RmwPending:
    """Origin-side state of one outstanding LAPI_Rmw."""

    __slots__ = ("req_id", "target", "prev_addr", "org_cntr", "done",
                 "prev_value")

    def __init__(self, req_id: int, target: int, prev_addr: Optional[int],
                 org_cntr: Optional[LapiCounter]) -> None:
        self.req_id = req_id
        self.target = target
        self.prev_addr = prev_addr
        self.org_cntr = org_cntr
        self.done = False
        self.prev_value: Optional[int] = None


class LapiContext:
    """Mutable state of one task's LAPI instance."""

    def __init__(self, sim: "Simulator", rank: int, size: int) -> None:
        self.sim = sim
        self.rank = rank
        self.size = size
        # -- counters ---------------------------------------------------
        self._next_counter_id = 0
        self.counters: dict[int, LapiCounter] = {}
        # -- active message handlers ------------------------------------
        self.handlers: list[Callable] = []
        # -- in-flight state --------------------------------------------
        self._next_msg_id = 0
        self._next_req_id = 0
        self.send_msgs: dict[int, SendState] = {}
        self.recv_asm: dict[tuple[int, int], RecvAssembly] = {}
        self.pending_gets: dict[int, GetPending] = {}
        self.pending_rmws: dict[int, RmwPending] = {}
        # -- fence accounting -------------------------------------------
        #: Data-bearing operations issued to each target and not yet
        #: known complete at the data-transfer level (section 5.3.2).
        self.outstanding: dict[int, int] = {}
        # -- barrier (gfence) -------------------------------------------
        self.barrier_epoch = 0
        self.barrier_tokens: set[tuple[int, int]] = set()
        # -- fail-stop peers --------------------------------------------
        #: Peers the failure detector convicted (fail-stop dead).  A
        #: dead peer satisfies barrier-token waits (its token will
        #: never come) and fails fast on new data sends; populated only
        #: when ``repro.resilience`` is armed, empty otherwise.
        self.dead_peers: set[int] = set()
        # -- progress signalling ----------------------------------------
        #: Notified after every dispatcher batch and local completion;
        #: predicate waits (fence, rmw_sync, polling loops) hang off it.
        self.progress_ws = WaitSet(sim, name=f"lapi{rank}.progress")
        #: Serializes per-packet dispatch: guarantees at most one header
        #: handler executes at a time per context (section 2.1).
        self.dispatch_lock = SimLock(sim, name=f"lapi{rank}.dispatch")
        #: Live completion-handler threads (LAPI_Term waits for them).
        self.active_handlers = 0
        self.stats = LapiStats()

    # ------------------------------------------------------------------
    def new_counter(self, name: str = "") -> LapiCounter:
        cid = self._next_counter_id
        self._next_counter_id += 1
        cntr = LapiCounter(self.sim, cid, name=name)
        cntr.on_change = self.progress_ws.notify_all
        self.counters[cid] = cntr
        return cntr

    def counter_by_id(self, cid: int) -> LapiCounter:
        cntr = self.counters.get(cid)
        if cntr is None:
            raise LapiError(
                f"task {self.rank}: unknown counter id {cid} (remote"
                " completion for a counter that was never created)")
        return cntr

    def new_msg_id(self) -> int:
        self._next_msg_id += 1
        return self._next_msg_id

    def new_req_id(self) -> int:
        self._next_req_id += 1
        return self._next_req_id

    def handler_by_id(self, hid: int) -> Callable:
        if not (0 <= hid < len(self.handlers)):
            raise LapiError(
                f"task {self.rank}: unknown AM handler id {hid}")
        return self.handlers[hid]

    # -- fence bookkeeping ---------------------------------------------
    def op_issued(self, target: int) -> None:
        self.outstanding[target] = self.outstanding.get(target, 0) + 1

    def op_completed(self, target: int) -> None:
        n = self.outstanding.get(target, 0)
        if n <= 0:
            raise LapiError(
                f"task {self.rank}: completion underflow for target"
                f" {target}")
        self.outstanding[target] = n - 1
        self.progress_ws.notify_all()

    def outstanding_to(self, target: Optional[int] = None) -> int:
        if target is not None:
            return self.outstanding.get(target, 0)
        return sum(self.outstanding.values())
