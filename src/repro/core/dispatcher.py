"""The LAPI dispatcher: target-side protocol engine.

Section 2.1 describes the dispatcher as "a part of the LAPI layer that
deals with the arrival of messages and invocation of handlers".  This
module implements it:

* packets are pulled from the adapter client's RX FIFO and processed
  under the context's dispatch lock, which enforces the paper's rule
  that **at most one header handler executes at a time** per context;
* completion handlers run on their own HANDLER-priority threads and may
  execute concurrently (the paper permits multiple completion handlers;
  synchronization between them is the user's job);
* arriving data is copied straight into the address the header handler
  (or the self-describing put header) names -- no intermediate
  buffering beyond the stash for packets that outrace their message's
  first packet;
* the dispatcher itself never blocks on flow control: everything it
  emits (ACKs, completions, RMW replies) rides the control path, and
  get requests are serviced by spawned threads.

The dispatcher runs in two modes matching the paper's progress model:
interrupt mode spawns an INTERRUPT-priority thread per arrival burst;
polling mode runs the same code inline from LAPI calls
(:meth:`Dispatcher.poll_step`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import LapiError
from ..machine.cpu import HANDLER
from .constants import PacketKind
from .context import RecvAssembly
from .protocol import control_packet, get_reply_packets

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cpu import Thread
    from ..machine.packet import Packet
    from .api import Lapi

__all__ = ["Dispatcher"]

#: Mask to 64 bits, matching the hardware word LAPI_Rmw operates on.
_U64 = (1 << 64) - 1

#: Message type -> operation label for target-side span attribution.
_MTYPE_OP = {PacketKind.MSG_PUT: "put", PacketKind.MSG_AM: "amsend",
             PacketKind.MSG_GET_REP: "get"}


def _to_signed(v: int) -> int:
    v &= _U64
    return v - (1 << 64) if v >= (1 << 63) else v


def linger_loop(dispatcher, thread) -> "Generator":
    """Shared interrupt-coalescing tail for protocol dispatchers.

    Waits (off-CPU) up to ``interrupt_linger`` for further arrivals;
    each one is processed at the amortized rate and resets the timer.
    Returns once the line has gone quiet.
    """
    sim = thread.sim
    client = dispatcher.lapi.client if hasattr(dispatcher, "lapi") \
        else dispatcher.mpl.client
    linger = dispatcher.config.interrupt_linger
    if linger <= 0:
        return
    while True:
        getter = client.rx.get()
        if not getter.triggered:
            timeout = sim.timeout(linger)
            yield from thread.wait(sim.any_of([getter, timeout]))
            if not getter.triggered:
                client.rx.cancel_get(getter)
                return
        yield from dispatcher.process(thread, getter.value,
                                      amortized=True)
        yield from dispatcher.drain(thread)
        dispatcher.ctx.progress_ws.notify_all()


class Dispatcher:
    """Receive-side engine of one LAPI context."""

    def __init__(self, lapi: "Lapi") -> None:
        self.lapi = lapi
        self.ctx = lapi.ctx
        self.config = lapi.config
        #: Optional :class:`repro.obs.Histogram` observing the stash
        #: depth whenever a packet outraces its message's first packet
        #: (reassembly out-of-order depth).  Installed by Lapi.init.
        self.ooo_depth = None

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def drain(self, thread: "Thread") -> Generator:
        """Process every packet currently queued; returns the count."""
        processed = 0
        while True:
            ok, pkt = self.lapi.client.rx.try_get()
            if not ok:
                break
            yield from self.process(thread, pkt, amortized=processed > 0)
            processed += 1
        if processed:
            self.ctx.progress_ws.notify_all()
        return processed

    def poll_step(self, thread: "Thread") -> Generator:
        """One polling-mode progress step (section 2.1's polling mode).

        Charges the doorbell check; drains pending packets if any,
        otherwise blocks the calling thread until the next arrival and
        processes it.  Used by Waitcntr/fence loops in polling mode, so
        a polling task makes progress exactly while it sits in LAPI
        calls -- and a task that never calls LAPI makes none (the
        documented deadlock hazard of polling mode).
        """
        # Inlined thread.execute fast path: a Waitcntr loop issues one
        # poll_step per pending packet, so the extra generator frame is
        # measurable.  Identical timing (execute with the CPU held and
        # no faults is exactly ``yield cost``).
        cost = self.config.poll_check_cost
        if thread._holding and thread.cpu.faults is None and cost > 0:
            yield cost
            thread.cpu_time += cost
        else:
            yield from thread.execute(cost)
        if self.lapi.client.pending > 0:
            yield from self.drain(thread)
            return
        # Wake on the next packet OR on any progress signal -- window
        # acknowledgements are consumed at the adapter level, so a
        # poller must not insist on seeing a packet.
        sim = thread.sim
        getter = self.lapi.client.rx.get()
        progress = self.ctx.progress_ws.wait()
        yield from thread.wait(sim.any_of([getter, progress]))
        if getter.triggered:
            yield from self.process(thread, getter.value)
            # Opportunistically absorb the rest of the burst.
            yield from self.drain(thread)
            self.ctx.progress_ws.notify_all()
        else:
            self.lapi.client.rx.cancel_get(getter)

    def interrupt_service(self, thread: "Thread") -> Generator:
        """Body of the interrupt-mode dispatcher thread.

        One hardware interrupt services a whole packet burst: after
        draining, the thread lingers briefly (releasing the CPU) and
        absorbs closely-following packets at the amortized rate -- the
        interrupt coalescing that keeps bulk streams from paying the
        full interrupt cost per packet.
        """
        self.ctx.stats.interrupts_taken += 1
        yield from thread.execute(self.config.interrupt_latency)
        yield from self.drain(thread)
        yield from linger_loop(self, thread)
        # Re-arm before exiting; arrivals from now on re-fire.
        self.lapi.client.arm_interrupt()

    # ------------------------------------------------------------------
    # per-packet processing
    # ------------------------------------------------------------------
    def process(self, thread: "Thread", pkt: "Packet",
                amortized: bool = False) -> Generator:
        """Handle one packet under the dispatch lock.

        ``amortized`` marks packets after the first of a dispatch
        batch: the wake-up/demux overhead is shared, so they pay the
        cheaper bulk rate.
        """
        ev = self.ctx.dispatch_lock.acquire(owner=thread)
        if not ev.triggered:
            yield from thread.wait(ev)
        try:
            yield from self._process_locked(thread, pkt, amortized)
        finally:
            self.ctx.dispatch_lock.release()

    def _process_locked(self, thread: "Thread", pkt: "Packet",
                        amortized: bool = False) -> Generator:
        cfg = self.config
        ctx = self.ctx
        ctx.stats.packets_processed += 1
        trace = self.lapi.task.cluster.trace
        if trace is not None and trace.wants("lapi"):
            trace.log(thread.sim.now, f"lapi{ctx.rank}", "lapi",
                      f"dispatch {pkt!r}", **pkt.trace_fields())
        sp = self.lapi.spans
        if pkt.kind == PacketKind.ACK:
            # Lightweight: adjust transport state, run ack hooks.
            if thread._holding and thread.cpu.faults is None:
                yield 0.3
                thread.cpu_time += 0.3
            else:
                yield from thread.execute(0.3)
            if sp is not None:
                sp.packet_dispatched(pkt, thread.sim.now)
            self.lapi.transport.on_ack(pkt)
            return
        cost = (cfg.lapi_pkt_recv_amortized if amortized
                else cfg.lapi_pkt_recv_cost)
        if thread._holding and thread.cpu.faults is None and cost > 0:
            yield cost
            thread.cpu_time += cost
        else:
            yield from thread.execute(cost)
        if sp is not None:
            sp.packet_dispatched(pkt, thread.sim.now)
        if not self.lapi.transport.on_packet(pkt):
            return  # duplicate delivery (retransmission overlap)
        kind = pkt.kind
        if kind == PacketKind.DATA:
            yield from self._data(thread, pkt)
        elif kind == PacketKind.GET_REQ:
            self._get_request(pkt)
        elif kind == "getv_req":
            self._getv_request(pkt)
        elif kind == PacketKind.CMPL:
            if sp is not None:
                t_cu = thread.sim.now
            yield from thread.execute(cfg.lapi_counter_update)
            if sp is not None:
                sp.emit(ctx.rank, "lapi", "cmpl", "counter_update", t_cu,
                        thread.sim.now, parent=sp.origin_of(pkt))
            ctx.counter_by_id(pkt.info["cntr_id"]).add(1)
        elif kind == PacketKind.RMW_REQ:
            yield from self._rmw_request(thread, pkt)
        elif kind == PacketKind.RMW_REP:
            yield from self._rmw_reply(thread, pkt)
        elif kind == PacketKind.BARRIER:
            ctx.barrier_tokens.add((pkt.info["epoch"], pkt.info["round"]))
            ctx.progress_ws.notify_all()
        else:
            raise LapiError(f"dispatcher: unknown packet kind {kind!r}")

    # ------------------------------------------------------------------
    # DATA packets: put / am / get replies
    # ------------------------------------------------------------------
    def _data(self, thread: "Thread", pkt: "Packet") -> Generator:
        mtype = pkt.info["mtype"]
        if mtype == PacketKind.MSG_PUT:
            yield from self._put_data(thread, pkt)
        elif mtype == PacketKind.MSG_AM:
            yield from self._am_data(thread, pkt)
        elif mtype == PacketKind.MSG_GET_REP:
            yield from self._get_reply_data(thread, pkt)
        elif mtype == "putv":
            yield from self._putv_data(thread, pkt)
        elif mtype == "getv_rep":
            yield from self._getv_reply_data(thread, pkt)
        else:
            raise LapiError(f"dispatcher: unknown data mtype {mtype!r}")

    def _assembly(self, pkt: "Packet") -> RecvAssembly:
        key = (pkt.src, pkt.info["msg_id"])
        asm = self.ctx.recv_asm.get(key)
        if asm is None:
            asm = RecvAssembly(pkt.src, pkt.info["msg_id"],
                               pkt.info["mtype"], pkt.info["total"])
            self.ctx.recv_asm[key] = asm
        return asm

    def _put_data(self, thread: "Thread", pkt: "Packet") -> Generator:
        """A put packet is fully self-describing: place it directly."""
        cfg = self.config
        asm = self._assembly(pkt)
        if not asm.hdr_seen:
            asm.hdr_seen = True  # every put packet carries the header
            asm.buf_addr = pkt.info["tgt_addr"]
            asm.tgt_cntr_id = pkt.info["tgt_cntr_id"]
            asm.cmpl_cntr_id = pkt.info["cmpl_cntr_id"]
        payload = pkt.payload
        if payload:
            sp = self.lapi.spans
            if sp is not None:
                t_cp = thread.sim.now
            yield from thread.execute(cfg.copy_cost(len(payload)))
            if sp is not None:
                sp.emit(self.ctx.rank, "lapi", "put", "copy", t_cp,
                        thread.sim.now, parent=sp.origin_of(pkt),
                        bytes=len(payload))
            self.lapi.memory.write(asm.buf_addr + pkt.info["offset"],
                                   payload)
            asm.received += len(payload)
            self.ctx.stats.bytes_received += len(payload)
        if asm.complete:
            del self.ctx.recv_asm[(asm.src, asm.msg_id)]
            yield from self._message_complete(thread, asm)

    def _am_data(self, thread: "Thread", pkt: "Packet") -> Generator:
        cfg = self.config
        ctx = self.ctx
        asm = self._assembly(pkt)
        if pkt.info.get("is_first"):
            if asm.hdr_seen:
                raise LapiError("duplicate first packet escaped dedup")
            asm.hdr_seen = True
            asm.tgt_cntr_id = pkt.info["tgt_cntr_id"]
            asm.cmpl_cntr_id = pkt.info["cmpl_cntr_id"]
            sp = self.lapi.spans
            if sp is not None:
                mkey = ("lapi", pkt.src, pkt.info["msg_id"])
                t_hh = thread.sim.now
            # --- the header handler (one at a time per context) -------
            yield from thread.execute(cfg.lapi_hdr_handler_cost)
            ctx.stats.hdr_handlers_run += 1
            handler = ctx.handler_by_id(pkt.info["handler_id"])
            reply = handler(self.lapi.task, pkt.src, pkt.info["uhdr"],
                            asm.total_len)
            if sp is not None:
                sp.emit(ctx.rank, "lapi", "amsend", "hdr_handler", t_hh,
                        thread.sim.now, parent=sp.message_origin(mkey),
                        bytes=sp.message_bytes(mkey))
            buf_addr, cmpl_fn, user_info = self._check_hh_reply(
                reply, asm.total_len)
            asm.buf_addr = buf_addr
            asm.cmpl_fn = cmpl_fn
            asm.user_info = user_info
            # Flush any data that outraced the first packet out of the
            # stash (second copy -- the price of early arrival).
            if asm.stash:
                if sp is not None:
                    t_fl = thread.sim.now
                    flushed = 0
                for offset, payload in asm.stash:
                    yield from thread.execute(cfg.copy_cost(len(payload)))
                    self.lapi.memory.write(asm.buf_addr + offset, payload)
                    asm.received += len(payload)
                    ctx.stats.bytes_received += len(payload)
                    if sp is not None:
                        flushed += len(payload)
                if sp is not None:
                    sp.emit(ctx.rank, "lapi", "amsend", "copy", t_fl,
                            thread.sim.now,
                            parent=sp.message_origin(mkey),
                            bytes=flushed, stash_flush=True)
                asm.stash.clear()

        payload = pkt.payload
        if payload:
            sp = self.lapi.spans
            if sp is not None:
                t_cp = thread.sim.now
            yield from thread.execute(cfg.copy_cost(len(payload)))
            if sp is not None:
                sp.emit(ctx.rank, "lapi", "amsend", "copy", t_cp,
                        thread.sim.now, parent=sp.origin_of(pkt),
                        bytes=len(payload))
            if asm.hdr_seen:
                self.lapi.memory.write(asm.buf_addr + pkt.info["offset"],
                                       payload)
                asm.received += len(payload)
                ctx.stats.bytes_received += len(payload)
            else:
                # Outran the first packet: hold in LAPI-internal buffers
                # (the copy above is the stash copy).
                asm.stash.append((pkt.info["offset"], payload))
                if self.ooo_depth is not None:
                    self.ooo_depth.observe(float(len(asm.stash)))
        if asm.complete:
            del ctx.recv_asm[(asm.src, asm.msg_id)]
            yield from self._message_complete(thread, asm)

    @staticmethod
    def _check_hh_reply(reply, total_len: int):
        if not (isinstance(reply, tuple) and len(reply) == 3):
            raise LapiError(
                "header handler must return (buf_addr, completion_handler,"
                f" user_info); got {reply!r}")
        buf_addr, cmpl_fn, user_info = reply
        if total_len > 0 and buf_addr is None:
            # Section 5.3.1: the header handler cannot block or return a
            # NULL pointer when the message carries data.
            raise LapiError(
                "header handler returned no buffer for a message carrying"
                f" {total_len} bytes of user data")
        return buf_addr, cmpl_fn, user_info

    def _message_complete(self, thread: "Thread",
                          asm: RecvAssembly) -> Generator:
        """All bytes of a put/am message are in place at the target."""
        cfg = self.config
        sp = self.lapi.spans
        if asm.cmpl_fn is not None:
            cs_sid = None
            if sp is not None:
                mkey = ("lapi", asm.src, asm.msg_id)
                cs_sid = sp.open(self.ctx.rank, "lapi",
                                 _MTYPE_OP.get(asm.mtype, str(asm.mtype)),
                                 thread.sim.now, phase="cmpl_handler",
                                 parent=sp.message_origin(mkey),
                                 bytes=sp.message_bytes(mkey))
            # Completion handlers run concurrently on their own threads.
            yield from thread.execute(cfg.lapi_cmpl_handler_cost)
            self.ctx.active_handlers += 1
            lapi = self.lapi

            def body(hthread, a=asm):
                if sp is not None:
                    # Nested operations issued from the handler (e.g.
                    # GA reply puts) parent under the handler span.
                    hthread.span_parent = cs_sid
                try:
                    result = a.cmpl_fn(lapi.task, a.user_info)
                    if result is not None and hasattr(result, "send"):
                        yield from result
                    else:
                        yield from hthread.execute(0.0)
                finally:
                    lapi.ctx.active_handlers -= 1
                lapi.ctx.stats.cmpl_handlers_run += 1
                if sp is not None:
                    sp.close(cs_sid, hthread.sim.now)
                yield from self._signal_completion(hthread, a)
                lapi.ctx.progress_ws.notify_all()

            thread.cpu.spawn(body, name=f"lapi{self.ctx.rank}.cmpl",
                             priority=HANDLER)
        else:
            yield from self._signal_completion(thread, asm)

    def _signal_completion(self, thread: "Thread",
                           asm: RecvAssembly) -> Generator:
        """Update the target counter; notify the origin's cmpl counter."""
        cfg = self.config
        sp = self.lapi.spans
        if sp is not None:
            mkey = ("lapi", asm.src, asm.msg_id)
            origin = sp.message_origin(mkey)
            op = _MTYPE_OP.get(asm.mtype, str(asm.mtype))
        if asm.tgt_cntr_id is not None:
            if sp is not None:
                t_cu = thread.sim.now
            yield from thread.execute(cfg.lapi_counter_update)
            if sp is not None:
                sp.emit(self.ctx.rank, "lapi", op, "counter_update",
                        t_cu, thread.sim.now, parent=origin)
            self.ctx.counter_by_id(asm.tgt_cntr_id).add(1)
            self.ctx.progress_ws.notify_all()
        if asm.cmpl_cntr_id is not None:
            yield from thread.execute(cfg.lapi_ack_cost)
            cmpl = control_packet(
                cfg, self.ctx.rank, asm.src, PacketKind.CMPL,
                cntr_id=asm.cmpl_cntr_id)
            if sp is not None:
                sp.bind_packet(cmpl, origin, "cmpl")
            self.lapi.transport.send_control(cmpl)

    # ------------------------------------------------------------------
    # vector (non-contiguous) extension: putv / getv (section 6 #1)
    # ------------------------------------------------------------------
    def _putv_data(self, thread: "Thread", pkt: "Packet") -> Generator:
        """A putv packet scatters its runs straight into memory."""
        cfg = self.config
        asm = self._assembly(pkt)
        if not asm.hdr_seen:
            asm.hdr_seen = True
            asm.tgt_cntr_id = pkt.info["tgt_cntr_id"]
            asm.cmpl_cntr_id = pkt.info["cmpl_cntr_id"]
        payload = pkt.payload
        if payload:
            yield from thread.execute(cfg.copy_cost(len(payload)))
            pos = 0
            for addr, length in pkt.info["runs"]:
                self.lapi.memory.write(addr, payload[pos:pos + length])
                pos += length
            asm.received += len(payload)
            self.ctx.stats.bytes_received += len(payload)
        if asm.complete:
            del self.ctx.recv_asm[(asm.src, asm.msg_id)]
            yield from self._message_complete(thread, asm)

    def _getv_request(self, pkt: "Packet") -> None:
        """Service one getv request packet: stream its runs back,
        addressed directly to the origin's final locations."""
        from .vector import MSG_GETV_REP, pack_vector_packets

        lapi = self.lapi
        cfg = self.config
        runs = [tuple(r) for r in pkt.info["runs"]]
        msg_id = pkt.info["msg_id"]
        src = pkt.src

        def body(thread):
            dest_runs = [(org_addr, n) for _, org_addr, n in runs]
            sources = [(tgt_addr, n) for tgt_addr, _, n in runs]

            def read_run(ridx, off, length):
                addr, _ = sources[ridx]
                return lapi.memory.read(addr + off, length)

            packets = pack_vector_packets(
                cfg, lapi.ctx.rank, src, msg_id, MSG_GETV_REP,
                dest_runs, read_run)
            total = sum(n for _, n in dest_runs)
            if total <= cfg.lapi_retrans_copy_limit:
                yield from thread.execute(cfg.copy_cost(total))
            for p in packets:
                yield from thread.execute(cfg.lapi_pkt_send_cost)
                yield from lapi.transport.send_data(thread, p)

        lapi.task.node.cpu.spawn(body,
                                 name=f"lapi{self.ctx.rank}.getvsvc",
                                 priority=HANDLER)

    def _getv_reply_data(self, thread: "Thread",
                         pkt: "Packet") -> Generator:
        """Vector reply runs land directly in their final addresses."""
        cfg = self.config
        pending = self.ctx.pending_gets.get(pkt.info["msg_id"])
        if pending is None:
            raise LapiError(
                f"task {self.ctx.rank}: getv reply for unknown msg"
                f" {pkt.info['msg_id']}")
        payload = pkt.payload
        if payload:
            yield from thread.execute(cfg.copy_cost(len(payload)))
            pos = 0
            for addr, length in pkt.info["runs"]:
                self.lapi.memory.write(addr, payload[pos:pos + length])
                pos += length
            pending.received += len(payload)
            self.ctx.stats.bytes_received += len(payload)
        if pending.complete:
            del self.ctx.pending_gets[pending.msg_id]
            if pending.org_cntr is not None:
                yield from thread.execute(cfg.lapi_counter_update)
                pending.org_cntr.add(1)
            self.ctx.op_completed(pending.target)

    # ------------------------------------------------------------------
    # GET servicing
    # ------------------------------------------------------------------
    def _get_request(self, pkt: "Packet") -> None:
        """Spawn a service thread to stream the requested data back.

        The dispatcher itself must not block on the send window, so the
        (window-limited) reply stream runs on a HANDLER-priority thread.
        """
        lapi = self.lapi
        cfg = self.config
        info = dict(pkt.info)
        src = pkt.src
        sp = lapi.spans
        origin = sp.origin_of(pkt) if sp is not None else None

        def body(thread):
            data = lapi.memory.read(info["tgt_addr"], info["length"])
            packets = get_reply_packets(cfg, lapi.ctx.rank, src,
                                        info["msg_id"], data)
            if sp is not None:
                sp.bind_packets(packets, origin, "get", info["length"])
            # Small replies are copied into LAPI's retransmission
            # buffers; large ones stream straight from target memory
            # (the same zero-copy rule as large puts).
            if info["length"] <= cfg.lapi_retrans_copy_limit:
                yield from thread.execute(cfg.copy_cost(info["length"]))
            for p in packets:
                yield from thread.execute(cfg.lapi_pkt_send_cost)
                yield from lapi.transport.send_data(thread, p)
            # Target counter: data has been copied out of target memory.
            if info.get("tgt_cntr_id") is not None:
                yield from thread.execute(cfg.lapi_counter_update)
                lapi.ctx.counter_by_id(info["tgt_cntr_id"]).add(1)
                lapi.ctx.progress_ws.notify_all()

        lapi.task.node.cpu.spawn(body, name=f"lapi{self.ctx.rank}.getsvc",
                                 priority=HANDLER)

    def _get_reply_data(self, thread: "Thread",
                        pkt: "Packet") -> Generator:
        cfg = self.config
        pending = self.ctx.pending_gets.get(pkt.info["msg_id"])
        if pending is None:
            raise LapiError(
                f"task {self.ctx.rank}: get reply for unknown msg"
                f" {pkt.info['msg_id']}")
        payload = pkt.payload
        if payload:
            yield from thread.execute(cfg.copy_cost(len(payload)))
            self.lapi.memory.write(pending.org_addr + pkt.info["offset"],
                                   payload)
            pending.received += len(payload)
            self.ctx.stats.bytes_received += len(payload)
        if pending.complete or pending.length == 0:
            del self.ctx.pending_gets[pending.msg_id]
            if pending.org_cntr is not None:
                sp = self.lapi.spans
                if sp is not None:
                    t_cu = thread.sim.now
                yield from thread.execute(cfg.lapi_counter_update)
                if sp is not None:
                    sp.emit(self.ctx.rank, "lapi", "get",
                            "counter_update", t_cu, thread.sim.now,
                            parent=sp.origin_of(pkt))
                pending.org_cntr.add(1)
            self.ctx.op_completed(pending.target)

    # ------------------------------------------------------------------
    # RMW
    # ------------------------------------------------------------------
    def _rmw_request(self, thread: "Thread", pkt: "Packet") -> Generator:
        """Apply an atomic op to target memory; reply with the old value.

        Atomicity holds because all RMWs at a target are applied by its
        dispatcher under the dispatch lock.
        """
        from .rmw import apply_rmw_local

        cfg = self.config
        info = pkt.info
        yield from thread.execute(cfg.mutex_cost + 0.5)
        prev = apply_rmw_local(self.lapi.memory, info["op"],
                               info["tgt_addr"], info["in_val"],
                               info.get("cmp_val"))
        self.lapi.transport.send_control(control_packet(
            cfg, self.ctx.rank, pkt.src, PacketKind.RMW_REP,
            req_id=info["req_id"], prev_value=prev))

    def _rmw_reply(self, thread: "Thread", pkt: "Packet") -> Generator:
        cfg = self.config
        pending = self.ctx.pending_rmws.pop(pkt.info["req_id"], None)
        if pending is None:
            raise LapiError(
                f"task {self.ctx.rank}: RMW reply for unknown request"
                f" {pkt.info['req_id']}")
        pending.prev_value = pkt.info["prev_value"]
        pending.done = True
        if pending.prev_addr is not None:
            yield from thread.execute(cfg.copy_cost(8))
            self.lapi.memory.write_i64(pending.prev_addr,
                                       pending.prev_value)
        if pending.org_cntr is not None:
            yield from thread.execute(cfg.lapi_counter_update)
            pending.org_cntr.add(1)
        self.ctx.op_completed(pending.target)
