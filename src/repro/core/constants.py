"""LAPI constants: operation codes and environment-query keys.

Mirrors the constants of the PSSP 2.3 LAPI interface that the paper's
Table 1 functions take (see `IBM PSSP Administration Guide`, GC23-3897).
"""

from __future__ import annotations

import enum

__all__ = ["RmwOp", "QenvKey", "SenvKey", "PacketKind"]


class RmwOp(enum.Enum):
    """The four atomic read-modify-write primitives of ``LAPI_Rmw``.

    Section 3: "LAPI provides a simple RMW mechanism with four atomic
    primitives for Swap, Compare_and_Swap, Fetch_and_Add, Fetch_and_Or".
    All operate on an aligned 64-bit word in the target's address space
    and return the previous value to the origin.
    """

    SWAP = "swap"
    COMPARE_AND_SWAP = "compare_and_swap"
    FETCH_AND_ADD = "fetch_and_add"
    FETCH_AND_OR = "fetch_and_or"


class QenvKey(enum.Enum):
    """Query keys accepted by ``LAPI_Qenv``."""

    #: This task's id within the job.
    TASK_ID = "task_id"
    #: Number of tasks in the job.
    NUM_TASKS = "num_tasks"
    #: Maximum user header (uhdr) bytes in LAPI_Amsend.
    MAX_UHDR_SZ = "max_uhdr_sz"
    #: Maximum user data bytes a *single-packet* active message can carry
    #: alongside a maximal uhdr -- the "around 900 bytes" GA exploits.
    MAX_AM_PAYLOAD = "max_am_payload"
    #: Data bytes per packet for multi-packet transfers.
    MAX_PKT_PAYLOAD = "max_pkt_payload"
    #: Current interrupt mode (1 = interrupt, 0 = polling).
    INTERRUPT_SET = "interrupt_set"
    #: Number of packets the send window allows in flight per target.
    SEND_WINDOW = "send_window"


class SenvKey(enum.Enum):
    """Settable environment knobs accepted by ``LAPI_Senv``."""

    #: 1 = interrupt mode (default), 0 = polling mode.
    INTERRUPT_SET = "interrupt_set"
    #: 1 = check user errors eagerly (always on in this model).
    ERROR_CHK = "error_chk"


class PacketKind:
    """Wire packet kinds used by the LAPI protocol engine.

    Grouped as *data-bearing* kinds (flow through the send window) and
    *control* kinds (bypass the window so the dispatcher never blocks).
    """

    #: Multi-packet data of Put / Amsend / Get-reply streams.
    DATA = "data"
    #: Transport acknowledgement (reliability layer).
    ACK = "ack"
    #: Remote-get request: target must stream data back.
    GET_REQ = "get_req"
    #: Completion notification updating an origin-side counter.
    CMPL = "cmpl"
    #: Read-modify-write request / reply.
    RMW_REQ = "rmw_req"
    RMW_REP = "rmw_rep"
    #: Dissemination-barrier token (LAPI_Gfence).
    BARRIER = "barrier"

    #: Kinds that the reliability layer sequences and retransmits.
    RELIABLE = frozenset({DATA, GET_REQ, CMPL, RMW_REQ, RMW_REP, BARRIER})

    #: Message types carried inside DATA packets.
    MSG_PUT = "put"
    MSG_AM = "am"
    MSG_GET_REP = "get_rep"
