"""LAPI completion counters.

Section 2.3: LAPI signals communication progress through counters the
user associates with events.  A counter may be shared by many operations
("check their completion as a group"); ``LAPI_Waitcntr`` blocks until the
counter reaches a requested value and *decrements it by that value* on
return; ``LAPI_Getcntr`` reads without consuming.

The counter is an opaque object (the paper stresses users must go
through the API), registered in its context's table so remote completion
notifications can address it by id.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import LapiError
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator

__all__ = ["LapiCounter"]


class LapiCounter:
    """An opaque LAPI completion counter.

    Create through :meth:`repro.core.api.Lapi.counter`, never directly,
    so the counter is registered for remote notification.
    """

    def __init__(self, sim: "Simulator", cid: int, name: str = "") -> None:
        self._sim = sim
        #: Context-local id; remote tasks address the counter by this.
        self.id = cid
        self.name = name or f"cntr{cid}"
        self._value = 0
        #: FIFO waiters: (threshold, event).  Served strictly in order --
        #: a large-threshold waiter at the head blocks later small ones,
        #: matching the single-consumer pattern LAPI counters are used in.
        self._waiters: list[tuple[int, Event]] = []
        #: Total increments ever applied (monotonic; handy in tests).
        self.total = 0
        #: Hook fired after every value change; the owning context
        #: points it at its progress wait-set so polling loops wake on
        #: counter updates that arrive without a packet (adapter-level
        #: acknowledgements).
        self.on_change = None

    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Current (non-consuming) counter value."""
        return self._value

    def add(self, count: int = 1) -> None:
        """Increment the counter and serve any satisfiable waiters."""
        if count <= 0:
            raise LapiError(f"counter increment must be positive: {count}")
        self._value += count
        self.total += count
        self._serve()
        if self.on_change is not None:
            self.on_change()

    def set(self, value: int) -> None:
        """``LAPI_Setcntr``: overwrite the counter value."""
        if value < 0:
            raise LapiError(f"counter value must be >= 0: {value}")
        self._value = value
        self._serve()
        if self.on_change is not None:
            self.on_change()

    def _serve(self) -> None:
        while self._waiters and self._value >= self._waiters[0][0]:
            threshold, ev = self._waiters.pop(0)
            self._value -= threshold
            ev.succeed(self._value)

    # ------------------------------------------------------------------
    def wait_event(self, threshold: int) -> Event:
        """Event firing once the counter has absorbed ``threshold``.

        The decrement-on-return semantics of ``LAPI_Waitcntr`` happen at
        fire time.  Immediate satisfaction is checked synchronously.
        """
        if threshold <= 0:
            raise LapiError(f"wait threshold must be positive: {threshold}")
        ev = Event(self._sim, name=f"waitcntr:{self.name}")
        self._waiters.append((threshold, ev))
        self._serve()
        return ev

    def try_consume(self, threshold: int) -> bool:
        """Non-blocking ``Waitcntr`` attempt (polling-mode fast path).

        Only valid when no event waiter is queued ahead (mixed use would
        break FIFO fairness); consumes and returns True when satisfied.
        """
        if threshold <= 0:
            raise LapiError(f"wait threshold must be positive: {threshold}")
        if self._waiters:
            raise LapiError(
                f"try_consume on {self.name} with queued waiters")
        if self._value >= threshold:
            self._value -= threshold
            return True
        return False

    @property
    def waiting(self) -> int:
        """Number of queued waiters (diagnostics)."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<LapiCounter {self.name} value={self._value}"
                f" waiters={len(self._waiters)}>")
