"""Origin-side implementation of LAPI_Rmw.

Section 3: LAPI's mutual-exclusion story is four atomic primitives on a
64-bit word in the target's address space -- Swap, Compare-and-Swap,
Fetch-and-Add, Fetch-and-Or -- far simpler than MPI-2's three-mechanism
synchronization.  The op executes atomically inside the target's
dispatcher; the previous value returns to the origin, landing at
``prev_addr`` and/or waking ``org_cntr``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..errors import LapiError
from .constants import PacketKind, RmwOp
from .context import RmwPending
from .protocol import control_packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Lapi
    from .counters import LapiCounter

__all__ = ["do_rmw", "apply_rmw_local"]


def do_rmw(lapi: "Lapi", op: RmwOp, target: int, tgt_addr: int,
           in_val: int, cmp_val: Optional[int],
           prev_addr: Optional[int],
           org_cntr: Optional["LapiCounter"]) -> Generator:
    """LAPI_Rmw: non-blocking atomic op; returns the pending handle.

    For :data:`RmwOp.COMPARE_AND_SWAP`, ``cmp_val`` is the comparand and
    ``in_val`` the replacement.  The handle's ``done``/``prev_value``
    fields resolve when the reply arrives (use
    :meth:`repro.core.api.Lapi.rmw_sync` to block).
    """
    cfg = lapi.config
    ctx = lapi.ctx
    thread = lapi.current_thread()
    if not (0 <= target < ctx.size):
        raise LapiError(
            f"target {target} outside job of {ctx.size} tasks")
    if op is RmwOp.COMPARE_AND_SWAP and cmp_val is None:
        raise LapiError("COMPARE_AND_SWAP requires cmp_val")
    if op is not RmwOp.COMPARE_AND_SWAP and cmp_val is not None:
        raise LapiError(f"cmp_val is only meaningful for CAS, not {op}")
    yield from thread.execute(cfg.lapi_call_overhead)
    ctx.stats.rmws += 1

    pending = RmwPending(ctx.new_req_id(), target, prev_addr, org_cntr)

    if target == ctx.rank:
        ctx.stats.local_fastpaths += 1
        yield from thread.execute(cfg.mutex_cost + 0.5)
        prev = apply_rmw_local(lapi.memory, op, tgt_addr, in_val, cmp_val)
        pending.prev_value = prev
        pending.done = True
        if prev_addr is not None:
            lapi.memory.write_i64(prev_addr, prev)
        if org_cntr is not None:
            org_cntr.add(1)
        ctx.progress_ws.notify_all()
        return pending

    ctx.pending_rmws[pending.req_id] = pending
    ctx.op_issued(target)
    yield from thread.execute(cfg.lapi_pkt_send_cost)
    lapi.transport.send_control(control_packet(
        cfg, ctx.rank, target, PacketKind.RMW_REQ,
        req_id=pending.req_id, op=op, tgt_addr=tgt_addr,
        in_val=in_val, cmp_val=cmp_val))
    return pending


def apply_rmw_local(memory, op: RmwOp, addr: int, in_val: int,
                    cmp_val: Optional[int]) -> int:
    """Apply an RMW op to local memory; returns the previous value."""
    from .dispatcher import _to_signed
    prev = memory.read_i64(addr)
    if op is RmwOp.SWAP:
        memory.write_i64(addr, _to_signed(in_val))
    elif op is RmwOp.COMPARE_AND_SWAP:
        if prev == cmp_val:
            memory.write_i64(addr, _to_signed(in_val))
    elif op is RmwOp.FETCH_AND_ADD:
        memory.write_i64(addr, _to_signed(prev + in_val))
    elif op is RmwOp.FETCH_AND_OR:
        memory.write_i64(addr, _to_signed(prev | in_val))
    else:  # pragma: no cover - enum exhausts
        raise LapiError(f"unknown RMW op {op!r}")
    return prev
