"""LAPI wire-format construction: packetization of messages.

Every LAPI packet carries a 48-byte header (section 4) because the
one-sided model requires the origin to ship all target-side parameters
(addresses, counter ids, handler ids) with the data; this module builds
those packets.  The header-size cost is real -- it is why LAPI's peak
bandwidth trails MPI's slightly in Figure 2 -- while the decoded fields
ride in ``Packet.info`` for inspectability.

A message larger than one packet is split into payload-sized chunks;
each chunk is fully self-describing (message id, offset, total length,
destination address/handler), which is what lets the dispatcher place
packets arriving in any order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from ..errors import LapiError
from ..machine.packet import Packet
from .constants import PacketKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.config import MachineConfig

__all__ = ["put_packets", "am_packets", "get_reply_packets",
           "control_packet", "PROTO"]

#: Adapter demultiplexing key for the LAPI stack.
PROTO = "lapi"


def _mk(src: int, dst: int, kind: str, header: int, payload: bytes,
        info: dict) -> "Packet":
    return Packet(src=src, dst=dst, proto=PROTO, kind=kind,
                  header_bytes=header, payload=payload, info=info)


def put_packets(config: "MachineConfig", src: int, dst: int, msg_id: int,
                data: bytes, tgt_addr: int,
                tgt_cntr_id: Optional[int],
                cmpl_cntr_id: Optional[int]) -> list["Packet"]:
    """Packets of one LAPI_Put message (>= 1 even for zero length)."""
    chunk = config.lapi_payload
    total = len(data)
    packets = []
    offset = 0
    while True:
        part = data[offset:offset + chunk]
        packets.append(_mk(src, dst, PacketKind.DATA, config.lapi_header,
                           bytes(part), {
                               "mtype": PacketKind.MSG_PUT,
                               "msg_id": msg_id,
                               "offset": offset,
                               "total": total,
                               "tgt_addr": tgt_addr,
                               "tgt_cntr_id": tgt_cntr_id,
                               "cmpl_cntr_id": cmpl_cntr_id,
                           }))
        offset += len(part)
        if offset >= total:
            break
    return packets


def am_packets(config: "MachineConfig", src: int, dst: int, msg_id: int,
               handler_id: int, uhdr: bytes, data: bytes,
               tgt_cntr_id: Optional[int],
               cmpl_cntr_id: Optional[int]) -> list["Packet"]:
    """Packets of one LAPI_Amsend message.

    The first packet carries the user header plus as much user data as
    fits beside it; later packets are plain payload chunks.  Mirrors the
    real format in which the uhdr shares the first packet, shrinking its
    data room -- the arithmetic GA's ~900-byte protocol rides on.
    """
    if len(uhdr) > config.lapi_uhdr_max:
        raise LapiError(
            f"uhdr of {len(uhdr)} bytes exceeds the"
            f" {config.lapi_uhdr_max}-byte limit (use LAPI_Qenv)")
    total = len(data)
    first_room = config.packet_size - config.lapi_header - len(uhdr)
    base_info = {
        "mtype": PacketKind.MSG_AM,
        "msg_id": msg_id,
        "total": total,
        "tgt_cntr_id": tgt_cntr_id,
        "cmpl_cntr_id": cmpl_cntr_id,
    }
    packets = []
    first_part = data[:first_room]
    # The uhdr occupies wire bytes in the first packet alongside the
    # 48-byte transport header.
    packets.append(_mk(src, dst, PacketKind.DATA,
                       config.lapi_header + len(uhdr), bytes(first_part),
                       dict(base_info, offset=0, is_first=True,
                            handler_id=handler_id, uhdr=bytes(uhdr))))
    offset = len(first_part)
    chunk = config.lapi_payload
    while offset < total:
        part = data[offset:offset + chunk]
        packets.append(_mk(src, dst, PacketKind.DATA, config.lapi_header,
                           bytes(part),
                           dict(base_info, offset=offset, is_first=False)))
        offset += len(part)
    return packets


def get_reply_packets(config: "MachineConfig", src: int, dst: int,
                      msg_id: int, data: bytes) -> list["Packet"]:
    """Packets streaming a LAPI_Get reply back to the origin."""
    chunk = config.lapi_payload
    total = len(data)
    packets = []
    offset = 0
    while True:
        part = data[offset:offset + chunk]
        packets.append(_mk(src, dst, PacketKind.DATA, config.lapi_header,
                           bytes(part), {
                               "mtype": PacketKind.MSG_GET_REP,
                               "msg_id": msg_id,
                               "offset": offset,
                               "total": total,
                           }))
        offset += len(part)
        if offset >= total:
            break
    return packets


def control_packet(config: "MachineConfig", src: int, dst: int, kind: str,
                   **info) -> "Packet":
    """A single control packet (GET_REQ, CMPL, RMW_*, BARRIER)."""
    if kind not in (PacketKind.GET_REQ, PacketKind.CMPL,
                    PacketKind.RMW_REQ, PacketKind.RMW_REP,
                    PacketKind.BARRIER):
        raise LapiError(f"not a control packet kind: {kind!r}")
    return _mk(src, dst, kind, config.lapi_header, b"", info)
