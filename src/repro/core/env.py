"""LAPI_Qenv / LAPI_Senv: environment query and control."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import LapiError
from .constants import QenvKey, SenvKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Lapi

__all__ = ["do_qenv", "do_senv"]


def do_qenv(lapi: "Lapi", key: QenvKey) -> int:
    """LAPI_Qenv: query an environment value (immediate, no comm)."""
    cfg = lapi.config
    ctx = lapi.ctx
    if key is QenvKey.TASK_ID:
        return ctx.rank
    if key is QenvKey.NUM_TASKS:
        return ctx.size
    if key is QenvKey.MAX_UHDR_SZ:
        return cfg.lapi_uhdr_max
    if key is QenvKey.MAX_AM_PAYLOAD:
        return cfg.am_uhdr_payload
    if key is QenvKey.MAX_PKT_PAYLOAD:
        return cfg.lapi_payload
    if key is QenvKey.INTERRUPT_SET:
        return 1 if lapi.interrupt_mode else 0
    if key is QenvKey.SEND_WINDOW:
        return cfg.lapi_window
    raise LapiError(f"unknown Qenv key {key!r}")


def do_senv(lapi: "Lapi", key: SenvKey, value: int) -> None:
    """LAPI_Senv: set an environment knob."""
    if key is SenvKey.INTERRUPT_SET:
        lapi.set_interrupt_mode(bool(value))
        return
    if key is SenvKey.ERROR_CHK:
        # Parameter checking is always on in the model; accept the knob
        # for interface compatibility.
        return
    raise LapiError(f"unknown Senv key {key!r}")
