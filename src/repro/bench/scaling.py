"""Supplemental scaling study (not a paper artifact).

The paper's systems ranged from 2 to 128 nodes and GA ran on a
512-node SP; its evaluation, however, is all 2- and 4-node
microbenchmarks.  This supplemental experiment characterizes how the
reproduced stack scales with node count:

* **Gfence latency** -- the dissemination barrier should grow with
  ``ceil(log2(N))`` rounds of roughly one one-way latency each;
* **aggregate all-to-all bandwidth** -- every task puts to every other
  task simultaneously; the multistage fabric should sustain aggregate
  throughput well above a single link's rate, growing with N until the
  middle stage saturates.

Labelled supplemental everywhere: the paper makes no quantitative
scaling claims, so the checks here validate the *model's* internal
consistency (log-growth, monotone aggregate bandwidth), not paper
numbers.

This study measures the *model* at small node counts; its sibling
:mod:`repro.bench.scale` (``--scale``) measures the *simulator* at
512-4096 nodes across the sp/fattree/dragonfly fabrics.
"""

from __future__ import annotations

import math

from ..machine.config import SP_1998, MachineConfig
from .parallel import Deferred, JobSpec, spread_seed, submit
from .report import ExperimentResult
from .runner import fresh_cluster, mean

__all__ = ["run_scaling", "submit_scaling", "scaling_jobs",
           "gfence_latency", "alltoall_aggregate", "SCALING_SEED"]

NODE_COUNTS = [2, 4, 8, 16]

#: Experiment base seed; each job derives its own cluster seed via the
#: SplitMix spread so shards stay RNG-independent however they are
#: scheduled (the 8- and 16-node runs exercise multipath routing and
#: so genuinely consume their streams).
SCALING_SEED = 0xBE1


def gfence_latency(nnodes: int, config: MachineConfig = SP_1998,
                   reps: int = 8, seed: int = 0xBE1) -> float:
    """Mean LAPI_Gfence completion time at ``nnodes`` tasks [us]."""
    records = {}

    def main(task):
        lapi = task.lapi
        yield from lapi.gfence()  # warm-up epoch
        times = []
        for _ in range(reps):
            t0 = task.now()
            yield from lapi.gfence()
            times.append(task.now() - t0)
        if task.rank == 0:
            records["mean"] = mean(times)

    fresh_cluster(nnodes, config, seed=seed).run_job(
        main, stacks=("lapi",))
    return records["mean"]


def alltoall_aggregate(nnodes: int, nbytes_per_pair: int = 65536,
                       config: MachineConfig = SP_1998,
                       seed: int = 0xBE1) -> float:
    """Aggregate all-to-all put bandwidth [MB/s] at ``nnodes`` tasks."""
    records = {}

    def main(task):
        lapi = task.lapi
        mem = task.memory
        size = task.size
        window = mem.malloc(nbytes_per_pair * size)
        src = mem.malloc(nbytes_per_pair)
        yield from lapi.gfence()
        t0 = task.now()
        for peer in range(size):
            if peer != task.rank:
                yield from lapi.put(
                    peer, nbytes_per_pair,
                    window + task.rank * nbytes_per_pair, src)
        yield from lapi.fence()
        yield from lapi.gfence()
        if task.rank == 0:
            records["elapsed"] = task.now() - t0

    fresh_cluster(nnodes, config, seed=seed).run_job(
        main, stacks=("lapi",))
    total_bytes = nnodes * (nnodes - 1) * nbytes_per_pair
    return total_bytes / records["elapsed"]


def scaling_jobs(config: MachineConfig = SP_1998) -> list[JobSpec]:
    """Per-node-count barrier and all-to-all measurements as specs,
    each shard seeded independently via the SplitMix spread."""
    specs = []
    for i, n in enumerate(NODE_COUNTS):
        specs.append(JobSpec(
            gfence_latency, (n, config),
            {"seed": spread_seed(SCALING_SEED, 2 * i)},
            key=("scaling", "gfence", n)))
        specs.append(JobSpec(
            alltoall_aggregate, (n,),
            {"config": config,
             "seed": spread_seed(SCALING_SEED, 2 * i + 1)},
            key=("scaling", "alltoall", n)))
    return specs


def submit_scaling(config: MachineConfig = SP_1998) -> Deferred:
    """Queue the scaling sweep; ``finish()`` builds the table."""
    return Deferred(submit(scaling_jobs(config)),
                    lambda values: _scaling(values, config))


def run_scaling(config: MachineConfig = SP_1998) -> ExperimentResult:
    """Regenerate the supplemental scaling table."""
    return submit_scaling(config).finish()


def _scaling(values: list, config: MachineConfig) -> ExperimentResult:
    rows = []
    barrier = {}
    aggregate = {}
    for i, n in enumerate(NODE_COUNTS):
        barrier[n] = values[2 * i]
        aggregate[n] = values[2 * i + 1]
        rounds = math.ceil(math.log2(n))
        rows.append([n, rounds, barrier[n], aggregate[n]])
    result = ExperimentResult(
        experiment="scaling",
        title="SUPPLEMENTAL: scaling with node count",
        headers=["nodes", "barrier rounds", "gfence [us]",
                 "all-to-all aggregate [MB/s]"],
        rows=rows)
    result.notes.append(
        "supplemental model-consistency study; the paper reports no"
        " multi-node scaling numbers")
    result.check(
        "gfence grows sub-linearly (log-round dissemination)",
        barrier[16] < 4.5 * barrier[2],
        f"{barrier[2]:.1f} -> {barrier[16]:.1f}us over 8x nodes")
    result.check(
        "gfence increases with rounds",
        barrier[2] < barrier[4] <= barrier[8] * 1.05 <= barrier[16] * 1.1)
    result.check(
        "aggregate all-to-all bandwidth exceeds one link's rate at"
        " 8+ nodes",
        aggregate[8] > config.link_bandwidth
        and aggregate[16] > config.link_bandwidth,
        f"8 nodes: {aggregate[8]:.0f}, 16 nodes: {aggregate[16]:.0f}")
    result.check(
        "aggregate bandwidth grows while the fabric has headroom"
        " (2 -> 8 nodes)",
        aggregate[2] < aggregate[4] < aggregate[8])
    if aggregate[16] < aggregate[8]:
        result.notes.append(
            "16-node all-to-all shows incast collapse: every adapter's"
            " RX FIFO absorbs 15 simultaneous senders, drops force"
            " retransmission timeouts -- the congestion behaviour real"
            " switched fabrics exhibit under unthrottled incast")
    return result
