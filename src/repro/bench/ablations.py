"""Ablations: sweeping the design choices the paper calls out.

Each ablation isolates one constant the paper discusses and shows the
performance consequence the design argument predicts:

* **header size** -- section 4 blames LAPI's 48-byte one-sided header
  for its peak-bandwidth deficit and lists reducing it as future work;
* **eager limit** -- the MP_EAGER_LIMIT environment experiment of
  Figure 2, swept across the full range;
* **AM chunk size** -- GA's choice to pipeline medium messages in
  ~900-byte single-packet chunks (section 5.3.1);
* **hybrid threshold** -- GA's empirically-selected switch from AM
  pipelining to per-column RMC (section 5.3);
* **interrupt cost** -- how the polling/interrupt latency gap of
  Table 2 scales with the hardware's interrupt overhead.

Every ablation comes in ``submit_*``/``run_*`` form: submission queues
the sweep on the shared scheduler (so ablations pipeline with every
other pending experiment) and ``finish()`` assembles the table.
"""

from __future__ import annotations

from ..ga.config import GA_DEFAULTS
from ..machine.config import SP_1998, MachineConfig
from .bandwidth import lapi_bandwidth_point, mpl_bandwidth_point
from .ga_putget import ga_transfer_rate
from .latency import lapi_pingpong_job
from .parallel import Deferred, JobSpec, submit
from .report import ExperimentResult

__all__ = ["run_ablation_header", "run_ablation_eager",
           "run_ablation_chunk", "run_ablation_hybrid",
           "run_ablation_interrupt", "run_ablation_noncontig",
           "submit_ablation_header", "submit_ablation_eager",
           "submit_ablation_chunk", "submit_ablation_hybrid",
           "submit_ablation_interrupt", "submit_ablation_noncontig"]


def submit_ablation_noncontig(config: MachineConfig = SP_1998
                              ) -> Deferred:
    """Future work #1: the vector RMC interface vs the 1998 protocols.

    Compares strided (2-D) GA transfers under three protocol choices:
    the default hybrid (AM chunks / AM+bulk-reply), the paper's exact
    per-column RMC switch, and the proposed non-contiguous
    LAPI_Putv/Getv extension -- quantifying what section 6 predicted:
    "removing the overhead associated with multiple requests or the
    copy overhead in the AM-based implementations".
    """
    sizes = [32768, 524288, 2097152]
    variants = {
        "hybrid (default)": GA_DEFAULTS,
        "per-column RMC": GA_DEFAULTS.replace(
            get_strided_rmc_threshold=512 * 1024),
        "vector putv/getv": GA_DEFAULTS.replace(use_vector_rmc=True),
    }
    combos = [(name, n) for name in variants for n in sizes]
    future = submit([JobSpec(ga_transfer_rate,
                             ("lapi", op, "2d", n, config,
                              variants[name]),
                             key=("ablation_noncontig", name, op, n))
                     for name, n in combos for op in ("put", "get")])
    return Deferred(future,
                    lambda values: _noncontig(values, combos, sizes))


def run_ablation_noncontig(config: MachineConfig = SP_1998
                           ) -> ExperimentResult:
    return submit_ablation_noncontig(config).finish()


def _noncontig(values: list, combos: list,
               sizes: list) -> ExperimentResult:
    rows = []
    rates: dict[tuple[str, str, int], float] = {}
    for i, (name, n) in enumerate(combos):
        put, get = values[2 * i], values[2 * i + 1]
        rates[(name, "put", n)] = put
        rates[(name, "get", n)] = get
        rows.append([name, n, put, get])
    result = ExperimentResult(
        experiment="ablation_noncontig",
        title="Strided 2-D GA transfers: hybrid vs per-column vs"
              " vector RMC [MB/s]",
        headers=["protocol", "bytes", "put", "get"],
        rows=rows)
    big = sizes[-1]
    result.check(
        "the vector interface beats per-column RMC (the overhead it"
        " was proposed to remove)",
        rates[("vector putv/getv", "get", big)]
        > rates[("per-column RMC", "get", big)],
        f"getv {rates[('vector putv/getv', 'get', big)]:.1f} vs"
        f" {rates[('per-column RMC', 'get', big)]:.1f}")
    result.check(
        "the vector interface is at least as good as the hybrid"
        " protocols at every probed size",
        all(rates[("vector putv/getv", op, n)]
            >= 0.95 * rates[("hybrid (default)", op, n)]
            for op in ("put", "get") for n in sizes))
    return result


def submit_ablation_header(config: MachineConfig = SP_1998
                           ) -> Deferred:
    """Sweep the LAPI packet header size (future-work item #1)."""
    headers = [16, 32, 48, 96]
    probe_small, probe_large = 4096, 2 * 1024 * 1024
    configs = {hdr: config.replace(lapi_header=hdr)
               for hdr in headers}
    future = submit([JobSpec(lapi_bandwidth_point,
                             (probe, configs[hdr]),
                             key=("ablation_header", hdr, probe))
                     for hdr in headers
                     for probe in (probe_small, probe_large)])
    return Deferred(future,
                    lambda values: _header(values, headers, configs))


def run_ablation_header(config: MachineConfig = SP_1998
                        ) -> ExperimentResult:
    return submit_ablation_header(config).finish()


def _header(values: list, headers: list,
            configs: dict) -> ExperimentResult:
    rows = []
    peaks = {}
    for i, hdr in enumerate(headers):
        small, large = values[2 * i], values[2 * i + 1]
        peaks[hdr] = large
        rows.append([hdr, configs[hdr].lapi_payload, small, large])
    result = ExperimentResult(
        experiment="ablation_header",
        title="LAPI header size vs bandwidth [MB/s]",
        headers=["header B", "payload B", "4KB msg", "2MB msg"],
        rows=rows)
    result.notes.append(
        "section 4: the 48B one-sided header costs LAPI its peak"
        " deficit vs MPI's 16B header; shrinking it is future work")
    result.check("smaller headers raise the asymptote",
                 peaks[16] > peaks[48] > peaks[96],
                 f"16B:{peaks[16]:.1f} 48B:{peaks[48]:.1f}"
                 f" 96B:{peaks[96]:.1f}")
    gain = (peaks[16] - peaks[48]) / peaks[48]
    result.check("16B header recovers roughly the payload ratio"
                 " (~3%)", 0.005 <= gain <= 0.08, f"{gain * 100:.1f}%")
    return result


def submit_ablation_eager(config: MachineConfig = SP_1998) -> Deferred:
    """Sweep MP_EAGER_LIMIT at a rendezvous-sensitive message size."""
    probe = 8192  # the size where Figure 2's kink is clearest
    limits = [1024, 4096, 8192, 65536]
    future = submit([JobSpec(mpl_bandwidth_point,
                             (probe, limit, config),
                             key=("ablation_eager", limit))
                     for limit in limits])
    return Deferred(future,
                    lambda values: _eager(values, limits, probe))


def run_ablation_eager(config: MachineConfig = SP_1998
                       ) -> ExperimentResult:
    return submit_ablation_eager(config).finish()


def _eager(values: list, limits: list, probe: int) -> ExperimentResult:
    rows = []
    bws = {}
    for limit, bw in zip(limits, values):
        bws[limit] = bw
        protocol = "eager" if probe <= limit else "rendezvous"
        rows.append([limit, protocol, bw])
    result = ExperimentResult(
        experiment="ablation_eager",
        title=f"MP_EAGER_LIMIT sweep at {probe}B messages [MB/s]",
        headers=["MP_EAGER_LIMIT", "protocol", "bandwidth"],
        rows=rows)
    result.check("crossing into eager removes the rendezvous"
                 " round trip",
                 bws[8192] > bws[4096] and bws[65536] > bws[1024],
                 f"8K-limit:{bws[8192]:.1f} vs 4K:{bws[4096]:.1f}")
    result.notes.append(
        "above ~16KB the eager copy costs what the handshake saves;"
        " the advantage is a small-to-medium message effect")
    return result


def submit_ablation_chunk(config: MachineConfig = SP_1998) -> Deferred:
    """Sweep GA's AM chunk payload for a medium strided put."""
    probe = 32768  # 64x64 doubles, strided
    caps = [128, 256, 512, None]
    future = submit([JobSpec(ga_transfer_rate,
                             ("lapi", "put", "2d", probe, config,
                              GA_DEFAULTS.replace(am_chunk_cap=cap)),
                             key=("ablation_chunk", cap))
                     for cap in caps])
    return Deferred(future, lambda rates: _chunk(rates, caps, probe))


def run_ablation_chunk(config: MachineConfig = SP_1998
                       ) -> ExperimentResult:
    return submit_ablation_chunk(config).finish()


def _chunk(rates: list, caps: list, probe: int) -> ExperimentResult:
    rows = []
    for cap, rate in zip(caps, rates):
        label = cap if cap is not None else "~900 (1 packet)"
        rows.append([label, rate])
    result = ExperimentResult(
        experiment="ablation_chunk",
        title=f"GA AM chunk payload sweep, {probe}B strided put"
              " [MB/s]",
        headers=["chunk bytes", "bandwidth"],
        rows=rows)
    result.notes.append(
        "section 5.3.1: GA fills each single-packet AM with ~900"
        " bytes; smaller chunks waste packets on per-message overhead")
    result.check("the full-packet chunk (paper's choice) is best",
                 rates[-1] == max(rates),
                 f"{[f'{r:.1f}' for r in rates]}")
    result.check("chunk size matters a lot (>2x from 128B to full)",
                 rates[-1] > 2 * rates[0])
    return result


def submit_ablation_hybrid(config: MachineConfig = SP_1998
                           ) -> Deferred:
    """Sweep the strided AM->RMC switch threshold (section 5.3)."""
    probe = 524288  # the paper's 0.5MB switch point
    thresholds = [65536, 262144, 524288, 4 * 1024 * 1024]
    future = submit([JobSpec(
        ga_transfer_rate,
        ("lapi", "put", "2d", probe, config,
         GA_DEFAULTS.replace(strided_rmc_threshold=thr)),
        key=("ablation_hybrid", thr)) for thr in thresholds])
    return Deferred(future,
                    lambda values: _hybrid(values, thresholds, probe))


def run_ablation_hybrid(config: MachineConfig = SP_1998
                        ) -> ExperimentResult:
    return submit_ablation_hybrid(config).finish()


def _hybrid(values: list, thresholds: list,
            probe: int) -> ExperimentResult:
    rows = []
    rates = {}
    for thr, rate in zip(thresholds, values):
        protocol = "per-column RMC" if probe >= thr else "AM chunks"
        rates[thr] = rate
        rows.append([thr, protocol, rate])
    result = ExperimentResult(
        experiment="ablation_hybrid",
        title=f"GA hybrid-protocol threshold sweep, {probe}B 2-D put"
              " [MB/s]",
        headers=["threshold B", "protocol used", "bandwidth"],
        rows=rows)
    result.check(
        "per-column RMC beats AM chunking for 0.5MB strided requests"
        " (so the paper's switch point is on the right side)",
        rates[65536] > rates[4 * 1024 * 1024],
        f"RMC {rates[65536]:.1f} vs AM {rates[4 * 1024 * 1024]:.1f}")
    return result


def submit_ablation_interrupt(config: MachineConfig = SP_1998
                              ) -> Deferred:
    """Sweep the hardware interrupt cost; watch Table 2's gap move."""
    costs = [2.0, 8.0, 14.0, 30.0, 60.0]
    future = submit([JobSpec(lapi_pingpong_job,
                             (config.replace(interrupt_latency=cost),),
                             {"interrupt_mode": interrupt_mode},
                             key=("ablation_interrupt", cost,
                                  interrupt_mode))
                     for cost in costs
                     for interrupt_mode in (False, True)])
    return Deferred(future, lambda values: _interrupt(values, costs))


def run_ablation_interrupt(config: MachineConfig = SP_1998
                           ) -> ExperimentResult:
    return submit_ablation_interrupt(config).finish()


def _interrupt(values: list, costs: list) -> ExperimentResult:
    rows = []
    gaps = []
    for i, cost in enumerate(costs):
        (_, rt_poll), (_, rt_int) = values[2 * i], values[2 * i + 1]
        gaps.append(rt_int - rt_poll)
        rows.append([cost, rt_poll, rt_int, rt_int - rt_poll])
    result = ExperimentResult(
        experiment="ablation_interrupt",
        title="Interrupt-cost sweep: LAPI round trip [us]",
        headers=["interrupt cost", "polling RT", "interrupt RT",
                 "gap"],
        rows=rows)
    result.notes.append(
        "the polling/interrupt gap of Table 2 is mechanical: ~2"
        " interrupts per round trip")
    result.check("the gap grows monotonically with interrupt cost",
                 all(a <= b + 1.0 for a, b in zip(gaps, gaps[1:])),
                 f"gaps {[f'{g:.1f}' for g in gaps]}")
    result.check("gap is roughly 2x the per-interrupt cost at the"
                 " calibrated point",
                 1.0 * 14 <= gaps[2] <= 3.0 * 14,
                 f"{gaps[2]:.1f} vs 2x14")
    return result
