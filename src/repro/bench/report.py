"""Result containers and text rendering for the benchmark harness.

Every experiment returns an :class:`ExperimentResult`: the regenerated
rows/series, the paper's reference values where they exist, and a list
of :class:`ShapeCheck` verdicts -- the qualitative claims the
reproduction is accountable for.  ``render()`` produces the plain-text
tables the benchmark scripts print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["ShapeCheck", "ExperimentResult", "format_table",
           "format_series"]


@dataclass
class ShapeCheck:
    """One qualitative pass/fail claim from the paper."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.name}{tail}"


@dataclass
class ExperimentResult:
    """Output of one table/figure regeneration."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Rendered per-subsystem metrics blocks (one per cluster the
    #: experiment ran), attached by the CLI under ``--metrics``.
    metrics_blocks: list[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(name, bool(passed), detail))

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.title} ==",
               format_table(self.headers, self.rows)]
        for note in self.notes:
            out.append(f"note: {note}")
        for check in self.checks:
            out.append(str(check))
        for block in self.metrics_blocks:
            out.append(block)
        return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in cells:
        lines.append("  ".join(c.rjust(w)
                               for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any],
                  ys: Sequence[float]) -> str:
    """One-line summary of a sweep series (for logs)."""
    pairs = ", ".join(f"{x}:{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
