"""Large-cluster scale bench: 512-4096 nodes on three fabrics.

The paper's SP systems topped out at a few hundred nodes (GA ran on a
512-node SP).  This bench pushes the *same* protocol stacks -- LAPI on
the unmodified machine model -- to 512-4096 simulated nodes on the SP
multistage switch and on the two larger fabrics a successor machine
might have used (:class:`~repro.machine.routing.FatTreeTopology`,
:class:`~repro.machine.routing.DragonflyTopology`), and measures the
*simulator*: wall time, kernel events, events/second, and resident
memory.

The workload is a neighbour ring -- every rank puts 4 KB to its right
neighbour, fenced and surrounded by global fences -- so total traffic
grows linearly with nodes while the gfence dissemination tree
exercises ``N log N`` small-message traffic.  What keeps memory flat
per node at these sizes (and what this bench exists to guard):

* the bounded per-pair route cache (``route_cache_entries``), capping
  what all-to-all-ish traffic can pin at O(bound) instead of
  O(nodes^2);
* streamed top-k link statistics (``Switch.busiest_links`` /
  ``metrics_top_links``) instead of full-fabric utilization dicts.

Runs shard across ``--jobs`` workers like every other sweep; virtual
times are byte-identical serial or parallel (the CI scale-smoke job
diffs them).
"""

from __future__ import annotations

import gc
import os
import sys
import time

from ..machine.config import SP_1998, MachineConfig
from .parallel import Deferred, JobSpec, spread_seed, submit
from .report import ExperimentResult
from .runner import fresh_cluster

__all__ = ["run_scale", "submit_scale", "scale_jobs", "scale_point",
           "scale_config", "SCALE_SIZES", "SCALE_QUICK_SIZES",
           "SCALE_TOPOLOGIES", "SCALE_SEED"]

#: Node counts of the full sweep and the ``--perf-quick`` (CI) sweep.
SCALE_SIZES = [512, 1024, 2048, 4096]
SCALE_QUICK_SIZES = [512]

#: Fabrics swept at every size; "sp" is the paper machine.
SCALE_TOPOLOGIES = ("sp", "fattree", "dragonfly")

#: Bytes each rank puts to its ring neighbour.
SCALE_PUT_BYTES = 4096

#: Experiment base seed (each job derives its own via the SplitMix
#: spread, so shards stay RNG-independent however scheduled).
SCALE_SEED = 0x5CA1E

#: Route-cache bound as a multiple of the node count: a ring plus a
#: dissemination barrier touches O(N log N) distinct pairs, so a small
#: multiple keeps the hit rate high while capping memory.
_CACHE_ENTRIES_PER_NODE = 8

#: ``Switch.metrics_top_links`` during scale runs: a --metrics block
#: at 4096 nodes must not carry ~20k per-link gauges.
_METRICS_TOP_LINKS = 8


def scale_config(topology: str, nnodes: int) -> MachineConfig:
    """The paper calibration on ``topology`` with scale-safe bounds."""
    return SP_1998.replace(
        topology=topology,
        route_cache_entries=_CACHE_ENTRIES_PER_NODE * nnodes)


def _ring_task(task):
    """Ring neighbour put between global fences (one SPMD rank)."""
    lapi = task.lapi
    mem = task.memory
    window = mem.malloc(SCALE_PUT_BYTES)
    src = mem.malloc(SCALE_PUT_BYTES)
    yield from lapi.gfence()
    right = (task.rank + 1) % task.size
    yield from lapi.put(right, SCALE_PUT_BYTES, window, src)
    yield from lapi.fence()
    yield from lapi.gfence()
    return None


def _current_rss_mb() -> float:
    """Resident set size of this process right now, in MB.

    Reads ``/proc/self/statm`` (current, not peak -- ``ru_maxrss`` is a
    high watermark and cannot show memory being returned between
    runs); falls back to the watermark where /proc is unavailable.
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE") / 1e6
    except (OSError, ValueError, IndexError):
        import resource
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KB on Linux but bytes on macOS (getrusage(2)).
        return rss / (1e6 if sys.platform == "darwin" else 1e3)


def scale_point(nnodes: int, topology: str, seed: int) -> dict:
    """Run the ring workload once; returns the measurement record.

    Everything virtual-time in the record is deterministic (a function
    of ``(nnodes, topology, seed)`` only); wall seconds and RSS are
    host facts and vary.
    """
    gc.collect()
    cluster = fresh_cluster(nnodes, scale_config(topology, nnodes),
                            seed=seed)
    cluster.switch.metrics_top_links = _METRICS_TOP_LINKS
    start = time.perf_counter()
    cluster.run_job(_ring_task, stacks=("lapi",))
    wall = time.perf_counter() - start
    sw = cluster.switch
    sent = sum(n.adapter.packets_sent for n in cluster.nodes)
    received = sum(n.adapter.packets_received for n in cluster.nodes)
    dropped = sum(n.adapter.rx_dropped for n in cluster.nodes)
    record = {
        "nodes": nnodes,
        "topology": topology,
        "virtual_us": round(cluster.sim.now, 6),
        "events": cluster.sim.events_processed,
        "packets_routed": sw.packets_routed,
        "packets_sent": sent,
        "packets_received": received,
        "rx_dropped": dropped,
        "route_cache_len": len(sw._route_cache),
        "route_cache_limit": cluster.config.route_cache_entries,
        "wall_s": round(wall, 3),
        "events_per_sec": round(cluster.sim.events_processed / wall)
        if wall > 0 else 0,
        "rss_mb": round(_current_rss_mb(), 1),
    }
    del cluster
    gc.collect()
    return record


def scale_jobs(sizes=None) -> list[JobSpec]:
    """One spec per (topology, node count), independently seeded."""
    sizes = list(sizes) if sizes is not None else list(SCALE_SIZES)
    specs = []
    index = 0
    for topology in SCALE_TOPOLOGIES:
        for n in sizes:
            specs.append(JobSpec(
                scale_point, (n, topology),
                {"seed": spread_seed(SCALE_SEED, index)},
                key=("scale", topology, n)))
            index += 1
    return specs


def submit_scale(quick: bool = False, sizes=None) -> Deferred:
    """Queue the scale sweep; ``finish()`` builds the result."""
    if sizes is None:
        sizes = SCALE_QUICK_SIZES if quick else SCALE_SIZES
    sizes = list(sizes)
    future = submit(scale_jobs(sizes))
    return Deferred(future, lambda records: _scale(records, sizes))


def run_scale(quick: bool = False, sizes=None) -> ExperimentResult:
    """Run the scale sweep and check its invariants."""
    return submit_scale(quick, sizes).finish()


def _scale(records: list, sizes: list) -> ExperimentResult:
    rows = []
    for r in records:
        rows.append([r["topology"], r["nodes"], r["virtual_us"],
                     r["events"], r["events_per_sec"],
                     r["packets_routed"], r["route_cache_len"],
                     r["wall_s"], r["rss_mb"]])
    result = ExperimentResult(
        experiment="scale",
        title=f"SUPPLEMENTAL: {min(sizes)}-{max(sizes)} node scale"
              " sweep (ring + gfence)",
        headers=["topology", "nodes", "virtual us", "events",
                 "events/s", "routed", "route cache", "wall s",
                 "rss MB"],
        rows=rows)
    result.notes.append(
        "supplemental simulator study; the paper machine stops at"
        " a few hundred nodes")

    by_topo: dict[str, list[dict]] = {}
    for r in records:
        by_topo.setdefault(r["topology"], []).append(r)

    result.check(
        "every run completed with no receive-FIFO drops",
        all(r["rx_dropped"] == 0 for r in records),
        f"{len(records)} runs")
    # The drive loop stops the instant the last task finishes, so a
    # handful of trailing ACK deliveries may still be in flight --
    # bounded by the node count, never more.
    result.check(
        "packet conservation: sent == routed, received trails by at"
        " most the in-flight window",
        all(r["packets_sent"] == r["packets_routed"]
            and 0 <= r["packets_routed"] - r["packets_received"]
            <= r["nodes"]
            for r in records))
    result.check(
        "route cache stays within its bound at every size",
        all(r["route_cache_len"] <= r["route_cache_limit"]
            for r in records),
        ", ".join(f"{r['topology']}/{r['nodes']}:"
                  f" {r['route_cache_len']}/{r['route_cache_limit']}"
                  for r in records[:3]))
    for topology, recs in by_topo.items():
        recs = sorted(recs, key=lambda r: r["nodes"])
        if len(recs) > 1:
            lo, hi = recs[0], recs[-1]
            ratio = hi["nodes"] / lo["nodes"]
            result.check(
                f"{topology}: events grow sub-quadratically"
                f" ({lo['nodes']} -> {hi['nodes']} nodes)",
                hi["events"] <= lo["events"] * ratio ** 1.5,
                f"{lo['events']:,} -> {hi['events']:,}"
                f" (x{hi['events'] / lo['events']:.1f} for"
                f" x{ratio:.0f} nodes)")
            result.check(
                f"{topology}: gfence depth grows virtual time with"
                " node count",
                all(a["virtual_us"] < b["virtual_us"] for a, b in
                    zip(recs, recs[1:])))
    # Raw records for --scale-out / CI divergence diffing.
    result.payload = {
        f"{r['topology']}/{r['nodes']}": r for r in records}
    return result
