"""Table 1: the LAPI function set, verified against the implementation.

Not a performance experiment -- Table 1 is the API inventory.  The
harness maps every paper function to its implementation entry point and
verifies it exists and is callable, producing the same table the paper
prints.
"""

from __future__ import annotations

from ..core.api import Lapi
from .paper import TABLE1_FUNCTIONS
from .report import ExperimentResult

__all__ = ["run_table1", "FUNCTION_MAP"]

#: Paper function -> implementation attribute on :class:`Lapi`.
FUNCTION_MAP = {
    "LAPI_Init": "init",
    "LAPI_Term": "term",
    "LAPI_Amsend": "amsend",
    "LAPI_Put": "put",
    "LAPI_Get": "get",
    "LAPI_Rmw": "rmw",
    "LAPI_Setcntr": "setcntr",
    "LAPI_Waitcntr": "waitcntr",
    "LAPI_Getcntr": "getcntr",
    "LAPI_Fence": "fence",
    "LAPI_Gfence": "gfence",
    "LAPI_Address_init": "address_init",
    "LAPI_Qenv": "qenv",
    "LAPI_Senv": "senv",
}


def run_table1() -> ExperimentResult:
    """Regenerate Table 1 and verify API completeness."""
    rows = []
    missing = []
    for group, functions in TABLE1_FUNCTIONS.items():
        impls = []
        for fn in functions:
            attr = FUNCTION_MAP.get(fn)
            ok = attr is not None and callable(getattr(Lapi, attr, None))
            impls.append(f"{fn} -> Lapi.{attr}" if ok else f"{fn} MISSING")
            if not ok:
                missing.append(fn)
        rows.append([group, ", ".join(functions),
                     "yes" if not any("MISSING" in i for i in impls)
                     else "NO"])
    result = ExperimentResult(
        experiment="table1",
        title="LAPI functionality (paper Table 1) vs implementation",
        headers=["Operations", "Functions", "implemented"],
        rows=rows)
    result.check("every Table 1 function is implemented",
                 not missing,
                 f"missing: {missing}" if missing else "all present")
    return result
