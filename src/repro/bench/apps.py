"""Section 5.4's application results: GA-LAPI vs GA-MPL speedups.

"The performance improvement over MPL-versions vary from 10 to 50%
depending on the problem size, ratio of communication and calculations,
and physical properties of the problems.  The most performance
improvement can be obtained in codes that mostly rely on 1-D array
communication."

Each kernel runs identically on both GA backends; the table reports
per-kernel elapsed virtual time and improvement percentage.  The
kernels span the communication/computation spectrum: transpose is pure
communication, SCF mixes dynamic load balancing with strided gets and
accumulates, MD leans on 1-D column fetches, matmul adds heavy local
compute.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..apps import (ga_matmul, ga_transpose, jacobi_sweeps,
                    md_step_loop, scf_iteration)
from ..machine.config import SP_1998, MachineConfig
from .paper import APPS
from .parallel import Deferred, JobSpec, submit
from .report import ExperimentResult
from .runner import fresh_cluster

__all__ = ["run_apps", "submit_apps", "app_elapsed", "apps_jobs"]


def _scf_driver(task):
    out = yield from scf_iteration(task, nbf=48, patch=12,
                                   work_per_patch=6.0, iterations=1)
    return out["elapsed_us"]


def _md_driver(task):
    out = yield from md_step_loop(task, natoms=512, steps=2)
    return out["elapsed_us"]


def _transpose_driver(task):
    ga = task.ga
    n = 192
    a_h = yield from ga.create((n, n), name="A")
    b_h = yield from ga.create((n, n), name="B")
    yield from ga.zero(a_h)
    yield from ga.sync()
    elapsed = yield from ga_transpose(task, a_h, b_h)
    return elapsed


def _matmul_driver(task):
    ga = task.ga
    n = 96
    a_h = yield from ga.create((n, n), name="A")
    b_h = yield from ga.create((n, n), name="B")
    c_h = yield from ga.create((n, n), name="C")
    yield from ga.zero(a_h)
    yield from ga.zero(b_h)
    yield from ga.sync()
    elapsed = yield from ga_matmul(task, a_h, b_h, c_h, kblock=24)
    return elapsed


def _jacobi_driver(task):
    out = yield from jacobi_sweeps(task, n=96, sweeps=2)
    return out["elapsed_us"]


KERNELS: dict[str, Callable] = {
    "transpose (pure comm)": _transpose_driver,
    "SCF Fock build": _scf_driver,
    "molecular dynamics": _md_driver,
    "Jacobi relaxation": _jacobi_driver,
    "matrix multiply": _matmul_driver,
}


def app_elapsed(driver: Callable, backend: str,
                config: MachineConfig = SP_1998, nnodes: int = 4,
                seed: int = 0xA5) -> float:
    """Job completion time (max over ranks) for one kernel/backend."""
    results = fresh_cluster(nnodes, config, seed=seed).run_job(
        driver, ga_backend=backend)
    return max(float(r) for r in results)


def apps_jobs(config: MachineConfig = SP_1998) -> list[JobSpec]:
    """Every kernel/backend combination as an independent job spec
    (each runs its own 4-node cluster), in serial loop order."""
    return [JobSpec(app_elapsed, (driver, backend, config),
                    key=("apps", name, backend))
            for name, driver in KERNELS.items()
            for backend in ("lapi", "mpl")]


def submit_apps(config: MachineConfig = SP_1998) -> Deferred:
    """Queue every kernel/backend job; ``finish()`` builds the table."""
    return Deferred(submit(apps_jobs(config)), _apps)


def run_apps(config: MachineConfig = SP_1998) -> ExperimentResult:
    """Regenerate the application-improvement comparison."""
    return submit_apps(config).finish()


def _apps(elapsed: list) -> ExperimentResult:
    rows = []
    improvements = []
    for i, name in enumerate(KERNELS):
        lapi_us, mpl_us = elapsed[2 * i], elapsed[2 * i + 1]
        improvement = 100.0 * (mpl_us - lapi_us) / mpl_us
        improvements.append((name, improvement))
        rows.append([name, lapi_us, mpl_us, improvement])

    result = ExperimentResult(
        experiment="apps",
        title="GA application kernels: LAPI vs MPL backend [us]",
        headers=["Kernel", "GA-LAPI", "GA-MPL", "improvement %"],
        rows=rows)
    lo = APPS["min_improvement_pct"]
    hi = APPS["max_improvement_pct"]
    result.notes.append(
        f"paper: improvements of {lo:.0f}-{hi:.0f}% depending on the"
        " communication/computation ratio")
    result.check("every kernel improves under LAPI",
                 all(imp > 0 for _, imp in improvements),
                 ", ".join(f"{n}: {i:.1f}%" for n, i in improvements))
    in_band = [i for _, i in improvements if lo * 0.5 <= i <= hi * 1.5]
    result.check("improvements fall in/near the paper's 10-50% band",
                 len(in_band) >= len(improvements) - 1,
                 f"{len(in_band)}/{len(improvements)} within"
                 f" [{lo * 0.5:.0f}%, {hi * 1.5:.0f}%]")
    result.notes.append(
        "latency-bound kernels (tiny gets + read_inc) exceed the"
        " paper's band: their call mix is precisely where the rcvncall"
        " baseline is weakest")
    comm_heavy = improvements[0][1]  # transpose
    compute_heavy = improvements[-1][1]  # matmul
    result.check(
        "communication-heavy kernels improve most (section 5.4)",
        comm_heavy > compute_heavy,
        f"transpose {comm_heavy:.1f}% vs matmul {compute_heavy:.1f}%")
    return result
