"""Figures 3 & 4 and the GA single-element latency numbers.

Section 5.4's synthetic benchmark, reproduced: four nodes; node 0 times
a series of GA put (Figure 3) or get (Figure 4) operations whose
sections live on the other nodes, visited round-robin, touching a
different patch each time.  Both "1-D" (contiguous single-column) and
square "2-D" (strided) sections are measured, for the LAPI and the MPL
backends.

Transfer-size sweep: 8 bytes to 2 MB.  The 2-D array is 1536 x 1536
doubles (18 MB -- the size at which the paper says the asymptote is
reached), giving 768 x 768 blocks so even the 512 x 512 (2 MB) patch
stays strided; the 1-D array is tall and narrow so single-column
requests of up to 2 MB are contiguous at their owner.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ga.config import GA_DEFAULTS, GaConfig
from ..machine.config import SP_1998, MachineConfig
from .paper import GA_LATENCY
from .parallel import Deferred, JobSpec, submit
from .report import ExperimentResult
from .runner import bandwidth_mbs, fresh_cluster, mean

__all__ = ["run_fig3", "run_fig4", "run_ga_latency", "submit_fig3",
           "submit_fig4", "submit_ga_latency", "ga_transfer_rate",
           "figure_jobs", "GA_SIZE_SWEEP"]

#: Backend/kind series of Figures 3-4, in serial construction order.
_SERIES = [("lapi", "1d"), ("lapi", "2d"), ("mpl", "1d"),
           ("mpl", "2d")]

#: Transfer sizes for Figures 3/4 (8 B to 2 MB).
GA_SIZE_SWEEP = [8, 64, 512, 2048, 8192, 32768, 131072, 524288,
                 2097152]

_2D_DIMS = (1536, 1536)
_1D_DIMS = (1 << 20, 4)


def _reps(nbytes: int) -> int:
    return max(2, min(12, (1 << 20) // max(nbytes, 1)))


def ga_transfer_rate(backend: str, op: str, kind: str, nbytes: int,
                     config: MachineConfig = SP_1998,
                     gcfg: GaConfig = GA_DEFAULTS,
                     seed: int = 0xF1) -> float:
    """Measured GA transfer rate (MB/s) for one point of Fig 3/4.

    Parameters: ``backend`` in {"lapi", "mpl"}; ``op`` in {"put",
    "get"}; ``kind`` in {"1d", "2d"}.
    """
    elems = max(1, nbytes // 8)
    if kind == "2d":
        side = max(1, math.isqrt(elems))
        elems = side * side
    nbytes = elems * 8
    reps = _reps(nbytes)
    records = {}

    def main(task):
        ga = task.ga
        if kind == "2d":
            h = yield from ga.create(_2D_DIMS, name="bench2d")
        else:
            h = yield from ga.create(_1D_DIMS, name="bench1d")
        yield from ga.sync()
        if task.rank == 0:
            if kind == "2d":
                sec0 = (0, side - 1, 0, side - 1)
            else:
                sec0 = (0, elems - 1, 0, 0)
            buf = ga.alloc_local(sec0)
            times = []
            for i in range(reps + 1):  # first rep is warm-up
                owner = 1 + (i % (task.size - 1))
                block = ga.distribution(h, owner)
                if kind == "2d":
                    span = block.rows - side
                    di = (i * 131) % (span + 1)
                    dj = (i * 67) % (block.cols - side + 1)
                    sec = (block.ilo + di, block.ilo + di + side - 1,
                           block.jlo + dj, block.jlo + dj + side - 1)
                else:
                    span = block.rows - elems
                    di = (i * 131) % (span + 1)
                    j = block.jlo + (i % block.cols)
                    sec = (block.ilo + di, block.ilo + di + elems - 1,
                           j, j)
                t0 = task.now()
                if op == "put":
                    yield from ga.put(h, sec, buf)
                else:
                    yield from ga.get(h, sec, buf)
                times.append(task.now() - t0)
            yield from ga.fence()
            records["per_op"] = mean(times, skip_warmup=1)
            ga.free_local(buf)
        yield from ga.sync()

    fresh_cluster(4, config, seed=seed).run_job(main,
                                                ga_backend=backend,
                                                ga_config=gcfg)
    return bandwidth_mbs(nbytes, records["per_op"])


def figure_jobs(op: str, config: MachineConfig = SP_1998,
                sizes=GA_SIZE_SWEEP) -> list[JobSpec]:
    """One Figure-3/4 sweep as specs: every (backend, kind, size)
    combination is an independent 4-node cluster simulation."""
    figure = "fig3" if op == "put" else "fig4"
    return [JobSpec(ga_transfer_rate, (backend, op, kind, n, config),
                    key=(figure, backend, kind, n))
            for backend, kind in _SERIES for n in sizes]


def _submit_figure(op: str, config: MachineConfig, sizes) -> Deferred:
    sizes = list(sizes)
    future = submit(figure_jobs(op, config, sizes))
    return Deferred(future, lambda values: _figure(op, values, sizes))


def _figure(op: str, values: list, sizes: list) -> ExperimentResult:
    k = len(sizes)
    series = {combo: values[i * k:(i + 1) * k]
              for i, combo in enumerate(_SERIES)}
    rows = [[n,
             series[("lapi", "1d")][i], series[("lapi", "2d")][i],
             series[("mpl", "1d")][i], series[("mpl", "2d")][i]]
            for i, n in enumerate(sizes)]
    figure = "fig3" if op == "put" else "fig4"
    result = ExperimentResult(
        experiment=figure,
        title=f"GA {op} transfer rate [MB/s] under LAPI and MPL",
        headers=["bytes", "LAPI 1-D", "LAPI 2-D", "MPL 1-D",
                 "MPL 2-D"],
        rows=rows)

    lapi1, lapi2 = series[("lapi", "1d")], series[("lapi", "2d")]
    mpl1, mpl2 = series[("mpl", "1d")], series[("mpl", "2d")]
    if op == "get":
        result.check(
            "LAPI outperforms MPL for all cases (Fig 4)",
            all(l >= m for l, m in zip(lapi1, mpl1))
            and all(l >= m for l, m in zip(lapi2, mpl2)))
        result.check(
            "1-D beats 2-D for both implementations",
            lapi1[-1] > lapi2[-1] and mpl1[-1] > mpl2[-1],
            f"LAPI {lapi1[-1]:.1f}>{lapi2[-1]:.1f},"
            f" MPL {mpl1[-1]:.1f}>{mpl2[-1]:.1f}")
    else:
        small = [i for i, n in enumerate(sizes) if n <= 512]
        mid = [i for i, n in enumerate(sizes)
               if 8192 <= n <= 16384]
        large = [i for i, n in enumerate(sizes) if n >= 131072]
        result.check(
            "LAPI wins for small puts (low call overhead)",
            all(lapi1[i] >= mpl1[i] for i in small))
        result.check(
            "MPL buffering wins somewhere in the 1-20KB band (Fig 3)",
            any(mpl1[i] > lapi1[i] for i in mid)
            or any(mpl2[i] > lapi2[i] for i in mid))
        result.check(
            "LAPI wins for large puts (no sender-side buffering)",
            all(lapi1[i] >= mpl1[i] for i in large))
    result.check(
        "LAPI 1-D large transfers approach the raw put rate"
        " (within ~15%)",
        lapi1[-1] >= 80.0, f"{lapi1[-1]:.1f} MB/s at 2MB")
    return result


def submit_fig3(config: MachineConfig = SP_1998,
                sizes=GA_SIZE_SWEEP) -> Deferred:
    """Queue Figure 3's sweep; ``finish()`` builds the result."""
    return _submit_figure("put", config, sizes)


def run_fig3(config: MachineConfig = SP_1998,
             sizes=GA_SIZE_SWEEP) -> ExperimentResult:
    """Regenerate Figure 3 (GA put)."""
    return submit_fig3(config, sizes).finish()


def submit_fig4(config: MachineConfig = SP_1998,
                sizes=GA_SIZE_SWEEP) -> Deferred:
    """Queue Figure 4's sweep; ``finish()`` builds the result."""
    return _submit_figure("get", config, sizes)


def run_fig4(config: MachineConfig = SP_1998,
             sizes=GA_SIZE_SWEEP) -> ExperimentResult:
    """Regenerate Figure 4 (GA get)."""
    return submit_fig4(config, sizes).finish()


#: (op, backend) combinations of the latency table, in row order.
_LAT_COMBOS = [(op, backend) for op in ("get", "put")
               for backend in ("lapi", "mpl")]


def submit_ga_latency(config: MachineConfig = SP_1998) -> Deferred:
    """Queue the single-element jobs; ``finish()`` builds the table."""
    future = submit([JobSpec(ga_transfer_rate,
                             (backend, op, "1d", 8, config),
                             key=("ga_lat", op, backend))
                     for op, backend in _LAT_COMBOS])
    return Deferred(future, _ga_latency)


def run_ga_latency(config: MachineConfig = SP_1998
                   ) -> ExperimentResult:
    """Regenerate the section 5.4 single-element latency numbers."""
    return submit_ga_latency(config).finish()


def _ga_latency(rates: list) -> ExperimentResult:
    measured = {combo: 8.0 / rate  # us per element
                for combo, rate in zip(_LAT_COMBOS, rates)}
    result = ExperimentResult(
        experiment="ga_lat",
        title="GA single-element (8-byte) latency [us]",
        headers=["Operation", "Paper", "Simulated"],
        rows=[
            ["get (LAPI)", GA_LATENCY[("get", "lapi")],
             measured[("get", "lapi")]],
            ["get (MPL)", GA_LATENCY[("get", "mpl")],
             measured[("get", "mpl")]],
            ["put (LAPI)", GA_LATENCY[("put", "lapi")],
             measured[("put", "lapi")]],
            ["put (MPL)", GA_LATENCY[("put", "mpl")],
             measured[("put", "mpl")]],
        ])
    result.check("GA get: LAPI much faster than MPL (paper 94 vs 221)",
                 measured[("get", "mpl")]
                 >= 1.8 * measured[("get", "lapi")],
                 f"{measured[('get', 'lapi')]:.1f} vs"
                 f" {measured[('get', 'mpl')]:.1f}")
    result.check("GA put: LAPI faster than MPL (paper 49.6 vs 54.6)",
                 measured[("put", "lapi")] < measured[("put", "mpl")],
                 f"{measured[('put', 'lapi')]:.1f} vs"
                 f" {measured[('put', 'mpl')]:.1f}")
    result.check("GA put much cheaper than GA get (one-way vs round"
                 " trip)",
                 measured[("put", "lapi")]
                 < 0.75 * measured[("get", "lapi")])
    return result
