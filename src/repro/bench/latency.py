"""Table 2 (latency) and the section-4 pipeline-latency experiments.

All measurements use 4-byte messages between two nodes, matching the
paper's setup, and report virtual microseconds:

* **one-way latency** ("polling" row): time from the origin starting
  its call to the data being available at the target (the target's
  wait completing);
* **round trip**: origin sends, target echoes 4 bytes back on arrival,
  origin waits for the echo;
* **pipeline latency**: time for the *non-blocking* LAPI_Put/Get call
  to return control to the user program.

The LAPI rows run the LAPI stack in polling or interrupt mode; the
MPI/MPL rows use send/recv ping-pong, with the interrupt round trip
going through ``rcvncall`` exactly as the paper footnotes.
"""

from __future__ import annotations

from typing import Generator

from ..machine.config import SP_1998, MachineConfig
from .paper import PIPELINE, TABLE2
from .parallel import Deferred, JobSpec, submit
from .report import ExperimentResult
from .runner import fresh_cluster, mean

__all__ = ["run_table2", "submit_table2", "run_pipeline_latency",
           "submit_pipeline_latency", "lapi_pingpong", "mpl_pingpong",
           "lapi_pingpong_job", "mpl_pingpong_job", "table2_jobs",
           "pipeline_latency_job"]

#: Ping-pong repetitions (first is treated as warm-up).
REPS = 12


def lapi_pingpong(cluster, *, interrupt_mode: bool):
    """Run the LAPI ping-pong; returns (one_way_us, round_trip_us)."""
    records = {}

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(8)
        echo = mem.malloc(8)
        src = mem.malloc(8)
        ping = lapi.counter("ping")
        pong = lapi.counter("pong")
        yield from lapi.gfence()
        one_way = []
        round_trip = []
        if task.rank == 0:
            for _ in range(REPS):
                t0 = task.now()
                yield from lapi.put(1, 4, buf, src, tgt_cntr=ping.id)
                yield from lapi.waitcntr(pong, 1)
                round_trip.append(task.now() - t0)
                records.setdefault("sends", []).append(t0)
            yield from lapi.gfence()
            records["round_trip"] = round_trip
        else:
            for _ in range(REPS):
                yield from lapi.waitcntr(ping, 1)
                records.setdefault("arrivals", []).append(task.now())
                yield from lapi.put(0, 4, echo, src, tgt_cntr=pong.id)
            yield from lapi.gfence()

    cluster.run_job(main, stacks=("lapi",),
                    interrupt_mode=interrupt_mode)
    one_way = [a - s for s, a in zip(records["sends"],
                                     records["arrivals"])]
    return mean(one_way), mean(records["round_trip"])


def mpl_pingpong(cluster, *, interrupt_mode: bool,
                 use_rcvncall: bool = False):
    """Run the MPI/MPL ping-pong; returns (one_way_us, round_trip_us).

    With ``use_rcvncall`` the echo comes from an interrupt-driven
    rcvncall handler (the paper's interrupt-mode measurement, which
    pays the AIX handler-context cost).
    """
    records = {}

    def main(task):
        mpl = task.mpl
        if task.rank == 1 and use_rcvncall:
            def echo_handler(t, src, tag, data):
                records.setdefault("arrivals", []).append(t.now())
                yield from t.mpl.send(src, b"echo", 4, tag=2)
            mpl.rcvncall(1, echo_handler)
        yield from mpl.barrier()
        if task.rank == 0:
            round_trip = []
            for _ in range(REPS):
                t0 = task.now()
                records.setdefault("sends", []).append(t0)
                yield from mpl.send(1, b"ping", 4, tag=1)
                yield from mpl.recv_bytes(1, tag=2)
                round_trip.append(task.now() - t0)
            records["round_trip"] = round_trip
            yield from mpl.barrier()
        else:
            if not use_rcvncall:
                for _ in range(REPS):
                    yield from mpl.recv_bytes(0, tag=1)
                    records.setdefault("arrivals",
                                       []).append(task.now())
                    yield from mpl.send(0, b"echo", 4, tag=2)
            yield from mpl.barrier()

    cluster.run_job(main, stacks=("mpl",), interrupt_mode=interrupt_mode)
    one_way = [a - s for s, a in zip(records["sends"],
                                     records["arrivals"])]
    return mean(one_way), mean(records["round_trip"])


def lapi_pingpong_job(config: MachineConfig = SP_1998, *,
                      interrupt_mode: bool = False):
    """Self-contained LAPI ping-pong job (builds its own cluster)."""
    return lapi_pingpong(fresh_cluster(2, config),
                         interrupt_mode=interrupt_mode)


def mpl_pingpong_job(config: MachineConfig = SP_1998, *,
                     interrupt_mode: bool = False,
                     use_rcvncall: bool = False):
    """Self-contained MPL ping-pong job (builds its own cluster)."""
    return mpl_pingpong(fresh_cluster(2, config),
                        interrupt_mode=interrupt_mode,
                        use_rcvncall=use_rcvncall)


def table2_jobs(config: MachineConfig = SP_1998) -> list[JobSpec]:
    """Table 2's four independent cluster measurements as specs."""
    return [
        JobSpec(lapi_pingpong_job, (config,),
                {"interrupt_mode": False},
                key=("table2", "lapi", "polling")),
        JobSpec(lapi_pingpong_job, (config,),
                {"interrupt_mode": True},
                key=("table2", "lapi", "interrupt")),
        JobSpec(mpl_pingpong_job, (config,),
                {"interrupt_mode": False},
                key=("table2", "mpl", "polling")),
        JobSpec(mpl_pingpong_job, (config,),
                {"interrupt_mode": True, "use_rcvncall": True},
                key=("table2", "mpl", "interrupt")),
    ]


def submit_table2(config: MachineConfig = SP_1998) -> Deferred:
    """Queue Table 2's measurements; ``finish()`` builds the table."""
    return Deferred(submit(table2_jobs(config)), _table2)


def run_table2(config: MachineConfig = SP_1998) -> ExperimentResult:
    """Regenerate Table 2: LAPI vs MPI/MPL latency."""
    return submit_table2(config).finish()


def _table2(values: list) -> ExperimentResult:
    ((lapi_ow, lapi_rt), (_, lapi_irt),
     (mpl_ow, mpl_rt), (_, mpl_irt)) = values

    result = ExperimentResult(
        experiment="table2",
        title="Latency measurements, 4-byte messages [us]",
        headers=["Measurement", "LAPI (paper)", "LAPI (sim)",
                 "MPI/MPL (paper)", "MPI/MPL (sim)"],
        rows=[
            ["polling", TABLE2[("lapi", "polling")], lapi_ow,
             TABLE2[("mpl", "polling")], mpl_ow],
            ["polling round-trip",
             TABLE2[("lapi", "polling_round_trip")], lapi_rt,
             TABLE2[("mpl", "polling_round_trip")], mpl_rt],
            ["interrupt round-trip",
             TABLE2[("lapi", "interrupt_round_trip")], lapi_irt,
             TABLE2[("mpl", "interrupt_round_trip")], mpl_irt],
        ])
    result.check("LAPI one-way beats MPI (polling)", lapi_ow < mpl_ow,
                 f"{lapi_ow:.1f} vs {mpl_ow:.1f}")
    result.check("LAPI round-trip beats MPI (polling)",
                 lapi_rt < mpl_rt, f"{lapi_rt:.1f} vs {mpl_rt:.1f}")
    result.check("interrupt round-trip costs more than polling (LAPI)",
                 lapi_irt > lapi_rt,
                 f"{lapi_irt:.1f} vs {lapi_rt:.1f}")
    result.check("interrupt round-trip costs more than polling (MPL)",
                 mpl_irt > mpl_rt, f"{mpl_irt:.1f} vs {mpl_rt:.1f}")
    ratio = mpl_irt / lapi_irt
    result.check("MPL interrupt RT ~2x LAPI's (paper: 200/89 = 2.2)",
                 1.5 <= ratio <= 3.2, f"ratio {ratio:.2f}")
    return result


def pipeline_latency_job(config: MachineConfig = SP_1998):
    """Measure non-blocking call return times; returns (put, get) us."""
    records = {}

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(64)
        src = mem.malloc(64)
        yield from lapi.gfence()
        if task.rank == 0:
            puts, gets = [], []
            for _ in range(REPS):
                t0 = task.now()
                yield from lapi.put(1, 4, buf, src)
                puts.append(task.now() - t0)
            yield from lapi.fence()
            org = lapi.counter()
            for _ in range(REPS):
                t0 = task.now()
                yield from lapi.get(1, 4, buf, src, org_cntr=org)
                gets.append(task.now() - t0)
            yield from lapi.waitcntr(org, REPS)
            records["put"] = mean(puts)
            records["get"] = mean(gets)
        yield from lapi.gfence()

    fresh_cluster(2, config).run_job(main, stacks=("lapi",))
    return records["put"], records["get"]


def submit_pipeline_latency(config: MachineConfig = SP_1998
                            ) -> Deferred:
    """Queue the pipeline-latency job; ``finish()`` builds the table."""
    future = submit([JobSpec(pipeline_latency_job, (config,),
                             key=("pipeline", "lapi"))])
    return Deferred(future, _pipeline_latency)


def run_pipeline_latency(config: MachineConfig = SP_1998
                         ) -> ExperimentResult:
    """Regenerate the section-4 pipeline-latency numbers."""
    return submit_pipeline_latency(config).finish()


def _pipeline_latency(values: list) -> ExperimentResult:
    [(put_us, get_us)] = values
    result = ExperimentResult(
        experiment="pipeline",
        title="Pipeline latency: non-blocking call return time [us]",
        headers=["Call", "Paper", "Simulated"],
        rows=[["LAPI_Put", PIPELINE["put"], put_us],
              ["LAPI_Get", PIPELINE["get"], get_us]])
    result.check("Put pipeline latency near paper's 16us",
                 8.0 <= put_us <= 26.0, f"{put_us:.1f}us")
    result.check("Get pipeline latency near paper's 19us",
                 10.0 <= get_us <= 30.0, f"{get_us:.1f}us")
    result.check("Get costs slightly more than Put (request marshal)",
                 get_us > put_us, f"{get_us:.1f} > {put_us:.1f}")
    result.check("pipeline latency well below one-way latency",
                 put_us < TABLE2[("lapi", "polling")],
                 f"{put_us:.1f} < 34")
    return result
