"""Shared plumbing for benchmark experiments.

Experiments are SPMD jobs on fresh clusters measured in *virtual* time;
these helpers standardize cluster construction, repetition/averaging,
and unit conversions (bytes/us == MB/s).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..machine import Cluster
from ..machine.config import SP_1998, MachineConfig

__all__ = ["fresh_cluster", "mean", "reps_for_size", "SIZE_SWEEP",
           "bandwidth_mbs"]

#: Message-size sweep of Figure 2 (16 bytes to 2 MB).
SIZE_SWEEP = [16, 64, 256, 1024, 4096, 8192, 16384, 32768, 65536,
              131072, 262144, 524288, 1048576, 2097152]


def fresh_cluster(nnodes: int = 2, config: MachineConfig = SP_1998,
                  seed: int = 0xBE1) -> Cluster:
    """A new cluster per measurement: no cross-experiment state."""
    return Cluster(nnodes=nnodes, config=config, seed=seed)


def mean(values: Sequence[float], *, skip_warmup: int = 1) -> float:
    """Average, discarding warm-up iterations when there are enough."""
    vals = list(values)
    if len(vals) > skip_warmup + 1:
        vals = vals[skip_warmup:]
    return sum(vals) / len(vals)


def reps_for_size(nbytes: int, *, budget_bytes: int = 1 << 20,
                  lo: int = 3, hi: int = 24) -> int:
    """Series length decreasing with request size (as in section 5.4)."""
    reps = budget_bytes // max(nbytes, 1)
    return max(lo, min(hi, reps))


def bandwidth_mbs(nbytes: int, elapsed_us: float) -> float:
    """Bytes over microseconds is numerically MB/s."""
    if elapsed_us <= 0:
        return float("inf")
    return nbytes / elapsed_us
