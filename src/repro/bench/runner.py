"""Shared plumbing for benchmark experiments.

Experiments are SPMD jobs on fresh clusters measured in *virtual* time;
these helpers standardize cluster construction, repetition/averaging,
and unit conversions (bytes/us == MB/s).

The module also carries the harness's observability switchboard: when
``python -m repro.bench`` runs with ``--metrics`` or ``--trace-out``,
:func:`configure_observability` arms capture and every cluster built by
:func:`fresh_cluster` gets a structured tracer attached and is retained
so the CLI can render its per-subsystem metrics block and export its
JSONL trace after the experiment finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..machine import Cluster
from ..machine.config import SP_1998, MachineConfig
from ..obs import SpanRecorder, pool_stats, record_to_dict
from ..sim import Tracer

__all__ = ["fresh_cluster", "mean", "reps_for_size", "SIZE_SWEEP",
           "bandwidth_mbs", "configure_observability",
           "captured_clusters", "ClusterCapture", "capture_cluster",
           "record_captures", "drain_captures",
           "observability_kwargs", "armed_telemetry",
           "live_cluster_index", "events_since"]

#: Message-size sweep of Figure 2 (16 bytes to 2 MB).
SIZE_SWEEP = [16, 64, 256, 1024, 4096, 8192, 16384, 32768, 65536,
              131072, 262144, 524288, 1048576, 2097152]


class _Observability:
    """Capture state armed by the CLI; off by default."""

    def __init__(self) -> None:
        self.collect_metrics = False
        self.trace = False
        #: Retain clusters without attaching metrics/trace machinery
        #: (used by ``--perf`` to read kernel event counters).
        self.capture = False
        #: Arm causal span tracing (``--spans``/``--decompose``).
        self.spans = False
        #: Armed :class:`repro.obs.TelemetryConfig` (``--slo`` /
        #: ``--timeline-out``), or None.  Frozen and picklable, so
        #: :func:`observability_kwargs` ships it to sweep workers
        #: verbatim and every worker arms the parent's exact config.
        self.telemetry = None
        self.trace_limit = 250_000
        self.trace_categories: Optional[Sequence[str]] = None
        self.clusters: list[Cluster] = []
        #: Captures shipped back from sweep-engine workers (see
        #: ``repro.bench.parallel``), already in job-spec order.
        self.captures: list["ClusterCapture"] = []


_OBS = _Observability()


def configure_observability(*, metrics: bool = False, trace: bool = False,
                            capture: bool = False, spans: bool = False,
                            telemetry=None,
                            trace_limit: int = 250_000,
                            trace_categories: Optional[Sequence[str]]
                            = None) -> None:
    """Arm (or disarm) metrics/trace/span capture for new clusters."""
    _OBS.collect_metrics = metrics
    _OBS.trace = trace
    _OBS.capture = capture
    _OBS.spans = spans
    _OBS.telemetry = telemetry
    _OBS.trace_limit = trace_limit
    _OBS.trace_categories = trace_categories
    _OBS.clusters = []
    _OBS.captures = []


def observability_kwargs() -> dict:
    """The armed capture flags, in :func:`configure_observability`
    keyword form -- what the sweep engine replays in each worker."""
    return {"metrics": _OBS.collect_metrics, "trace": _OBS.trace,
            "capture": _OBS.capture, "spans": _OBS.spans,
            "telemetry": _OBS.telemetry,
            "trace_limit": _OBS.trace_limit,
            "trace_categories": _OBS.trace_categories}


def armed_telemetry():
    """The CLI-armed :class:`repro.obs.TelemetryConfig`, or None.

    The chaos bench reads this to graft the armed SLO rules onto its
    own always-on telemetry config (its recovery curves use a fixed
    window so the ``--faults-out`` records are identical with or
    without ``--slo``)."""
    return _OBS.telemetry


def captured_clusters() -> list[Cluster]:
    """Drain the clusters captured since the last call (CLI hook)."""
    clusters = _OBS.clusters
    _OBS.clusters = []
    return clusters


def live_cluster_index() -> int:
    """Watermark into the live-cluster capture list (see
    :func:`events_since`)."""
    return len(_OBS.clusters)


def events_since(index: int) -> int:
    """Kernel events of live clusters captured past ``index``.

    Lets the serial sweep path attribute per-job event counts (for the
    cost model and pool stats) without draining the capture list out
    from under the experiment that owns it.  Zero when capture is
    disarmed -- the jobs still ran, we just were not counting.
    """
    return sum(c.sim.events_processed for c in _OBS.clusters[index:])


@dataclass
class ClusterCapture:
    """Picklable observability summary of one finished cluster.

    Everything the CLI reads after an experiment -- kernel event
    counts, final virtual time, the rendered ``--metrics`` block, and
    serialized trace records -- without the (unpicklable) live
    cluster.  Sweep-engine workers ship these back to the parent; the
    serial path converts live clusters lazily, so both modes feed the
    CLI byte-identical material.
    """

    nnodes: int
    now: float
    events: int
    metrics_block: Optional[str] = None
    trace: list[dict] = field(default_factory=list)
    #: Serialized spans of this cluster (``--spans``), in canonical
    #: order -- identical whether shipped from a worker or drained
    #: from a live in-process cluster.
    spans: list[dict] = field(default_factory=list)
    #: Hot-path pool counters (:func:`repro.obs.pool_stats`), captured
    #: only under ``--perf``; merged into BENCH_PERF's ``pools`` block.
    pools: Optional[dict] = None
    #: Telemetry snapshot (``TelemetryRuntime.snapshot()``: windowed
    #: series, SLO alert log, flight dumps) when the cluster was armed.
    #: Plain nested dicts in deterministic order, so worker-shipped and
    #: in-process captures serialize byte-identically.
    telemetry: Optional[dict] = None


def capture_cluster(cluster: Cluster) -> ClusterCapture:
    """Condense a finished cluster into a :class:`ClusterCapture`."""
    metrics_block = (cluster.metrics.render()
                     if _OBS.collect_metrics else None)
    trace = ([record_to_dict(r) for r in cluster.trace.records]
             if cluster.trace is not None else [])
    spans = (cluster.spans.span_dicts()
             if cluster.spans is not None else [])
    pools = pool_stats(cluster) if _OBS.capture else None
    telemetry = (cluster.telemetry.snapshot()
                 if cluster.telemetry is not None else None)
    return ClusterCapture(nnodes=cluster.nnodes, now=cluster.sim.now,
                          events=cluster.sim.events_processed,
                          metrics_block=metrics_block, trace=trace,
                          spans=spans, pools=pools,
                          telemetry=telemetry)


def record_captures(captures: Sequence[ClusterCapture]) -> None:
    """Append worker-shipped captures (sweep engine, in job order)."""
    _OBS.captures.extend(captures)


def drain_captures() -> list[ClusterCapture]:
    """Drain all capture state as :class:`ClusterCapture` records.

    Worker-shipped captures come first (the sweep engine records them
    in job-spec order), then any live clusters built in-process,
    converted in construction order.  An experiment never mixes the
    two within one drain: either its jobs all ran on the pool or all
    ran inline.
    """
    captures = _OBS.captures
    clusters = _OBS.clusters
    _OBS.captures = []
    _OBS.clusters = []
    return captures + [capture_cluster(c) for c in clusters]


def fresh_cluster(nnodes: int = 2, config: MachineConfig = SP_1998,
                  seed: int = 0xBE1, faults=None,
                  telemetry=None) -> Cluster:
    """A new cluster per measurement: no cross-experiment state.

    ``faults`` is an optional :class:`repro.faults.FaultSchedule`
    installed at construction time (the chaos bench's entry point).
    ``telemetry`` overrides the armed
    :class:`repro.obs.TelemetryConfig` for this cluster (the chaos
    bench always arms its own); None falls back to whatever the CLI
    armed, usually nothing.
    """
    trace = Tracer(categories=_OBS.trace_categories,
                   limit=_OBS.trace_limit) if _OBS.trace else None
    spans = SpanRecorder() if _OBS.spans else None
    if telemetry is None:
        telemetry = _OBS.telemetry
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed,
                      trace=trace, spans=spans, faults=faults,
                      telemetry=telemetry)
    if (_OBS.collect_metrics or _OBS.trace or _OBS.capture
            or _OBS.spans or telemetry is not None):
        _OBS.clusters.append(cluster)
    return cluster


def mean(values: Sequence[float], *, skip_warmup: int = 1) -> float:
    """Average, discarding warm-up iterations when there are enough.

    The warm-up values are dropped whenever at least one measured value
    remains afterwards; with ``skip_warmup`` or fewer samples nothing
    is discarded.  An empty sequence is a caller bug and raises.
    """
    vals = list(values)
    if not vals:
        raise ValueError("mean() of an empty sequence of measurements")
    if len(vals) > skip_warmup:
        vals = vals[skip_warmup:]
    return sum(vals) / len(vals)


def reps_for_size(nbytes: int, *, budget_bytes: int = 1 << 20,
                  lo: int = 3, hi: int = 24) -> int:
    """Series length decreasing with request size (as in section 5.4)."""
    reps = budget_bytes // max(nbytes, 1)
    return max(lo, min(hi, reps))


def bandwidth_mbs(nbytes: int, elapsed_us: float) -> float:
    """Bytes over microseconds is numerically MB/s.

    A non-positive elapsed time is always a measurement bug (virtual
    clocks never run backwards and every transfer costs time); raising
    keeps a zero-duration defect from turning into an ``inf`` that
    silently contaminates a ``mean()`` over a sweep.
    """
    if elapsed_us <= 0:
        raise ValueError(
            f"bandwidth_mbs: non-positive elapsed time {elapsed_us}us"
            f" for {nbytes} bytes (zero-duration measurement bug)")
    return nbytes / elapsed_us
