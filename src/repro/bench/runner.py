"""Shared plumbing for benchmark experiments.

Experiments are SPMD jobs on fresh clusters measured in *virtual* time;
these helpers standardize cluster construction, repetition/averaging,
and unit conversions (bytes/us == MB/s).

The module also carries the harness's observability switchboard: when
``python -m repro.bench`` runs with ``--metrics`` or ``--trace-out``,
:func:`configure_observability` arms capture and every cluster built by
:func:`fresh_cluster` gets a structured tracer attached and is retained
so the CLI can render its per-subsystem metrics block and export its
JSONL trace after the experiment finishes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..machine import Cluster
from ..machine.config import SP_1998, MachineConfig
from ..sim import Tracer

__all__ = ["fresh_cluster", "mean", "reps_for_size", "SIZE_SWEEP",
           "bandwidth_mbs", "configure_observability",
           "captured_clusters"]

#: Message-size sweep of Figure 2 (16 bytes to 2 MB).
SIZE_SWEEP = [16, 64, 256, 1024, 4096, 8192, 16384, 32768, 65536,
              131072, 262144, 524288, 1048576, 2097152]


class _Observability:
    """Capture state armed by the CLI; off by default."""

    def __init__(self) -> None:
        self.collect_metrics = False
        self.trace = False
        #: Retain clusters without attaching metrics/trace machinery
        #: (used by ``--perf`` to read kernel event counters).
        self.capture = False
        self.trace_limit = 250_000
        self.trace_categories: Optional[Sequence[str]] = None
        self.clusters: list[Cluster] = []


_OBS = _Observability()


def configure_observability(*, metrics: bool = False, trace: bool = False,
                            capture: bool = False,
                            trace_limit: int = 250_000,
                            trace_categories: Optional[Sequence[str]]
                            = None) -> None:
    """Arm (or disarm) metrics/trace capture for subsequent clusters."""
    _OBS.collect_metrics = metrics
    _OBS.trace = trace
    _OBS.capture = capture
    _OBS.trace_limit = trace_limit
    _OBS.trace_categories = trace_categories
    _OBS.clusters = []


def captured_clusters() -> list[Cluster]:
    """Drain the clusters captured since the last call (CLI hook)."""
    clusters = _OBS.clusters
    _OBS.clusters = []
    return clusters


def fresh_cluster(nnodes: int = 2, config: MachineConfig = SP_1998,
                  seed: int = 0xBE1) -> Cluster:
    """A new cluster per measurement: no cross-experiment state."""
    trace = Tracer(categories=_OBS.trace_categories,
                   limit=_OBS.trace_limit) if _OBS.trace else None
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed,
                      trace=trace)
    if _OBS.collect_metrics or _OBS.trace or _OBS.capture:
        _OBS.clusters.append(cluster)
    return cluster


def mean(values: Sequence[float], *, skip_warmup: int = 1) -> float:
    """Average, discarding warm-up iterations when there are enough.

    The warm-up values are dropped whenever at least one measured value
    remains afterwards; with ``skip_warmup`` or fewer samples nothing
    is discarded.  An empty sequence is a caller bug and raises.
    """
    vals = list(values)
    if not vals:
        raise ValueError("mean() of an empty sequence of measurements")
    if len(vals) > skip_warmup:
        vals = vals[skip_warmup:]
    return sum(vals) / len(vals)


def reps_for_size(nbytes: int, *, budget_bytes: int = 1 << 20,
                  lo: int = 3, hi: int = 24) -> int:
    """Series length decreasing with request size (as in section 5.4)."""
    reps = budget_bytes // max(nbytes, 1)
    return max(lo, min(hi, reps))


def bandwidth_mbs(nbytes: int, elapsed_us: float) -> float:
    """Bytes over microseconds is numerically MB/s."""
    if elapsed_us <= 0:
        return float("inf")
    return nbytes / elapsed_us
