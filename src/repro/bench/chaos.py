"""Chaos bench: goodput degradation and recovery under injected faults.

``python -m repro.bench --faults`` sweeps a fixed set of fault regimes
-- uniform and bursty (Gilbert-Elliott) loss, link outages, asymmetric
ack loss, CPU pause/slowdown windows, payload corruption -- over a
2-node LAPI put workload and reports, per scenario:

* **goodput** (MB/s of application payload actually delivered),
* **degradation** relative to the fault-free baseline,
* **recovery time** (extra virtual time the run needed versus the
  baseline -- how long the transport spent retransmitting, backing
  off, and waiting out the fault),
* transport retransmissions and injected fault drops,
* end-to-end data integrity (the target's buffer is verified
  byte-for-byte after the final fence).

Every scenario is deterministic: fault draws come from the cluster's
seeded ``faults`` RNG stream, so the whole table -- and the
``--faults-out`` JSON -- is byte-identical across runs and between
``--jobs 1`` and ``--jobs N`` (each scenario is one independent
:class:`~repro.bench.parallel.JobSpec`).

The workload runs with the adaptive (Jacobson/Karels) RTO machinery
that a fault schedule auto-enables (see ``docs/reliability.md``); the
baseline scenario has no schedule and therefore measures the exact
fixed-timeout fault-free path.
"""

from __future__ import annotations

from typing import Optional

from ..faults import (AckLoss, Corruption, CpuDegrade, CpuPause,
                      FaultSchedule, GilbertElliott, LinkOutage)
from .parallel import Deferred, JobSpec, submit
from .report import ExperimentResult
from .runner import bandwidth_mbs, fresh_cluster

__all__ = ["run_chaos", "submit_chaos", "chaos_jobs", "chaos_point",
           "chaos_scenarios", "CHAOS_SEED"]

#: Cluster seed of every chaos scenario (one cluster per scenario, so
#: a shared seed keeps scenarios comparable without coupling them).
CHAOS_SEED = 0xFA57

#: Message size / count of the chaos workload (full sweep).
CHAOS_BYTES = 4096
CHAOS_MSGS = 24
#: Reduced message count for ``--perf-quick`` (the CI smoke sweep).
CHAOS_MSGS_QUICK = 10


def chaos_scenarios(quick: bool = False) -> list[tuple[str,
                                                       Optional[FaultSchedule]]]:
    """The ``(name, schedule)`` sweep, baseline first.

    Window times are virtual microseconds chosen to land inside the
    workload (the fault-free run takes a few thousand us).
    """
    scenarios: list[tuple[str, Optional[FaultSchedule]]] = [
        ("baseline", None),
        ("loss_1pct", FaultSchedule([GilbertElliott(loss_good=0.01)])),
        ("loss_5pct", FaultSchedule([GilbertElliott(loss_good=0.05)])),
        ("loss_10pct", FaultSchedule([GilbertElliott(loss_good=0.10)])),
        ("burst", FaultSchedule([
            GilbertElliott(p_good_bad=0.02, p_bad_good=0.25,
                           loss_bad=0.75)])),
        ("outage_short", FaultSchedule([
            LinkOutage(src=0, dst=1, start=400.0, end=900.0)])),
        ("outage_long", FaultSchedule([
            LinkOutage(src=0, dst=1, start=400.0, end=2400.0)])),
        ("ack_loss", FaultSchedule([
            AckLoss(src=1, dst=0, rate=0.3)])),
        ("cpu_pause", FaultSchedule([
            CpuPause(node=1, start=400.0, end=1400.0)])),
        ("cpu_slow", FaultSchedule([
            CpuDegrade(node=1, start=200.0, end=2200.0, factor=4.0)])),
        ("corrupt", FaultSchedule([Corruption(rate=0.05)])),
    ]
    if quick:
        keep = {"baseline", "loss_5pct", "burst", "outage_short",
                "ack_loss", "cpu_pause", "corrupt"}
        scenarios = [(n, s) for n, s in scenarios if n in keep]
    return scenarios


def chaos_point(nbytes: int, nmsgs: int,
                schedule: Optional[FaultSchedule],
                seed: int = CHAOS_SEED) -> dict:
    """One chaos measurement: ping-ack LAPI puts under ``schedule``.

    Module-level and picklable-in/picklable-out, so the sweep engine
    can run scenarios on pool workers (``--jobs N``).
    """
    records: dict = {}
    payload = bytes(i % 251 for i in range(nbytes))

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            mem.write(src, payload)
            cmpl = lapi.counter()
            t0 = task.now()
            for _ in range(nmsgs):
                yield from lapi.put(1, nbytes, buf, src,
                                    cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
            records["elapsed"] = task.now() - t0
        yield from lapi.gfence()
        # Counters are read after the closing fence: dropped acks are
        # absorbed by the send window during the put loop and only
        # drain (retransmit, Karn-skip) in the background afterwards.
        if task.rank == 0:
            tr = lapi.transport
            records["retransmissions"] = tr.retransmissions
            records["karn_skips"] = tr.karn_skips
            records["degraded_events"] = tr.peer_degraded_events
            records["rto"] = tr.peer_rto(1)
        if task.rank == 1:
            records["intact"] = mem.read(buf, nbytes) == payload

    cluster = fresh_cluster(2, seed=seed, faults=schedule)
    cluster.run_job(main, stacks=("lapi",), interrupt_mode=False,
                    until=2_000_000.0)
    faults = cluster.faults
    records["fault_drops"] = (
        0 if faults is None
        else faults.ge_drops + faults.outage_drops + faults.ack_drops)
    records["crc_drops"] = 0 if faults is None else faults.crc_drops
    records["virtual_us"] = round(cluster.sim.now, 6)
    return records


def chaos_jobs(quick: bool = False) -> list[JobSpec]:
    """The chaos sweep as declarative job specs (one per scenario)."""
    nmsgs = CHAOS_MSGS_QUICK if quick else CHAOS_MSGS
    return [JobSpec(chaos_point, (CHAOS_BYTES, nmsgs, schedule,
                                  CHAOS_SEED),
                    key=("chaos", name))
            for name, schedule in chaos_scenarios(quick)]


def submit_chaos(quick: bool = False) -> Deferred:
    """Queue the chaos sweep; ``finish()`` builds the table."""
    return Deferred(submit(chaos_jobs(quick)),
                    lambda values: _chaos(values, quick))


def run_chaos(quick: bool = False) -> ExperimentResult:
    """Run the chaos sweep and shape-check the degradation curves."""
    return submit_chaos(quick).finish()


def _chaos(values: list, quick: bool) -> ExperimentResult:
    names = [name for name, _ in chaos_scenarios(quick)]
    nmsgs = CHAOS_MSGS_QUICK if quick else CHAOS_MSGS
    points = dict(zip(names, values))

    base = points["baseline"]
    base_goodput = bandwidth_mbs(CHAOS_BYTES * nmsgs, base["elapsed"])
    rows = []
    for name in names:
        rec = points[name]
        goodput = bandwidth_mbs(CHAOS_BYTES * nmsgs, rec["elapsed"])
        degradation = 100.0 * (1.0 - goodput / base_goodput)
        # Whole-run virtual time, not just the put loop: background
        # retransmissions drain after the sender's last completion.
        recovery = rec["virtual_us"] - base["virtual_us"]
        rows.append([
            name, round(goodput, 2), round(degradation, 1),
            round(recovery, 1), rec["retransmissions"],
            rec["fault_drops"] + rec["crc_drops"],
            "yes" if rec["intact"] else "NO",
        ])

    result = ExperimentResult(
        experiment="chaos",
        title="Chaos bench: goodput degradation and recovery under"
              " injected faults",
        headers=["scenario", "goodput MB/s", "degraded %",
                 "recovery us", "retx", "drops", "intact"],
        rows=rows)
    result.notes.append(
        f"workload: {nmsgs} x {CHAOS_BYTES}B LAPI puts (completion-"
        f"waited), seed {CHAOS_SEED:#x}; adaptive RTO auto-enabled by"
        " the installed schedule; deterministic across --jobs N")

    result.check("baseline runs fault-free",
                 base["retransmissions"] == 0
                 and base["fault_drops"] == 0)
    result.check("every scenario delivers intact data",
                 all(points[n]["intact"] for n in names))
    result.check("every fault scenario injected faults and recovered",
                 all(points[n]["fault_drops"] + points[n]["crc_drops"]
                     + points[n]["retransmissions"] > 0
                     or points[n]["virtual_us"] > base["virtual_us"]
                     for n in names if n != "baseline"))
    lossy = [n for n in ("loss_1pct", "loss_5pct", "loss_10pct")
             if n in points]
    if len(lossy) > 1:
        degr = [points[n]["elapsed"] for n in lossy]
        result.check("loss degradation grows with the loss rate",
                     all(a <= b for a, b in zip(degr, degr[1:])),
                     " <= ".join(f"{d:.0f}us" for d in degr))
    # The adaptive estimator should have learned an RTO far below the
    # fixed 2000us retransmission timeout in any scenario that carried
    # acks (i.e. all of them).
    adapted = [n for n in names if n != "baseline"]
    result.check("adaptive RTO learns an RTT-scaled timeout"
                 " (below the fixed 2000us)",
                 all(points[n]["rto"] < 2000.0 for n in adapted),
                 f"max {max(points[n]['rto'] for n in adapted):.0f}us")
    ack = points.get("ack_loss")
    if ack is not None:
        result.check("ack loss exercises Karn's rule"
                     " (ambiguous RTT samples skipped)",
                     ack["karn_skips"] > 0, str(ack["karn_skips"]))
    #: Raw per-scenario records (including exact virtual times), used
    #: by ``--faults-out`` so CI can diff determinism byte-for-byte.
    result.payload = {name: points[name] for name in names}
    return result
