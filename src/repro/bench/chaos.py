"""Chaos bench: goodput degradation and recovery under injected faults.

``python -m repro.bench --faults`` sweeps a fixed set of fault regimes
-- uniform and bursty (Gilbert-Elliott) loss, link outages, asymmetric
ack loss, CPU pause/slowdown windows, payload corruption -- over a
2-node LAPI put workload and reports, per scenario:

* **goodput** (MB/s of application payload actually delivered),
* **degradation** relative to the fault-free baseline,
* **recovery time** (extra virtual time the run needed versus the
  baseline -- how long the transport spent retransmitting, backing
  off, and waiting out the fault),
* transport retransmissions and injected fault drops,
* end-to-end data integrity (the target's buffer is verified
  byte-for-byte after the final fence).

Every scenario is deterministic: fault draws come from the cluster's
seeded ``faults`` RNG stream, so the whole table -- and the
``--faults-out`` JSON -- is byte-identical across runs and between
``--jobs 1`` and ``--jobs N`` (each scenario is one independent
:class:`~repro.bench.parallel.JobSpec`).

The workload runs with the adaptive (Jacobson/Karels) RTO machinery
that a fault schedule auto-enables (see ``docs/reliability.md``); the
baseline scenario has no schedule and therefore measures the exact
fixed-timeout fault-free path.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..errors import PeerUnreachableError
from ..faults import (AckLoss, Corruption, CpuDegrade, CpuPause,
                      FaultSchedule, GilbertElliott, LinkOutage,
                      NodeCrash, NodeRestart)
from ..obs import TelemetryConfig
from .parallel import Deferred, JobSpec, submit
from .report import ExperimentResult
from .runner import armed_telemetry, bandwidth_mbs, fresh_cluster

__all__ = ["run_chaos", "submit_chaos", "chaos_jobs", "chaos_point",
           "chaos_scenarios", "crash_point", "crash_scenarios",
           "degradation_pct", "CHAOS_SEED", "CHAOS_WINDOW_US",
           "CRASH_AT_US", "RESTART_AT_US"]

#: Cluster seed of every chaos scenario (one cluster per scenario, so
#: a shared seed keeps scenarios comparable without coupling them).
CHAOS_SEED = 0xFA57

#: Message size / count of the chaos workload (full sweep).
CHAOS_BYTES = 4096
CHAOS_MSGS = 24
#: Reduced message count for ``--perf-quick`` (the CI smoke sweep).
CHAOS_MSGS_QUICK = 10

#: Timeline window of the chaos recovery curves, in virtual
#: microseconds.  Fixed here -- not taken from ``--window-us`` -- so a
#: scenario's ``goodput_windows`` series is a pure function of
#: (nbytes, nmsgs, schedule, seed) and the ``--faults-out`` file is
#: byte-identical with or without the telemetry CLI flags.
CHAOS_WINDOW_US = 250.0

#: A goodput window counts as *impaired* below this fraction of the
#: baseline's median per-window goodput (see :func:`_recovered_us`).
IMPAIRED_FRACTION = 0.5

#: Fail-stop crash scenarios run on a 3-node ring; node 2 crashes at
#: this virtual instant (mid-workload) and -- in the restart scenario
#: -- its machine comes back here.  The conviction happens around
#: ``CRASH_AT_US + conviction_threshold``; the restart instant is far
#: enough past it that absolution is observable.
CRASH_NNODES = 3
CRASH_NODE = 2
CRASH_AT_US = 1500.0
RESTART_AT_US = 6000.0


def chaos_scenarios(quick: bool = False) -> list[tuple[str,
                                                       Optional[FaultSchedule]]]:
    """The ``(name, schedule)`` sweep, baseline first.

    Window times are virtual microseconds chosen to land inside the
    workload (the fault-free run takes a few thousand us).
    """
    scenarios: list[tuple[str, Optional[FaultSchedule]]] = [
        ("baseline", None),
        ("loss_1pct", FaultSchedule([GilbertElliott(loss_good=0.01)])),
        ("loss_5pct", FaultSchedule([GilbertElliott(loss_good=0.05)])),
        ("loss_10pct", FaultSchedule([GilbertElliott(loss_good=0.10)])),
        ("burst", FaultSchedule([
            GilbertElliott(p_good_bad=0.02, p_bad_good=0.25,
                           loss_bad=0.75)])),
        ("outage_short", FaultSchedule([
            LinkOutage(src=0, dst=1, start=400.0, end=900.0)])),
        ("outage_long", FaultSchedule([
            LinkOutage(src=0, dst=1, start=400.0, end=2400.0)])),
        ("ack_loss", FaultSchedule([
            AckLoss(src=1, dst=0, rate=0.3)])),
        ("cpu_pause", FaultSchedule([
            CpuPause(node=1, start=400.0, end=1400.0)])),
        ("cpu_slow", FaultSchedule([
            CpuDegrade(node=1, start=200.0, end=2200.0, factor=4.0)])),
        ("corrupt", FaultSchedule([Corruption(rate=0.05)])),
    ]
    if quick:
        keep = {"baseline", "loss_5pct", "burst", "outage_short",
                "ack_loss", "cpu_pause", "corrupt"}
        scenarios = [(n, s) for n, s in scenarios if n in keep]
    return scenarios


def chaos_point(nbytes: int, nmsgs: int,
                schedule: Optional[FaultSchedule],
                seed: int = CHAOS_SEED) -> dict:
    """One chaos measurement: ping-ack LAPI puts under ``schedule``.

    Module-level and picklable-in/picklable-out, so the sweep engine
    can run scenarios on pool workers (``--jobs N``).
    """
    records: dict = {}
    payload = bytes(i % 251 for i in range(nbytes))

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            mem.write(src, payload)
            cmpl = lapi.counter()
            t0 = task.now()
            for _ in range(nmsgs):
                yield from lapi.put(1, nbytes, buf, src,
                                    cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
            records["elapsed"] = task.now() - t0
        yield from lapi.gfence()
        # Counters are read after the closing fence: dropped acks are
        # absorbed by the send window during the put loop and only
        # drain (retransmit, Karn-skip) in the background afterwards.
        if task.rank == 0:
            tr = lapi.transport
            records["retransmissions"] = tr.retransmissions
            records["karn_skips"] = tr.karn_skips
            records["degraded_events"] = tr.peer_degraded_events
            records["rto"] = tr.peer_rto(1)
        if task.rank == 1:
            records["intact"] = mem.read(buf, nbytes) == payload

    # Chaos always arms its own telemetry (fixed CHAOS_WINDOW_US, no
    # rules): the per-window goodput curve IS the scenario's recovery
    # record.  When the CLI armed SLO rules (--slo), they are grafted
    # on so chaos clusters page too -- rule evaluation is passive, so
    # the records below are identical either way.
    tcfg = TelemetryConfig(window_us=CHAOS_WINDOW_US)
    armed = armed_telemetry()
    if armed is not None and armed.slo:
        tcfg = dataclasses.replace(tcfg, slo=armed.slo)
    cluster = fresh_cluster(2, seed=seed, faults=schedule,
                            telemetry=tcfg)
    cluster.run_job(main, stacks=("lapi",), interrupt_mode=False,
                    until=2_000_000.0)
    faults = cluster.faults
    records["fault_drops"] = (
        0 if faults is None
        else faults.ge_drops + faults.outage_drops + faults.ack_drops)
    records["crc_drops"] = 0 if faults is None else faults.crc_drops
    records["virtual_us"] = round(cluster.sim.now, 6)
    # Time-resolved goodput: fresh payload bytes delivered per window,
    # summed across both ranks' transports (rank 1 receives the puts,
    # rank 0 receives fence traffic).  Gap windows (no deliveries) are
    # simply absent -- consumers treat missing as zero.
    timeline = cluster.telemetry.timeline
    timeline.finalize()
    per_window: dict[int, int] = {}
    for rank in (0, 1):
        for w, delta in timeline.counter_windows(
                "telemetry.transport", "rx_payload_bytes", node=rank):
            per_window[w] = per_window.get(w, 0) + delta
    records["window_us"] = CHAOS_WINDOW_US
    records["goodput_windows"] = [[w, per_window[w]]
                                  for w in sorted(per_window)]
    #: Virtual time the first fault engaged (first drop/CRC discard);
    #: None for the baseline and for schedules that never fired.
    first = None if faults is None else faults.first_fault_us
    records["detection_us"] = (None if first is None
                               else round(first, 3))
    return records


def crash_scenarios(quick: bool = False) -> list[tuple[str,
                                                       Optional[FaultSchedule]]]:
    """Fail-stop crash sweep, baseline first.

    All three run even under ``--perf-quick``: the CI fault-smoke
    serial/parallel determinism diff is the crash scenarios' primary
    regression gate.
    """
    return [
        ("crash_baseline", None),
        ("node_crash", FaultSchedule([
            NodeCrash(node=CRASH_NODE, start=CRASH_AT_US)])),
        ("node_crash_restart", FaultSchedule([
            NodeCrash(node=CRASH_NODE, start=CRASH_AT_US),
            NodeRestart(node=CRASH_NODE, start=RESTART_AT_US)])),
    ]


def crash_point(nbytes: int, nmsgs: int,
                schedule: Optional[FaultSchedule],
                seed: int = CHAOS_SEED) -> dict:
    """One fail-stop measurement: a 3-node put ring with per-message
    gfences, run under ``on_peer_failure="continue"``.

    Rank 0 is the measured survivor: its puts target rank 1 (also a
    survivor), but every gfence entangles it with rank 2 -- the node
    the schedule kills -- so the crash shows up as a goodput dip that
    lasts exactly until the failure detector convicts the dead peer
    and the barrier degrades to the survivor set.
    """
    records: dict = {}
    payload = bytes(i % 251 for i in range(nbytes))
    # Restart scenarios: survivors linger past the restart long enough
    # for two heartbeat rounds, so absolution (breaker close) is
    # observable regardless of how fast the put loop finishes.
    linger_until = None
    if schedule is not None:
        from ..machine.config import SP_1998
        restarts = [c.start for c in schedule.clauses
                    if isinstance(c, NodeRestart)]
        if restarts:
            linger_until = (max(restarts)
                            + 2 * SP_1998.heartbeat_period + 100.0)

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        dst = (task.rank + 1) % task.size
        src = mem.malloc(nbytes)
        mem.write(src, payload)
        cmpl = lapi.counter()
        sent = 0
        refused = 0
        t0 = task.now()
        for _ in range(nmsgs):
            try:
                if dst not in lapi.ctx.dead_peers:
                    if dst == CRASH_NODE:
                        # Plain put: a completion counter at a peer
                        # that may die mid-flight would never fire;
                        # the closing gfence still bounds delivery.
                        yield from lapi.put(dst, nbytes, buf, src)
                    else:
                        yield from lapi.put(dst, nbytes, buf, src,
                                            cmpl_cntr=cmpl)
                        yield from lapi.waitcntr(cmpl, 1)
                    sent += 1
            except PeerUnreachableError:
                # Conviction landed between the dead-peer check and
                # the send: the circuit breaker refused it fast.
                refused += 1
            yield from lapi.gfence()
        if task.rank == 0:
            records["elapsed"] = task.now() - t0
        if linger_until is not None and task.now() < linger_until:
            yield from task.thread.sleep(linger_until - task.now())
        if task.rank == 0:
            tr = lapi.transport
            records["retransmissions"] = tr.retransmissions
            records["karn_skips"] = tr.karn_skips
            records["rto"] = tr.peer_rto(1)
            records["sends_refused"] = refused
            records["completed_in_error"] = tr.completed_in_error
            records["breaker"] = {
                "opens": tr.breaker_opens,
                "closes": tr.breaker_closes,
                "suppressed": tr.breaker_suppressed,
            }
        if task.rank == 1:
            records["intact"] = mem.read(buf, nbytes) == payload
        return sent

    tcfg = TelemetryConfig(window_us=CHAOS_WINDOW_US)
    armed = armed_telemetry()
    if armed is not None and armed.slo:
        tcfg = dataclasses.replace(tcfg, slo=armed.slo)
    cluster = fresh_cluster(CRASH_NNODES, seed=seed, faults=schedule,
                            telemetry=tcfg)
    results = cluster.run_job(main, stacks=("lapi",),
                              interrupt_mode=False,
                              until=2_000_000.0,
                              on_peer_failure="continue")
    records["sent_per_rank"] = [r if isinstance(r, int) else None
                                for r in results]
    faults = cluster.faults
    records["fault_drops"] = (
        0 if faults is None
        else faults.ge_drops + faults.outage_drops + faults.ack_drops)
    records["crc_drops"] = 0 if faults is None else faults.crc_drops
    records["crash_dropped"] = sum(
        node.adapter.rx_crash_dropped + node.adapter.tx_crash_dropped
        for node in cluster.nodes)
    records["threads_killed"] = (0 if faults is None
                                 else faults.threads_killed)
    records["virtual_us"] = round(cluster.sim.now, 6)
    timeline = cluster.telemetry.timeline
    timeline.finalize()
    per_window: dict[int, int] = {}
    for rank in range(CRASH_NNODES):
        for w, delta in timeline.counter_windows(
                "telemetry.transport", "rx_payload_bytes", node=rank):
            per_window[w] = per_window.get(w, 0) + delta
    records["window_us"] = CHAOS_WINDOW_US
    records["goodput_windows"] = [[w, per_window[w]]
                                  for w in sorted(per_window)]
    # Crash/recovery instants.  ``detection_us`` keeps the chaos-table
    # meaning (first fault engaged = the crash itself); conviction is
    # when the heartbeat detector *observed* it, and their difference
    # is the detection latency the table reports.
    first = None if faults is None else faults.first_fault_us
    records["detection_us"] = (None if first is None
                               else round(first, 3))
    records["crash_events"] = (
        [] if faults is None
        else [[round(t, 3), node, what]
              for t, node, what in faults.crash_events])
    res = cluster.resilience
    if res is None:
        records["convictions"] = []
        records["recoveries"] = []
        records["conviction_us"] = None
        records["detection_latency_us"] = None
    else:
        records["convictions"] = [[round(t, 3), obs, peer]
                                  for t, obs, peer in res.convictions]
        records["recoveries"] = [[round(t, 3), obs, peer]
                                 for t, obs, peer in res.recoveries]
        first_conv = (round(res.convictions[0][0], 3)
                      if res.convictions else None)
        records["conviction_us"] = first_conv
        records["detection_latency_us"] = (
            None if first_conv is None or first is None
            else round(first_conv - first, 3))
    # Black-box dumps (conviction/crash triggers): the bench's crash
    # artifact, exported via --faults-out for CI to archive.  Only the
    # crash-forensic reasons are kept: globally-armed telemetry (e.g.
    # --slo) may trigger its own dumps, and --faults-out must stay a
    # pure function of the job args.
    # (their global dump "seq" is dropped for the same reason: an
    # SLO-triggered dump in between would renumber ours).
    flight = cluster.sim.flight
    records["flight"] = [] if flight is None else [
        {k: v for k, v in d.items() if k != "seq"}
        for d in flight.dump_dicts()
        if d.get("reason") in ("fault-engaged", "peer-convicted",
                               "peer-unreachable")]
    return records


def chaos_jobs(quick: bool = False) -> list[JobSpec]:
    """The chaos sweep as declarative job specs (one per scenario).

    Fail-stop crash scenarios ride in the same sweep: they are
    independent clusters, so the engine parallelizes them like any
    other scenario and the ``--faults-out`` determinism contract
    covers them too.
    """
    nmsgs = CHAOS_MSGS_QUICK if quick else CHAOS_MSGS
    jobs = [JobSpec(chaos_point, (CHAOS_BYTES, nmsgs, schedule,
                                  CHAOS_SEED),
                    key=("chaos", name))
            for name, schedule in chaos_scenarios(quick)]
    jobs.extend(JobSpec(crash_point, (CHAOS_BYTES, nmsgs, schedule,
                                      CHAOS_SEED),
                        key=("chaos", name))
                for name, schedule in crash_scenarios(quick))
    return jobs


def submit_chaos(quick: bool = False) -> Deferred:
    """Queue the chaos sweep; ``finish()`` builds the table."""
    return Deferred(submit(chaos_jobs(quick)),
                    lambda values: _chaos(values, quick))


def run_chaos(quick: bool = False) -> ExperimentResult:
    """Run the chaos sweep and shape-check the degradation curves."""
    return submit_chaos(quick).finish()


def degradation_pct(goodput: float, base_goodput: float) -> float:
    """Goodput degradation vs baseline, in percent, rounded to 0.1.

    Clamped at zero: float dust can put a scenario's goodput a hair
    *above* the baseline's, and ``round(-0.04, 1)`` renders as the
    nonsensical ``-0.0`` -- a healthy scenario reads ``0.0``.
    """
    raw = 100.0 * (1.0 - goodput / base_goodput)
    return round(raw, 1) if raw > 0.0 else 0.0


def _median_window_goodput(rec: dict) -> float:
    """Median per-window delivered bytes of one scenario's curve."""
    deltas = sorted(d for _, d in rec["goodput_windows"] if d > 0)
    if not deltas:
        return 0.0
    mid = len(deltas) // 2
    if len(deltas) % 2:
        return float(deltas[mid])
    return (deltas[mid - 1] + deltas[mid]) / 2.0


def _recovered_us(rec: dict, threshold: float) -> Optional[float]:
    """Virtual time the scenario's goodput recovered, or None.

    A window between the curve's first and last *active* windows is
    impaired when it delivers less than ``threshold`` bytes (absent
    windows delivered nothing -- exactly what an outage looks like).
    Recovery is the end of the last impaired window: from then on the
    curve holds baseline-grade goodput through the end of the run.
    None when no window was impaired (nothing to recover from).
    """
    per_window = {w: d for w, d in rec["goodput_windows"]}
    active = [w for w, d in per_window.items() if d > 0]
    if not active or threshold <= 0.0:
        return None
    impaired = [w for w in range(min(active), max(active) + 1)
                if per_window.get(w, 0) < threshold]
    if not impaired:
        return None
    return round((max(impaired) + 1) * rec["window_us"], 3)


def _chaos(values: list, quick: bool) -> ExperimentResult:
    names = [name for name, _ in chaos_scenarios(quick)]
    crash_names = [name for name, _ in crash_scenarios(quick)]
    nmsgs = CHAOS_MSGS_QUICK if quick else CHAOS_MSGS
    points = dict(zip(names + crash_names, values))

    base = points["baseline"]
    base_goodput = bandwidth_mbs(CHAOS_BYTES * nmsgs, base["elapsed"])
    #: Impairment threshold for the recovery curves: half the
    #: baseline's median per-window delivered bytes.
    threshold = IMPAIRED_FRACTION * _median_window_goodput(base)
    rows = []
    for name in names:
        rec = points[name]
        goodput = bandwidth_mbs(CHAOS_BYTES * nmsgs, rec["elapsed"])
        # Whole-run virtual time, not just the put loop: background
        # retransmissions drain after the sender's last completion.
        recovery = rec["virtual_us"] - base["virtual_us"]
        rec["recovered_us"] = (None if name == "baseline"
                               else _recovered_us(rec, threshold))
        detect = rec["detection_us"]
        recovered = rec["recovered_us"]
        rows.append([
            name, round(goodput, 2),
            degradation_pct(goodput, base_goodput),
            round(recovery, 1),
            "-" if detect is None else round(detect, 1),
            "-" if recovered is None else round(recovered, 1),
            rec["retransmissions"],
            rec["fault_drops"] + rec["crc_drops"],
            "yes" if rec["intact"] else "NO",
        ])

    # -- fail-stop crash rows (3-node ring; degradation and recovery
    # are measured against the crash-free 3-node baseline) -----------
    crash_base = points["crash_baseline"]
    crash_base_goodput = bandwidth_mbs(CHAOS_BYTES * nmsgs,
                                       crash_base["elapsed"])
    crash_threshold = (IMPAIRED_FRACTION
                       * _median_window_goodput(crash_base))
    for name in crash_names:
        rec = points[name]
        goodput = bandwidth_mbs(CHAOS_BYTES * nmsgs, rec["elapsed"])
        recovery = rec["virtual_us"] - crash_base["virtual_us"]
        rec["recovered_us"] = (None if name == "crash_baseline"
                               else _recovered_us(rec, crash_threshold))
        detect = rec["conviction_us"]
        recovered = rec["recovered_us"]
        rows.append([
            name, round(goodput, 2),
            degradation_pct(goodput, crash_base_goodput),
            round(recovery, 1),
            "-" if detect is None else round(detect, 1),
            "-" if recovered is None else round(recovered, 1),
            rec["retransmissions"],
            rec["crash_dropped"],
            "yes" if rec["intact"] else "NO",
        ])

    result = ExperimentResult(
        experiment="chaos",
        title="Chaos bench: goodput degradation and recovery under"
              " injected faults",
        headers=["scenario", "goodput MB/s", "degraded %",
                 "recovery us", "detect us", "recovered us",
                 "retx", "drops", "intact"],
        rows=rows)
    result.notes.append(
        f"workload: {nmsgs} x {CHAOS_BYTES}B LAPI puts (completion-"
        f"waited), seed {CHAOS_SEED:#x}; adaptive RTO auto-enabled by"
        " the installed schedule; deterministic across --jobs N")
    result.notes.append(
        "crash_* rows: 3-node put ring under on_peer_failure="
        "\"continue\"; node 2 fail-stops at"
        f" {CRASH_AT_US:.0f}us; 'detect us' is the heartbeat"
        " conviction instant, 'drops' the packets discarded by the"
        " dead adapter; degradation is vs crash_baseline; the restart"
        " scenario deliberately lingers past the restart instant to"
        " observe absolution, which inflates its 'recovery us'")

    result.check("baseline runs fault-free",
                 base["retransmissions"] == 0
                 and base["fault_drops"] == 0)
    result.check("every scenario delivers intact data",
                 all(points[n]["intact"] for n in names))
    result.check("every fault scenario injected faults and recovered",
                 all(points[n]["fault_drops"] + points[n]["crc_drops"]
                     + points[n]["retransmissions"] > 0
                     or points[n]["virtual_us"] > base["virtual_us"]
                     for n in names if n != "baseline"))
    lossy = [n for n in ("loss_1pct", "loss_5pct", "loss_10pct")
             if n in points]
    if len(lossy) > 1:
        degr = [points[n]["elapsed"] for n in lossy]
        result.check("loss degradation grows with the loss rate",
                     all(a <= b for a, b in zip(degr, degr[1:])),
                     " <= ".join(f"{d:.0f}us" for d in degr))
    # The adaptive estimator should have learned an RTO far below the
    # fixed 2000us retransmission timeout in any scenario that carried
    # acks (i.e. all of them).
    adapted = [n for n in names if n != "baseline"]
    result.check("adaptive RTO learns an RTT-scaled timeout"
                 " (below the fixed 2000us)",
                 all(points[n]["rto"] < 2000.0 for n in adapted),
                 f"max {max(points[n]['rto'] for n in adapted):.0f}us")
    ack = points.get("ack_loss")
    if ack is not None:
        result.check("ack loss exercises Karn's rule"
                     " (ambiguous RTT samples skipped)",
                     ack["karn_skips"] > 0, str(ack["karn_skips"]))
    result.check("every scenario emits a time-resolved goodput curve",
                 all(points[n]["goodput_windows"] for n in names))
    # The recovery curves must carry virtual timestamps: every fault
    # scenario that dropped/corrupted traffic records when the first
    # fault engaged, and the bursty-loss and link-outage scenarios --
    # whose curves visibly dip below baseline goodput -- record when
    # per-window goodput came back, after detection.
    engaged = [n for n in names if n != "baseline"
               and points[n]["fault_drops"] + points[n]["crc_drops"] > 0]
    result.check("engaged fault scenarios carry a detection timestamp",
                 all(points[n]["detection_us"] is not None
                     for n in engaged))
    curved = [n for n in ("burst", "outage_short", "outage_long")
              if n in points]
    result.check("burst/outage curves resolve recovery after detection",
                 all(points[n]["recovered_us"] is not None
                     and points[n]["detection_us"] is not None
                     and points[n]["recovered_us"]
                     > points[n]["detection_us"]
                     for n in curved),
                 ", ".join(
                     f"{n}: {points[n]['detection_us']}"
                     f"->{points[n]['recovered_us']}us"
                     for n in curved))
    # -- fail-stop crash checks ---------------------------------------
    crash = points["node_crash"]
    restart = points["node_crash_restart"]
    result.check("crash baseline is crash-free and intact",
                 crash_base["intact"]
                 and not crash_base["convictions"]
                 and crash_base["crash_dropped"] == 0)
    result.check("survivors deliver intact data through a crash",
                 crash["intact"] and restart["intact"])
    result.check("every survivor convicts the crashed node",
                 sorted({obs for _, obs, peer
                         in crash["convictions"]
                         if peer == CRASH_NODE})
                 == [n for n in range(CRASH_NNODES)
                     if n != CRASH_NODE],
                 str(crash["convictions"]))
    # Worst-case detection: a peer last heard just after a tick takes
    # conviction_threshold to go suspect plus up to one heartbeat
    # period until the next tick looks.
    from ..machine.config import SP_1998
    bound = SP_1998.conviction_threshold + SP_1998.heartbeat_period
    result.check("detection latency within one detection period"
                 f" (<= {bound:.0f}us)",
                 crash["detection_latency_us"] is not None
                 and 0.0 < crash["detection_latency_us"] <= bound,
                 f"{crash['detection_latency_us']}us")
    result.check("crash dips survivor goodput, then recovers",
                 crash["recovered_us"] is not None
                 and crash["conviction_us"] is not None
                 and crash["recovered_us"] > CRASH_AT_US,
                 f"dip {CRASH_AT_US:.0f}"
                 f"->{crash['recovered_us']}us")
    result.check("restart absolves the convicted peer",
                 any(peer == CRASH_NODE
                     for _, _, peer in restart["recoveries"])
                 and all(t > RESTART_AT_US
                         for t, _, _ in restart["recoveries"]),
                 str(restart["recoveries"]))
    result.check("conviction captures a flight-recorder dump",
                 any(d.get("reason") == "peer-convicted"
                     for d in crash["flight"])
                 and any(d.get("reason") == "fault-engaged"
                         for d in crash["flight"]))
    #: Raw per-scenario records (including exact virtual times), used
    #: by ``--faults-out`` so CI can diff determinism byte-for-byte.
    result.payload = {name: points[name] for name in names + crash_names}
    return result
