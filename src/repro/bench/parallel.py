"""Parallel sweep engine: shard independent simulations across cores.

Every experiment in the evaluation is a sweep of *independent*
fresh-cluster simulations (one cluster per measured point), so the
natural horizontal speedup is a worker pool: turn each inline sweep
loop into a list of declarative :class:`JobSpec` records, execute them
across ``N`` worker processes, and merge the results back **by job
key** so the output is byte-identical to a serial run.

Determinism contract
--------------------
* A job is a pure function of its spec: a module-level callable plus
  pickled arguments (configs are frozen dataclasses).  Nothing a job
  computes depends on which worker ran it or when.
* Results and observability captures are merged in **spec submission
  order, keyed by the job key**, never in completion order.  Tables,
  ``--metrics`` blocks, trace files, and virtual-time sums are
  therefore byte-identical between ``--jobs 1`` and ``--jobs N``.
* Per-job seeds are part of the spec, derived up front with a
  SplitMix64-style spread (:func:`spread_seed`) where an experiment
  wants distinct shards -- there is no shared RNG between jobs, so
  sharding cannot perturb any stream.

The serial path (``jobs=1``, the default) runs specs inline, in
order, through exactly the code path a direct call would take; tier-1
behaviour is unchanged unless ``--jobs`` is raised.
"""

from __future__ import annotations

import argparse
import multiprocessing
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from . import runner

__all__ = ["JobSpec", "SweepExecutor", "sweep", "get_executor",
           "set_executor", "configure", "shutdown", "spread_seed",
           "parse_jobs", "auto_jobs", "host_record"]

_U64 = (1 << 64) - 1

#: Set in worker processes so nested sweeps degrade to serial instead
#: of forking pools from pool workers.
_IN_WORKER = False


def spread_seed(base: int, index: int) -> int:
    """SplitMix64 spread: a distinct, stable seed per job index.

    Jobs of one sweep share a ``base`` (the experiment seed) and get
    well-separated 64-bit seeds, so shards never couple through a
    shared RNG stream and the derivation is reproducible from the spec
    alone (no call-order dependence).
    """
    z = (base + (index + 1) * 0x9E3779B97F4A7C15) & _U64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64
    return (z ^ (z >> 31)) & _U64


@dataclass(frozen=True)
class JobSpec:
    """One independent simulation job of a sweep.

    ``fn`` must be a module-level callable (worker processes import it
    by reference) and every argument picklable.  ``key`` is the job's
    stable identity -- experiment name, series, message size, ... --
    used for the deterministic merge; it must be unique within a
    sweep.  Specs with an empty key get ``(module, qualname, index)``
    derived at submission.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    key: tuple = ()

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _resolved_keys(specs: Sequence[JobSpec]) -> list[tuple]:
    keys = []
    for index, spec in enumerate(specs):
        keys.append(tuple(spec.key) if spec.key
                    else (spec.fn.__module__, spec.fn.__qualname__,
                          index))
    seen: set[tuple] = set()
    for key in keys:
        if key in seen:
            raise ValueError(f"duplicate job key {key!r}: the"
                             " deterministic merge needs unique keys")
        seen.add(key)
    return keys


# ----------------------------------------------------------------------
# worker-side execution
# ----------------------------------------------------------------------

def _worker_init(obs_kwargs: dict) -> None:
    """Arm each worker's private observability switchboard."""
    global _IN_WORKER
    _IN_WORKER = True
    runner.configure_observability(**obs_kwargs)


def _peak_rss_mb() -> float:
    """This process's resident-memory high watermark, in MB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix host
        return 0.0
    # ru_maxrss is KiB on Linux (kilobytes per getrusage(2)).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e3


def _execute(payload: tuple[int, JobSpec]) -> tuple:
    """Run one spec in a worker; ship the result and obs captures.

    Both wall and CPU time are measured: CPU time is the honest
    serial-equivalent cost (a worker's wall clock keeps ticking while
    it is descheduled on an oversubscribed host), wall time shows pool
    occupancy.  The worker's peak RSS rides along so the pool report
    can show the memory cost of sharding (N workers hold N cluster
    heaps at once -- the number the scale-smoke CI job watches).
    """
    index, spec = payload
    start = time.perf_counter()
    cpu_start = time.process_time()
    value = spec.run()
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - start
    captures = [runner.capture_cluster(c)
                for c in runner.captured_clusters()]
    events = sum(c.events for c in captures)
    return (index, os.getpid(), wall, cpu, events, _peak_rss_mb(),
            value, captures)


# ----------------------------------------------------------------------
# pool statistics (fed into BENCH_PERF.json by the CLI)
# ----------------------------------------------------------------------

@dataclass
class _WorkerStats:
    jobs: int = 0
    busy_s: float = 0.0
    cpu_s: float = 0.0
    events: int = 0
    peak_rss_mb: float = 0.0


@dataclass
class PoolStats:
    """Accumulated across every parallel sweep of one executor."""

    jobs: int
    sweeps: int = 0
    jobs_run: int = 0
    serial_equivalent_s: float = 0.0
    wall_s: float = 0.0
    workers: dict[int, _WorkerStats] = field(default_factory=dict)

    def note_job(self, pid: int, wall: float, cpu: float,
                 events: int, peak_rss_mb: float = 0.0) -> None:
        w = self.workers.setdefault(pid, _WorkerStats())
        w.jobs += 1
        w.busy_s += wall
        w.cpu_s += cpu
        w.events += events
        if peak_rss_mb > w.peak_rss_mb:
            w.peak_rss_mb = peak_rss_mb
        self.jobs_run += 1
        # CPU time, not worker wall: on an oversubscribed host a
        # worker's wall clock ticks while it is descheduled, which
        # would overstate what a serial run would have cost.
        self.serial_equivalent_s += cpu

    def note_sweep(self, elapsed: float) -> None:
        self.sweeps += 1
        self.wall_s += elapsed

    def record(self) -> dict:
        """JSON-ready summary: per-worker throughput, pool efficiency,
        and the aggregate speedup over a serial execution of the same
        jobs (sum of per-job CPU seconds / actual pool wall)."""
        workers = {}
        for i, pid in enumerate(sorted(self.workers)):
            w = self.workers[pid]
            workers[f"w{i}"] = {
                "jobs": w.jobs,
                "busy_s": round(w.busy_s, 3),
                "cpu_s": round(w.cpu_s, 3),
                "events": w.events,
                "events_per_sec": (round(w.events / w.cpu_s)
                                   if w.cpu_s > 0 else 0),
                "peak_rss_mb": round(w.peak_rss_mb, 1),
            }
        speedup = (self.serial_equivalent_s / self.wall_s
                   if self.wall_s > 0 else 0.0)
        peak_rss = max((w.peak_rss_mb for w in self.workers.values()),
                       default=0.0)
        return {
            "jobs": self.jobs,
            "sweeps": self.sweeps,
            "jobs_run": self.jobs_run,
            "serial_equivalent_s": round(self.serial_equivalent_s, 3),
            "wall_s": round(self.wall_s, 3),
            "speedup": round(speedup, 2),
            "efficiency": (round(speedup / self.jobs, 3)
                           if self.jobs > 0 else 0.0),
            "peak_worker_rss_mb": round(peak_rss, 1),
            "workers": workers,
        }


# ----------------------------------------------------------------------
# the executor
# ----------------------------------------------------------------------

class SweepExecutor:
    """Runs job specs serially (``jobs=1``) or on a process pool.

    The pool is created lazily on the first parallel sweep (after the
    CLI has armed observability, so workers inherit the flags) and
    reused across sweeps so per-worker statistics aggregate over the
    whole run.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self.stats = PoolStats(jobs=self.jobs)
        self._pool = None

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            self._pool = ctx.Pool(
                processes=self.jobs, initializer=_worker_init,
                initargs=(runner.observability_kwargs(),))
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    # -- execution ------------------------------------------------------
    def map(self, specs: Sequence[JobSpec]) -> list[Any]:
        """Run every spec; results in spec order, merged by job key."""
        specs = list(specs)
        keys = _resolved_keys(specs)
        if not specs:
            return []
        if self.jobs <= 1 or len(specs) == 1 or _IN_WORKER:
            return [spec.run() for spec in specs]

        pool = self._ensure_pool()
        start = time.perf_counter()
        values: dict[tuple, Any] = {}
        captures: dict[tuple, list] = {}
        for index, pid, wall, cpu, events, rss, value, caps in \
                pool.imap_unordered(_execute, list(enumerate(specs)),
                                    chunksize=1):
            key = keys[index]
            values[key] = value
            captures[key] = caps
            self.stats.note_job(pid, wall, cpu, events, rss)
        self.stats.note_sweep(time.perf_counter() - start)
        # Deterministic merge: reassemble results *and* observability
        # captures in spec order by key, never completion order.
        for key in keys:
            runner.record_captures(captures[key])
        return [values[key] for key in keys]


#: Process-wide executor consulted by the experiment modules.
_EXECUTOR = SweepExecutor(jobs=1)


def get_executor() -> SweepExecutor:
    return _EXECUTOR


def set_executor(executor: SweepExecutor) -> SweepExecutor:
    """Install ``executor`` globally, shutting down the previous one."""
    global _EXECUTOR
    _EXECUTOR.shutdown()
    _EXECUTOR = executor
    return executor


def configure(jobs: int = 1) -> SweepExecutor:
    """Install a fresh executor with ``jobs`` workers (1 == serial)."""
    return set_executor(SweepExecutor(jobs=jobs))


def shutdown() -> None:
    """Tear down the global executor's pool (stats are retained)."""
    _EXECUTOR.shutdown()


def sweep(specs: Sequence[JobSpec]) -> list[Any]:
    """Run ``specs`` on the installed executor; results in spec order."""
    return _EXECUTOR.map(specs)


# ----------------------------------------------------------------------
# CLI / report helpers
# ----------------------------------------------------------------------

def auto_jobs() -> int:
    """Worker count for ``--jobs auto``: the usable core count."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def parse_jobs(value: str) -> int:
    """argparse type for ``--jobs``: a positive int or ``auto``."""
    if value == "auto":
        return auto_jobs()
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def host_record(jobs: int) -> dict:
    """Host metadata stamped into ``BENCH_PERF.json`` so the perf
    trajectory stays comparable across machines and job counts."""
    from ..sim.kernel import _SCHEDULER_ENV
    return {
        "cpu_count": os.cpu_count() or 1,
        "cpus_usable": auto_jobs(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "jobs": jobs,
        # The pending-queue backend every cluster of this run used
        # (perf numbers are not comparable across backends).
        "scheduler": os.environ.get(_SCHEDULER_ENV, "calendar"),
    }
