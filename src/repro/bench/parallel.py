"""Work-stealing sweep scheduler: shard independent simulations.

Every experiment in the evaluation is a sweep of *independent*
fresh-cluster simulations (one cluster per measured point), so the
natural horizontal speedup is a worker pool: each inline sweep loop is
a list of declarative :class:`JobSpec` records, executed across ``N``
worker processes, and merged back **by job key** so the output is
byte-identical to a serial run.

The scheduler is futures-based: :func:`submit` enqueues a sweep and
returns a :class:`SweepFuture` immediately, so *independent sweeps
pipeline* -- while one experiment's jobs are still running, the next
experiment's jobs are already queued behind them on the same warm
workers.  There is no barrier between sweeps; the only blocking point
is :meth:`SweepFuture.result`, and only for the jobs that particular
sweep owns.  :func:`sweep` (submit + result) keeps the old blocking
call for code that wants it.

Scheduling policy
-----------------
* **Cost model.**  Every job's wall/CPU seconds are recorded under its
  stable job key into a :class:`CostModel` (exponentially smoothed
  across runs, optionally persisted to ``.repro/job_costs.json``), so
  the second bench invocation knows how long each point takes.
* **LPT issue order.**  Jobs are dispatched longest-estimated-first
  (classic longest-processing-time list scheduling), which keeps the
  multi-second 2 MB points from landing last and stretching the tail.
  Jobs with no estimate yet are assumed moderately long
  (``DEFAULT_EST_S``).  ``REPRO_SWEEP_ORDER=fifo`` restores
  submission order.
* **Chunking.**  Sub-millisecond jobs (by estimate) are packed into
  multi-job chunks so one pickle/IPC round trip amortizes across many
  tiny simulations.
* **Work stealing.**  Chunks are pre-assigned to per-worker queues by
  greedy LPT; a worker that drains its own queue steals the smallest
  queued chunk from the most-loaded worker.  Steal counts and
  idle-time per worker are surfaced in the ``parallel`` stats block.

Determinism contract
--------------------
* A job is a pure function of its spec: a module-level callable plus
  pickled arguments (configs are frozen dataclasses).  Nothing a job
  computes depends on which worker ran it, when it ran, or what the
  cost cache contained.
* Results and observability captures are merged in **spec submission
  order, keyed by the job key**, never in completion order.  Tables,
  ``--metrics`` blocks, trace files, span streams, and virtual-time
  sums are therefore byte-identical between ``--jobs 1`` and
  ``--jobs N``, FIFO and LPT order, cold and warm cost cache.
* Per-job seeds are part of the spec, derived up front with a
  SplitMix64-style spread (:func:`spread_seed`) where an experiment
  wants distinct shards -- there is no shared RNG between jobs, so
  sharding cannot perturb any stream.

The serial path (``jobs=1``, the default) runs specs inline, in
order, through exactly the code path a direct call would take; tier-1
behaviour is unchanged unless ``--jobs`` is raised.
"""

from __future__ import annotations

import argparse
import atexit
import json
import multiprocessing
import os
import pickle
import platform
import queue as queue_mod
import sys
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from . import runner

__all__ = ["JobSpec", "SweepScheduler", "SweepExecutor", "SweepFuture",
           "Deferred", "CostModel", "sweep", "submit", "get_executor",
           "set_executor", "configure", "shutdown", "spread_seed",
           "parse_jobs", "auto_jobs", "host_record",
           "DEFAULT_COST_PATH"]

_U64 = (1 << 64) - 1

#: Set in worker processes so nested sweeps degrade to serial instead
#: of forking pools from pool workers.
_IN_WORKER = False

#: Default on-disk location of the persistent job-cost cache (used by
#: the CLI; library callers get an in-memory model unless they pass a
#: path).  ``REPRO_COST_CACHE`` overrides it.
DEFAULT_COST_PATH = os.path.join(".repro", "job_costs.json")

#: Jobs estimated below this many seconds are packed into chunks.
TINY_JOB_S = 0.001
#: Target summed estimate per chunk of tiny jobs.
CHUNK_TARGET_S = 0.005
#: Hard cap on jobs per chunk (bounds the cost of losing a worker).
CHUNK_MAX_JOBS = 64
#: Chunks kept in flight per worker: 2 means a worker always has the
#: next chunk locally queued while the parent is busy elsewhere, so
#: pipelined submission never starves the pool.
PREFETCH = 2
#: Assumed cost (seconds) of a job with no cost-cache estimate, used
#: only for load-balance arithmetic (never for correctness).
DEFAULT_EST_S = 0.05


def spread_seed(base: int, index: int) -> int:
    """SplitMix64 spread: a distinct, stable seed per job index.

    Jobs of one sweep share a ``base`` (the experiment seed) and get
    well-separated 64-bit seeds, so shards never couple through a
    shared RNG stream and the derivation is reproducible from the spec
    alone (no call-order dependence).
    """
    z = (base + (index + 1) * 0x9E3779B97F4A7C15) & _U64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64
    return (z ^ (z >> 31)) & _U64


@dataclass(frozen=True)
class JobSpec:
    """One independent simulation job of a sweep.

    ``fn`` must be a module-level callable (worker processes import it
    by reference) and every argument picklable.  ``key`` is the job's
    stable identity -- experiment name, series, message size, ... --
    used for the deterministic merge *and* as the cost-model key; it
    must be unique within a sweep.  Specs with an empty key get
    ``(module, qualname, index)`` derived at submission.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    key: tuple = ()

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _resolved_keys(specs: Sequence[JobSpec]) -> list[tuple]:
    keys = []
    for index, spec in enumerate(specs):
        keys.append(tuple(spec.key) if spec.key
                    else (spec.fn.__module__, spec.fn.__qualname__,
                          index))
    seen: set[tuple] = set()
    for key in keys:
        if key in seen:
            raise ValueError(f"duplicate job key {key!r}: the"
                             " deterministic merge needs unique keys")
        seen.add(key)
    return keys


def _cost_key(key: tuple) -> str:
    """Stable string form of a resolved job key (cost-model index)."""
    return "/".join(str(part) for part in key)


# ----------------------------------------------------------------------
# persistent per-job-key cost model
# ----------------------------------------------------------------------

class CostModel:
    """Exponentially-smoothed wall/CPU seconds per job key.

    Persisted as JSON (``path``) across bench invocations so the
    second run schedules with real per-point costs; entirely advisory
    -- estimates drive issue order and chunking, never results.  With
    ``path=None`` the model lives in memory only (the library/test
    default; the CLI passes a real path).
    """

    SCHEMA = 1

    def __init__(self, path: Optional[str] = None, *,
                 alpha: float = 0.3, max_entries: int = 4096) -> None:
        self.path = path
        self.alpha = alpha
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._stamp = 0
        self._dirty = False
        self._entries: dict[str, dict] = {}
        if path:
            self._load()

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
            if data.get("schema") != self.SCHEMA:
                return
            entries = data.get("entries", {})
            for key, rec in entries.items():
                self._entries[str(key)] = {
                    "wall_s": float(rec["wall_s"]),
                    "cpu_s": float(rec["cpu_s"]),
                    "runs": int(rec.get("runs", 1)),
                    "stamp": int(rec.get("stamp", 0)),
                }
            self._stamp = max((r["stamp"] for r in
                               self._entries.values()), default=0)
        except (OSError, ValueError, KeyError, TypeError):
            # A missing or corrupt cache is never an error: start cold.
            self._entries = {}

    def save(self) -> None:
        """Atomically persist the model (no-op for in-memory models)."""
        if not self.path or not self._dirty:
            return
        payload = {"schema": self.SCHEMA, "entries": self._entries}
        directory = os.path.dirname(self.path)
        try:
            if directory:
                os.makedirs(directory, exist_ok=True)
            tmp = f"{self.path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path)
            self._dirty = False
        except OSError:  # pragma: no cover - read-only checkout etc.
            pass

    def estimate(self, key: tuple) -> Optional[float]:
        """Estimated CPU seconds for ``key``; None when unseen."""
        rec = self._entries.get(_cost_key(key))
        if rec is None:
            self.misses += 1
            return None
        self.hits += 1
        return rec["cpu_s"]

    def observe(self, key: tuple, wall_s: float, cpu_s: float) -> None:
        """Fold one measured run into the smoothed per-key costs."""
        ck = _cost_key(key)
        self._stamp += 1
        rec = self._entries.get(ck)
        if rec is None:
            self._entries[ck] = {"wall_s": wall_s, "cpu_s": cpu_s,
                                 "runs": 1, "stamp": self._stamp}
        else:
            a = self.alpha
            rec["wall_s"] = (1 - a) * rec["wall_s"] + a * wall_s
            rec["cpu_s"] = (1 - a) * rec["cpu_s"] + a * cpu_s
            rec["runs"] += 1
            rec["stamp"] = self._stamp
        self._dirty = True
        if len(self._entries) > self.max_entries:
            self._evict()

    def _evict(self) -> None:
        """Drop the least-recently-updated entries back to the cap."""
        by_age = sorted(self._entries.items(),
                        key=lambda item: item[1]["stamp"])
        for key, _ in by_age[:len(self._entries) - self.max_entries]:
            del self._entries[key]

    def __len__(self) -> int:
        return len(self._entries)

    def record(self) -> dict:
        """JSON-ready summary for the ``parallel`` stats block."""
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "path": self.path or "(memory)"}


# ----------------------------------------------------------------------
# worker-side execution
# ----------------------------------------------------------------------

def _worker_init(obs_kwargs: dict) -> None:
    """Arm each worker's private observability switchboard."""
    global _IN_WORKER
    _IN_WORKER = True
    runner.configure_observability(**obs_kwargs)


def _peak_rss_mb() -> float:
    """This process's resident-memory high watermark, in MB.

    ``ru_maxrss`` units are platform-defined: kilobytes on Linux (per
    getrusage(2)) but **bytes** on macOS -- normalize per platform so
    the scale bench's RSS gate is not 1024x off outside Linux.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix host
        return 0.0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return rss / 1e6
    return rss / 1e3


def _ship_exception(exc: BaseException) -> tuple:
    """A picklable representation of a worker-side job failure."""
    tb = "".join(traceback.format_exception(type(exc), exc,
                                            exc.__traceback__))
    try:
        return ("pickle", pickle.dumps(exc), tb)
    except Exception:
        return ("repr", repr(exc), tb)


def _raise_shipped(shipped: tuple) -> None:
    kind, payload, tb = shipped
    if kind == "pickle":
        exc = pickle.loads(payload)
        raise exc from RuntimeError(f"worker traceback:\n{tb}")
    raise RuntimeError(
        f"job failed in worker: {payload}\nworker traceback:\n{tb}")


def _run_one(spec: JobSpec) -> tuple:
    """Run one spec here; returns (ok, value, wall, cpu, events, caps).

    Both wall and CPU time are measured: CPU time is the honest
    serial-equivalent cost (a worker's wall clock keeps ticking while
    it is descheduled on an oversubscribed host), wall time shows pool
    occupancy.
    """
    start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        value = spec.run()
        ok = True
    except BaseException as exc:  # shipped to the parent, re-raised
        value = _ship_exception(exc)
        ok = False
    cpu = time.process_time() - cpu_start
    wall = time.perf_counter() - start
    captures = [runner.capture_cluster(c)
                for c in runner.captured_clusters()]
    events = sum(c.events for c in captures)
    return ok, value, wall, cpu, events, captures


def _worker_loop(worker_id: int, task_q, result_q,
                 obs_kwargs: dict) -> None:
    """One pool worker: pull chunks, run jobs, ship results.

    Stays alive for the whole bench invocation (warm-worker reuse);
    exits on the ``None`` sentinel.  Job failures are shipped as data
    -- the worker survives to take the next chunk, so one bad job
    never orphans or restarts the pool.
    """
    _worker_init(obs_kwargs)
    pid = os.getpid()
    last_done = time.perf_counter()
    while True:
        try:
            item = task_q.get()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        if item is None:
            break
        chunk_id, jobs = item
        idle = time.perf_counter() - last_done
        entries = []
        for job_id, spec in jobs:
            ok, value, wall, cpu, events, caps = _run_one(spec)
            entries.append((job_id, ok, value, wall, cpu, events,
                            caps))
        try:
            result_q.put(("chunk", worker_id, pid, chunk_id, idle,
                          _peak_rss_mb(), entries))
        except Exception:  # pragma: no cover - unpicklable result
            shipped = _ship_exception(
                RuntimeError("could not ship chunk result"))
            result_q.put(("chunk", worker_id, pid, chunk_id, idle,
                          _peak_rss_mb(),
                          [(job_id, False, shipped, 0.0, 0.0, 0, [])
                           for job_id, _ in jobs]))
        last_done = time.perf_counter()


# ----------------------------------------------------------------------
# pool statistics (fed into BENCH_PERF.json by the CLI)
# ----------------------------------------------------------------------

@dataclass
class _WorkerStats:
    jobs: int = 0
    chunks: int = 0
    steals: int = 0
    busy_s: float = 0.0
    cpu_s: float = 0.0
    idle_s: float = 0.0
    events: int = 0
    peak_rss_mb: float = 0.0


@dataclass
class PoolStats:
    """Accumulated across every sweep of one scheduler.

    ``wall_s`` (via :meth:`add_busy`) is the *busy-interval union*:
    seconds during which at least one job was outstanding anywhere in
    the scheduler.  With cross-sweep pipelining, per-sweep walls
    overlap, so summing them would double-count; the union is what a
    stopwatch on the whole bench run would show the pool doing.
    """

    jobs: int
    sweeps: int = 0
    jobs_run: int = 0
    chunks_run: int = 0
    serial_equivalent_s: float = 0.0
    wall_s: float = 0.0
    workers: dict[int, _WorkerStats] = field(default_factory=dict)

    def note_job(self, pid: int, wall: float, cpu: float,
                 events: int, peak_rss_mb: float = 0.0) -> None:
        w = self.workers.setdefault(pid, _WorkerStats())
        w.jobs += 1
        w.busy_s += wall
        w.cpu_s += cpu
        w.events += events
        if peak_rss_mb > w.peak_rss_mb:
            w.peak_rss_mb = peak_rss_mb
        self.jobs_run += 1
        # CPU time, not worker wall: on an oversubscribed host a
        # worker's wall clock ticks while it is descheduled, which
        # would overstate what a serial run would have cost.
        self.serial_equivalent_s += cpu

    def note_chunk(self, pid: int, idle_s: float) -> None:
        w = self.workers.setdefault(pid, _WorkerStats())
        w.chunks += 1
        w.idle_s += idle_s
        self.chunks_run += 1

    def note_steal(self, pid: int) -> None:
        self.workers.setdefault(pid, _WorkerStats()).steals += 1

    def note_sweep(self) -> None:
        self.sweeps += 1

    def add_busy(self, elapsed: float) -> None:
        self.wall_s += elapsed

    def record(self, cost_model: Optional[CostModel] = None,
               order: str = "lpt") -> dict:
        """JSON-ready summary: per-worker throughput, steal/idle
        accounting, pool efficiency, and the aggregate speedup over a
        serial execution of the same jobs (sum of per-job CPU seconds
        / busy-interval union of the pool wall)."""
        workers = {}
        for i, pid in enumerate(sorted(self.workers)):
            w = self.workers[pid]
            workers[f"w{i}"] = {
                "jobs": w.jobs,
                "chunks": w.chunks,
                "steals": w.steals,
                "busy_s": round(w.busy_s, 3),
                "idle_s": round(w.idle_s, 3),
                "cpu_s": round(w.cpu_s, 3),
                "events": w.events,
                "events_per_sec": (round(w.events / w.cpu_s)
                                   if w.cpu_s > 0 else 0),
                "peak_rss_mb": round(w.peak_rss_mb, 1),
            }
        speedup = (self.serial_equivalent_s / self.wall_s
                   if self.wall_s > 0 else 0.0)
        peak_rss = max((w.peak_rss_mb for w in self.workers.values()),
                      default=0.0)
        record = {
            "jobs": self.jobs,
            "order": order,
            "sweeps": self.sweeps,
            "jobs_run": self.jobs_run,
            "chunks_run": self.chunks_run,
            "steals": sum(w.steals for w in self.workers.values()),
            "idle_s": round(sum(w.idle_s
                                for w in self.workers.values()), 3),
            "serial_equivalent_s": round(self.serial_equivalent_s, 3),
            "wall_s": round(self.wall_s, 3),
            "speedup": round(speedup, 2),
            "efficiency": (round(speedup / self.jobs, 3)
                           if self.jobs > 0 else 0.0),
            "peak_worker_rss_mb": round(peak_rss, 1),
            "workers": workers,
        }
        if cost_model is not None:
            record["cost_model"] = cost_model.record()
        return record


# ----------------------------------------------------------------------
# futures
# ----------------------------------------------------------------------

class SweepFuture:
    """The pending results of one submitted sweep.

    ``result()`` blocks until every job of *this* sweep completed
    (other sweeps keep flowing through the pool), then returns values
    merged in spec submission order by job key and records the jobs'
    observability captures -- in that same deterministic order -- with
    the runner.  Calling ``result()`` again returns the cached list.
    """

    def __init__(self, scheduler: "SweepScheduler",
                 keys: list[tuple]) -> None:
        self._scheduler = scheduler
        self._keys = keys
        self._values: list[Any] = [None] * len(keys)
        self._captures: list[list] = [[] for _ in keys]
        self._errors: dict[int, tuple] = {}
        self._ncomplete = 0
        self._done = len(keys) == 0
        self._collected: Optional[list] = None
        self._serial = False
        self.job_wall_s = 0.0
        self.job_cpu_s = 0.0
        self.events = 0

    def __len__(self) -> int:
        return len(self._keys)

    def done(self) -> bool:
        return self._done

    def _store(self, pos: int, ok: bool, value: Any, wall: float,
               cpu: float, events: int, captures: list) -> None:
        if ok:
            self._values[pos] = value
        else:
            self._errors[pos] = value
        self._captures[pos] = captures
        self.job_wall_s += wall
        self.job_cpu_s += cpu
        self.events += events
        self._ncomplete += 1
        if self._ncomplete == len(self._keys):
            self._done = True

    def result(self) -> list[Any]:
        """Values in spec order; raises the first failed job's error."""
        if self._collected is not None:
            return self._collected
        if not self._done:
            self._scheduler._pump(wait_for=self)
        if self._errors:
            _raise_shipped(self._errors[min(self._errors)])
        if not self._serial:
            # Deterministic merge: reassemble observability captures
            # in spec order by key, never completion order.
            for caps in self._captures:
                runner.record_captures(caps)
        self._collected = list(self._values)
        return self._collected


@dataclass
class Deferred:
    """A submitted sweep plus the builder that turns its raw values
    into the finished experiment artifact.

    Experiment modules return these from their ``submit_*`` entry
    points: submission queues the jobs (pipelining them behind any
    other submitted sweep) and :meth:`finish` blocks only to assemble
    the final table.  ``future`` is None for experiments with no
    cluster jobs (``build`` then receives an empty list).
    """

    future: Optional[SweepFuture]
    build: Callable[[list], Any]

    def finish(self) -> Any:
        values = self.future.result() if self.future is not None else []
        return self.build(values)

    __call__ = finish

    @property
    def job_cpu_s(self) -> float:
        return self.future.job_cpu_s if self.future is not None else 0.0

    @property
    def job_wall_s(self) -> float:
        return self.future.job_wall_s if self.future is not None \
            else 0.0


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------

class _Chunk:
    __slots__ = ("id", "jobs", "est")

    def __init__(self, chunk_id: int, jobs: list, est: float) -> None:
        self.id = chunk_id
        self.jobs = jobs  # [(job_id, spec), ...]
        self.est = est


class _Worker:
    __slots__ = ("id", "proc", "task_q", "backlog", "inflight",
                 "inflight_est")

    def __init__(self, worker_id: int, proc, task_q) -> None:
        self.id = worker_id
        self.proc = proc
        self.task_q = task_q
        self.backlog: deque[_Chunk] = deque()  # parent-side queue
        self.inflight = 0          # chunks sent, not yet completed
        self.inflight_est = 0.0

    @property
    def load_est(self) -> float:
        return self.inflight_est + sum(c.est for c in self.backlog)


class SweepScheduler:
    """Runs job specs serially (``jobs=1``) or on a warm worker pool.

    The pool is created lazily on the first parallel submit (after the
    CLI has armed observability, so workers inherit the flags) and
    kept warm across every sweep of the bench invocation; per-worker
    statistics aggregate over the whole run.
    """

    def __init__(self, jobs: int = 1, *, order: Optional[str] = None,
                 cost_path: Optional[str] = None,
                 cost_model: Optional[CostModel] = None,
                 tiny_job_s: float = TINY_JOB_S,
                 chunk_target_s: float = CHUNK_TARGET_S) -> None:
        self.jobs = max(1, int(jobs))
        if order is None:
            order = os.environ.get("REPRO_SWEEP_ORDER", "lpt")
        if order not in ("lpt", "fifo"):
            raise ValueError(f"unknown sweep order {order!r}"
                             " (expected 'lpt' or 'fifo')")
        self.order = order
        self.costs = cost_model if cost_model is not None \
            else CostModel(cost_path)
        self.tiny_job_s = tiny_job_s
        self.chunk_target_s = chunk_target_s
        self.stats = PoolStats(jobs=self.jobs)
        self._workers: list[_Worker] = []
        self._result_q = None
        self._ctx = None
        self._next_job_id = 0
        self._next_chunk_id = 0
        #: job_id -> (future, position, key) for in-flight jobs.
        self._registry: dict[int, tuple] = {}
        self._outstanding = 0
        self._busy_since: Optional[float] = None

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._workers:
            return
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self._result_q = self._ctx.Queue()
        obs_kwargs = runner.observability_kwargs()
        for worker_id in range(self.jobs):
            task_q = self._ctx.Queue()
            proc = self._ctx.Process(
                target=_worker_loop,
                args=(worker_id, task_q, self._result_q, obs_kwargs),
                daemon=True)
            proc.start()
            self._workers.append(_Worker(worker_id, proc, task_q))

    @property
    def _pool(self):
        """Truthy while worker processes exist (back-compat probe)."""
        return self._workers or None

    def shutdown(self) -> None:
        """Stop the workers (stats and the cost model are retained).

        A clean shutdown (no outstanding jobs) sends each worker the
        stop sentinel and joins it; with jobs still outstanding (an
        experiment raised mid-run) the workers are terminated instead
        of waiting out their queues.  Either way no worker outlives
        this call -- the error path must not orphan processes.
        """
        if self._workers:
            force = self._outstanding > 0
            if not force:
                for w in self._workers:
                    try:
                        w.task_q.put(None)
                    except Exception:  # pragma: no cover
                        force = True
            for w in self._workers:
                if force:
                    w.proc.terminate()
                w.proc.join(timeout=10)
                if w.proc.is_alive():  # pragma: no cover - stuck child
                    w.proc.terminate()
                    w.proc.join(timeout=10)
            for w in self._workers:
                w.task_q.close()
            if self._result_q is not None:
                self._result_q.close()
            self._workers = []
            self._result_q = None
            if self._busy_since is not None:
                self.stats.add_busy(time.perf_counter()
                                    - self._busy_since)
                self._busy_since = None
            self._outstanding = 0
            self._registry.clear()
        self.costs.save()

    # -- submission -----------------------------------------------------
    def submit(self, specs: Sequence[JobSpec]) -> SweepFuture:
        """Queue a sweep; returns immediately with its future.

        Serial schedulers (``jobs=1``) and nested submissions inside a
        pool worker run the specs inline, eagerly, through exactly the
        code path a direct call would take.
        """
        specs = list(specs)
        keys = _resolved_keys(specs)
        future = SweepFuture(self, keys)
        if not specs:
            return future
        self.stats.note_sweep()
        if self.jobs <= 1 or _IN_WORKER:
            self._run_inline(specs, keys, future)
            return future
        self._ensure_pool()
        chunks = self._build_chunks(specs, keys, future)
        if self.order == "lpt":
            chunks.sort(key=lambda c: c.est, reverse=True)
        if self._outstanding == 0:
            self._busy_since = time.perf_counter()
        self._outstanding += len(specs)
        for chunk in chunks:
            target = min(self._workers, key=lambda w: w.load_est)
            target.backlog.append(chunk)
        for worker in self._workers:
            self._fill(worker)
        self._pump(wait_for=None)  # drain whatever already finished
        return future

    def map(self, specs: Sequence[JobSpec]) -> list[Any]:
        """Run every spec; results in spec order, merged by job key."""
        return self.submit(specs).result()

    # -- serial path ----------------------------------------------------
    def _run_inline(self, specs: Sequence[JobSpec], keys: list[tuple],
                    future: SweepFuture) -> None:
        future._serial = True
        pid = os.getpid()
        start = time.perf_counter()
        try:
            for pos, (spec, key) in enumerate(zip(specs, keys)):
                watermark = runner.live_cluster_index()
                t0 = time.perf_counter()
                c0 = time.process_time()
                value = spec.run()
                cpu = time.process_time() - c0
                wall = time.perf_counter() - t0
                events = runner.events_since(watermark)
                self.stats.note_job(pid, wall, cpu, events,
                                    _peak_rss_mb())
                self.costs.observe(key, wall, cpu)
                future._store(pos, True, value, wall, cpu, events, [])
        finally:
            self.stats.add_busy(time.perf_counter() - start)

    # -- chunk assembly -------------------------------------------------
    def _build_chunks(self, specs: Sequence[JobSpec],
                      keys: list[tuple],
                      future: SweepFuture) -> list[_Chunk]:
        """Register the jobs and pack tiny ones into shared chunks.

        Only jobs with a *known* sub-``tiny_job_s`` estimate are
        packed (an unseen job might be long, so it rides alone);
        chunks target ``chunk_target_s`` of summed estimate and never
        exceed ``CHUNK_MAX_JOBS`` members.
        """
        chunks: list[_Chunk] = []
        tiny: list[tuple[int, JobSpec, float]] = []
        for pos, (spec, key) in enumerate(zip(specs, keys)):
            job_id = self._next_job_id
            self._next_job_id += 1
            self._registry[job_id] = (future, pos, key)
            est = self.costs.estimate(key)
            if est is not None and est < self.tiny_job_s:
                tiny.append((job_id, spec, est))
            else:
                chunks.append(self._make_chunk(
                    [(job_id, spec)],
                    est if est is not None else DEFAULT_EST_S))
        group: list = []
        group_est = 0.0
        for job_id, spec, est in tiny:
            group.append((job_id, spec))
            group_est += est
            if (group_est >= self.chunk_target_s
                    or len(group) >= CHUNK_MAX_JOBS):
                chunks.append(self._make_chunk(group, group_est))
                group, group_est = [], 0.0
        if group:
            chunks.append(self._make_chunk(group, group_est))
        return chunks

    def _make_chunk(self, jobs: list, est: float) -> _Chunk:
        chunk = _Chunk(self._next_chunk_id, jobs, est)
        self._next_chunk_id += 1
        return chunk

    # -- dispatch / work stealing ---------------------------------------
    def _fill(self, worker: _Worker) -> None:
        """Keep ``worker`` topped up to the prefetch depth, stealing
        from the most-loaded peer once its own queue runs dry."""
        while worker.inflight < PREFETCH:
            if worker.backlog:
                chunk = worker.backlog.popleft()
            else:
                chunk = self._steal_for(worker)
                if chunk is None:
                    return
            worker.task_q.put((chunk.id, chunk.jobs))
            worker.inflight += 1
            worker.inflight_est += chunk.est

    def _steal_for(self, thief: _Worker) -> Optional[_Chunk]:
        """Take the smallest queued chunk from the busiest victim.

        Only chunks the victim cannot itself issue right now are fair
        game: a victim with spare inflight slots will drain its own
        backlog on its next fill, and stealing that work would
        serialize two otherwise-concurrent workers.
        """
        victims = [w for w in self._workers
                   if w is not thief
                   and len(w.backlog) > PREFETCH - w.inflight]
        if not victims:
            return None
        victim = max(victims, key=lambda w: w.load_est)
        chunk = victim.backlog.pop()  # tail = smallest under LPT
        if thief.proc.pid is not None:
            self.stats.note_steal(thief.proc.pid)
        return chunk

    # -- completion pump ------------------------------------------------
    def _pump(self, wait_for: Optional[SweepFuture]) -> None:
        """Drain completed chunks; with ``wait_for``, block until that
        future is done (other futures' results are banked as they
        arrive -- the pool never idles waiting for a specific sweep).
        """
        while True:
            if wait_for is not None:
                if wait_for.done():
                    return
            block = wait_for is not None
            try:
                if block:
                    message = self._result_q.get(True, 1.0)
                else:
                    message = self._result_q.get(False)
            except queue_mod.Empty:
                if not block:
                    return
                self._check_alive()
                continue
            self._handle(message)

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        if kind != "chunk":  # pragma: no cover - unknown message
            raise RuntimeError(f"unexpected pool message {kind!r}")
        _, worker_id, pid, chunk_id, idle_s, rss_mb, entries = message
        worker = self._workers[worker_id]
        worker.inflight -= 1
        self.stats.note_chunk(pid, idle_s)
        for job_id, ok, value, wall, cpu, events, caps in entries:
            future, pos, key = self._registry.pop(job_id)
            self.stats.note_job(pid, wall, cpu, events, rss_mb)
            if ok:
                self.costs.observe(key, wall, cpu)
            future._store(pos, ok, value, wall, cpu, events, caps)
            self._outstanding -= 1
            worker.inflight_est = max(
                0.0, worker.inflight_est
                - (self.costs.estimate(key) or DEFAULT_EST_S))
        if self._outstanding == 0 and self._busy_since is not None:
            self.stats.add_busy(time.perf_counter() - self._busy_since)
            self._busy_since = None
        self._fill(worker)

    def _check_alive(self) -> None:
        dead = [w for w in self._workers if not w.proc.is_alive()
                and (w.inflight > 0 or w.backlog)]
        if dead:
            pids = [w.proc.pid for w in dead]
            self._outstanding = 0  # force-terminate on shutdown
            raise RuntimeError(
                f"sweep worker(s) {pids} died with jobs outstanding"
                " (simulation crash or OOM kill); aborting the sweep")

    def record(self) -> dict:
        """The ``parallel`` stats block (cost model included)."""
        return self.stats.record(self.costs, self.order)


#: Back-compat alias: the pre-futures executor class name.
SweepExecutor = SweepScheduler


#: Process-wide scheduler consulted by the experiment modules.
_EXECUTOR = SweepScheduler(jobs=1)


def get_executor() -> SweepScheduler:
    return _EXECUTOR


def set_executor(executor: SweepScheduler) -> SweepScheduler:
    """Install ``executor`` globally, shutting down the previous one."""
    global _EXECUTOR
    _EXECUTOR.shutdown()
    _EXECUTOR = executor
    return executor


def configure(jobs: int = 1, **kwargs: Any) -> SweepScheduler:
    """Install a fresh scheduler with ``jobs`` workers (1 == serial)."""
    return set_executor(SweepScheduler(jobs=jobs, **kwargs))


def shutdown() -> None:
    """Tear down the global scheduler's pool (stats are retained)."""
    _EXECUTOR.shutdown()


@atexit.register
def _atexit_shutdown() -> None:  # pragma: no cover - interpreter exit
    """Last-resort guard: never leave pool workers orphaned, even if
    an experiment raised past every ``finally``."""
    if _IN_WORKER:
        return
    try:
        _EXECUTOR.shutdown()
    except Exception:
        pass


def submit(specs: Sequence[JobSpec]) -> SweepFuture:
    """Queue ``specs`` on the installed scheduler; returns the future
    immediately so independent sweeps pipeline through the pool."""
    return _EXECUTOR.submit(specs)


def sweep(specs: Sequence[JobSpec]) -> list[Any]:
    """Run ``specs`` on the installed scheduler; results in spec
    order (submit + block)."""
    return _EXECUTOR.map(specs)


# ----------------------------------------------------------------------
# CLI / report helpers
# ----------------------------------------------------------------------

def auto_jobs() -> int:
    """Worker count for ``--jobs auto``: the usable core count."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def parse_jobs(value: str) -> int:
    """argparse type for ``--jobs``: a positive int or ``auto``."""
    if value == "auto":
        return auto_jobs()
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def host_record(jobs: int) -> dict:
    """Host metadata stamped into ``BENCH_PERF.json`` so the perf
    trajectory stays comparable across machines and job counts."""
    from ..sim.kernel import _SCHEDULER_ENV
    return {
        "cpu_count": os.cpu_count() or 1,
        "cpus_usable": auto_jobs(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "jobs": jobs,
        # The pending-queue backend every cluster of this run used
        # (perf numbers are not comparable across backends).
        "scheduler": os.environ.get(_SCHEDULER_ENV, "calendar"),
    }
