"""Reference numbers from the paper, for side-by-side reporting.

Each experiment harness prints its measured values next to these and
evaluates *shape checks* -- the qualitative claims that must hold even
though the substrate is a simulator (see DESIGN.md's pass/fail
criteria).
"""

from __future__ import annotations

__all__ = ["TABLE2", "PIPELINE", "FIG2", "GA_LATENCY", "APPS",
           "TABLE1_FUNCTIONS"]

#: Table 2 -- latency in microseconds, 4-byte messages.
TABLE2 = {
    ("lapi", "polling"): 34.0,
    ("lapi", "polling_round_trip"): 60.0,
    ("lapi", "interrupt_round_trip"): 89.0,
    ("mpl", "polling"): 43.0,
    ("mpl", "polling_round_trip"): 86.0,
    ("mpl", "interrupt_round_trip"): 200.0,
}

#: Section 4 -- pipeline latency (non-blocking call return time), us.
PIPELINE = {"put": 16.0, "get": 19.0}

#: Figure 2 -- qualitative anchors of the bandwidth comparison.
FIG2 = {
    "lapi_asymptote_mbs": 97.0,
    "mpi_asymptote_mbs": 98.0,
    "lapi_half_peak_bytes": 8 * 1024,
    "mpi_half_peak_bytes": 23 * 1024,
    "eager_default": 4096,
    "eager_max": 65536,
}

#: Section 5.4 -- GA single-element (8-byte) latency, us.
GA_LATENCY = {
    ("get", "lapi"): 94.2,
    ("get", "mpl"): 221.0,
    ("put", "lapi"): 49.6,
    ("put", "mpl"): 54.6,
}

#: Section 5.4 -- application improvement of GA-LAPI over GA-MPL, %.
APPS = {"min_improvement_pct": 10.0, "max_improvement_pct": 50.0}

#: Table 1 -- the LAPI function set, by operation group.
TABLE1_FUNCTIONS = {
    "Setup": ["LAPI_Init", "LAPI_Term"],
    "Active Message": ["LAPI_Amsend"],
    "Data Transfer": ["LAPI_Put", "LAPI_Get"],
    "Mutual Exclusion": ["LAPI_Rmw"],
    "Signaling Communication Progress": [
        "LAPI_Setcntr", "LAPI_Waitcntr", "LAPI_Getcntr"],
    "Ordering": ["LAPI_Fence", "LAPI_Gfence"],
    "Address Exchange": ["LAPI_Address_init"],
    "Environment Query/Setup": ["LAPI_Qenv", "LAPI_Senv"],
}
