"""Figure 2: one-way bandwidth, LAPI vs MPI (default and 64K eager).

Protocol (section 4's experiment): two tasks; per message size the
origin transfers the payload and waits until it is *known delivered*
before the next transfer --

* LAPI: ``LAPI_Put`` + Waitcntr on the completion counter (data has
  arrived at the target);
* MPI: blocking send paired with a pre-posted receive, confirmed by a
  zero-byte acknowledgement message from the receiver.

Three series are produced: LAPI, MPI with the default MP_EAGER_LIMIT
(4 KB -- showing the eager-to-rendezvous kink), and MPI with
MP_EAGER_LIMIT=65536 (the environment-variable experiment that removes
the kink).
"""

from __future__ import annotations

from typing import Optional

from ..machine.config import SP_1998, MachineConfig
from .paper import FIG2
from .parallel import Deferred, JobSpec, submit, sweep
from .report import ExperimentResult
from .runner import SIZE_SWEEP, bandwidth_mbs, fresh_cluster, mean, \
    reps_for_size

__all__ = ["run_fig2", "submit_fig2", "fig2_jobs", "lapi_bandwidth",
           "mpl_bandwidth", "lapi_bandwidth_point",
           "mpl_bandwidth_point", "half_peak_size"]


def lapi_bandwidth_point(nbytes: int,
                         config: MachineConfig = SP_1998) -> float:
    """One-way LAPI bandwidth (MB/s) at one message size."""
    reps = reps_for_size(nbytes)
    records = {}

    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            cmpl = lapi.counter()
            times = []
            for _ in range(reps):
                t0 = task.now()
                yield from lapi.put(1, nbytes, buf, src,
                                    cmpl_cntr=cmpl)
                yield from lapi.waitcntr(cmpl, 1)
                times.append(task.now() - t0)
            records["per_msg"] = mean(times)
        yield from lapi.gfence()

    fresh_cluster(2, config).run_job(main, stacks=("lapi",),
                                     interrupt_mode=False)
    return bandwidth_mbs(nbytes, records["per_msg"])


def mpl_bandwidth_point(nbytes: int, eager_limit: Optional[int] = None,
                        config: MachineConfig = SP_1998) -> float:
    """One-way MPI bandwidth (MB/s) at one message size."""
    reps = reps_for_size(nbytes)
    records = {}

    def main(task):
        mpl = task.mpl
        mem = task.memory
        buf = mem.malloc(nbytes)
        if task.rank == 0:
            src = mem.malloc(nbytes)
            times = []
            for _ in range(reps):
                t0 = task.now()
                yield from mpl.send(1, src, nbytes, tag=1)
                yield from mpl.recv_bytes(1, tag=2)  # delivery ack
                times.append(task.now() - t0)
            records["per_msg"] = mean(times)
            yield from mpl.barrier()
        else:
            for _ in range(reps):
                yield from mpl.recv(0, 1, buf, nbytes)
                yield from mpl.send(0, b"", 0, tag=2)
            yield from mpl.barrier()

    fresh_cluster(2, config).run_job(main, stacks=("mpl",),
                                     interrupt_mode=False,
                                     eager_limit=eager_limit)
    return bandwidth_mbs(nbytes, records["per_msg"])


def lapi_bandwidth(sizes=SIZE_SWEEP, config: MachineConfig = SP_1998):
    return sweep([JobSpec(lapi_bandwidth_point, (n, config),
                          key=("lapi_bw", n)) for n in sizes])


def mpl_bandwidth(sizes=SIZE_SWEEP, eager_limit: Optional[int] = None,
                  config: MachineConfig = SP_1998):
    return sweep([JobSpec(mpl_bandwidth_point, (n, eager_limit, config),
                          key=("mpl_bw", eager_limit, n))
                  for n in sizes])


def fig2_jobs(config: MachineConfig = SP_1998,
              sizes=SIZE_SWEEP) -> list[JobSpec]:
    """Figure 2 as declarative job specs: three series per size, in
    the exact order the serial loops used to build clusters."""
    specs = [JobSpec(lapi_bandwidth_point, (n, config),
                     key=("fig2", "lapi", n)) for n in sizes]
    specs += [JobSpec(mpl_bandwidth_point, (n, None, config),
                      key=("fig2", "mpi_default", n)) for n in sizes]
    specs += [JobSpec(mpl_bandwidth_point,
                      (n, config.mpl_eager_limit_max, config),
                      key=("fig2", "mpi_eager", n)) for n in sizes]
    return specs


def half_peak_size(sizes, series) -> int:
    """First size reaching half of the series' asymptotic bandwidth."""
    peak = max(series)
    for n, bw in zip(sizes, series):
        if bw >= peak / 2:
            return n
    return sizes[-1]


def submit_fig2(config: MachineConfig = SP_1998,
                sizes=SIZE_SWEEP) -> Deferred:
    """Queue Figure 2's sweeps; ``finish()`` builds the result."""
    sizes = list(sizes)
    future = submit(fig2_jobs(config, sizes))
    return Deferred(future,
                    lambda values: _fig2(values, config, sizes))


def run_fig2(config: MachineConfig = SP_1998,
             sizes=SIZE_SWEEP) -> ExperimentResult:
    """Regenerate Figure 2's three bandwidth curves."""
    return submit_fig2(config, sizes).finish()


def _fig2(values: list, config: MachineConfig,
          sizes: list) -> ExperimentResult:
    k = len(sizes)
    lapi = values[:k]
    mpi_default = values[k:2 * k]
    mpi_eager = values[2 * k:]

    rows = [[n, l, d, e] for n, l, d, e
            in zip(sizes, lapi, mpi_default, mpi_eager)]
    result = ExperimentResult(
        experiment="fig2",
        title="One-way bandwidth [MB/s] vs message size",
        headers=["bytes", "LAPI", "MPI (eager=4K)", "MPI (eager=64K)"],
        rows=rows)
    result.notes.append(
        f"paper anchors: LAPI ~{FIG2['lapi_asymptote_mbs']} MB/s,"
        f" MPI ~{FIG2['mpi_asymptote_mbs']} MB/s asymptotic;"
        f" half-peak {FIG2['lapi_half_peak_bytes']}B (LAPI) vs"
        f" {FIG2['mpi_half_peak_bytes']}B (MPI)")

    lapi_peak, mpi_peak = max(lapi), max(mpi_eager)
    result.check("LAPI asymptote near 97 MB/s",
                 85.0 <= lapi_peak <= 105.0, f"{lapi_peak:.1f}")
    result.check("MPI peak slightly above LAPI's (16B vs 48B headers)",
                 lapi_peak < mpi_peak <= lapi_peak * 1.12,
                 f"{mpi_peak:.1f} vs {lapi_peak:.1f}")
    lapi_half = half_peak_size(sizes, lapi)
    mpi_half = half_peak_size(sizes, mpi_default)
    result.check("LAPI reaches half-peak at a much smaller size",
                 lapi_half * 2 <= mpi_half,
                 f"{lapi_half}B vs {mpi_half}B")
    result.check("LAPI beats default MPI at every medium size"
                 " (256B-64KB)",
                 all(l > d for n, l, d in zip(sizes, lapi, mpi_default)
                     if 256 <= n <= 65536))
    # The eager->rendezvous kink: crossing the default limit hurts the
    # default curve but not the 64K-eager curve.
    idx_above = next(i for i, n in enumerate(sizes)
                     if n > config.mpl_eager_limit)
    gain_default = mpi_default[idx_above] / mpi_default[idx_above - 1]
    gain_eager = mpi_eager[idx_above] / mpi_eager[idx_above - 1]
    result.check("rendezvous kink at the default eager limit",
                 gain_eager > gain_default,
                 f"growth {gain_default:.2f} vs {gain_eager:.2f}")
    result.check("curves converge at the top (within 10%)",
                 abs(mpi_default[-1] - mpi_eager[-1])
                 <= 0.1 * mpi_eager[-1])
    return result
