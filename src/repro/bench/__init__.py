"""Benchmark harness: regenerates every table and figure of the paper.

One ``run_*`` function per artifact (see DESIGN.md's experiment index):

* :func:`run_table1` -- the LAPI function inventory.
* :func:`run_table2` -- latency (polling / round trips / interrupts).
* :func:`run_pipeline_latency` -- non-blocking call return times.
* :func:`run_fig2` -- LAPI vs MPI bandwidth (both eager settings).
* :func:`run_fig3` / :func:`run_fig4` -- GA put/get under LAPI and MPL.
* :func:`run_ga_latency` -- GA single-element latencies.
* :func:`run_apps` -- application-kernel improvement percentages.

Each returns an :class:`~repro.bench.report.ExperimentResult` with the
regenerated rows, the paper's reference values, and shape-check
verdicts.  ``python -m repro.bench`` runs everything.
"""

from .apps import run_apps, submit_apps
from .bandwidth import run_fig2, submit_fig2
from .chaos import run_chaos, submit_chaos
from .parallel import (CostModel, Deferred, JobSpec, SweepExecutor,
                       SweepFuture, SweepScheduler, configure,
                       get_executor, spread_seed, submit, sweep)
from .ga_putget import (run_fig3, run_fig4, run_ga_latency,
                        submit_fig3, submit_fig4, submit_ga_latency)
from .latency import (run_pipeline_latency, run_table2,
                      submit_pipeline_latency, submit_table2)
from .report import ExperimentResult, ShapeCheck
from .scale import run_scale, submit_scale
from .table1 import run_table1

#: Every experiment, in paper order (name -> runner).
ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "pipeline": run_pipeline_latency,
    "fig2": run_fig2,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "ga_lat": run_ga_latency,
    "apps": run_apps,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "CostModel",
    "Deferred",
    "ExperimentResult",
    "JobSpec",
    "ShapeCheck",
    "SweepExecutor",
    "SweepFuture",
    "SweepScheduler",
    "configure",
    "get_executor",
    "spread_seed",
    "submit",
    "sweep",
    "run_apps",
    "run_chaos",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_ga_latency",
    "run_pipeline_latency",
    "run_scale",
    "run_table1",
    "run_table2",
    "submit_apps",
    "submit_chaos",
    "submit_fig2",
    "submit_fig3",
    "submit_fig4",
    "submit_ga_latency",
    "submit_pipeline_latency",
    "submit_scale",
    "submit_table2",
]
