"""Run the full evaluation: ``python -m repro.bench [experiment ...]``.

With no arguments every table and figure regenerates in paper order;
otherwise only the named experiments run (``table2``, ``fig3``, ...).
Exit status is non-zero if any shape check fails.
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    names = argv or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from"
              f" {sorted(ALL_EXPERIMENTS)}")
        return 2
    failed = 0
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        wall = time.perf_counter() - start
        print(result.render())
        print(f"(regenerated in {wall:.1f}s wall time)")
        print()
        if not result.all_passed:
            failed += 1
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
