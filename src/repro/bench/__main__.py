"""Run the full evaluation: ``python -m repro.bench [experiment ...]``.

With no arguments every table and figure regenerates in paper order;
otherwise only the named experiments run (``table2``, ``fig3``, ...).
Exit status is non-zero if any shape check fails.

Observability flags (see ``docs/observability.md``):

``--metrics``
    Print a per-subsystem metrics block (adapters, switch links,
    reliability, dispatchers, matching, GA buffer pools) for every
    cluster each experiment ran.  Deterministic: identical seeds
    produce byte-identical blocks.
``--trace-out FILE``
    Attach a structured tracer to every cluster and write all trace
    records to ``FILE`` as JSONL
    (``time_us, node, subsystem, event, fields``).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import ALL_EXPERIMENTS
from . import runner
from ..obs import write_trace_jsonl


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all, in paper"
                             f" order: {', '.join(ALL_EXPERIMENTS)})")
    parser.add_argument("--metrics", action="store_true",
                        help="print per-subsystem metrics blocks")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write structured JSONL traces to FILE")
    opts = parser.parse_args(argv)

    names = opts.experiments or list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from"
              f" {sorted(ALL_EXPERIMENTS)}")
        return 2

    observing = opts.metrics or opts.trace_out is not None
    if observing:
        runner.configure_observability(metrics=opts.metrics,
                                       trace=opts.trace_out is not None)

    failed = 0
    trace_lines = 0
    first_trace = True
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        wall = time.perf_counter() - start
        if observing:
            clusters = runner.captured_clusters()
            if opts.metrics:
                result.metrics_blocks = [
                    f"-- metrics: {name} cluster #{i}"
                    f" ({c.nnodes} nodes @ {c.sim.now:.1f} virtual us)"
                    f" --\n{c.metrics.render()}"
                    for i, c in enumerate(clusters)]
            if opts.trace_out is not None:
                for c in clusters:
                    if c.trace is None:
                        continue
                    trace_lines += write_trace_jsonl(
                        c.trace.records, opts.trace_out,
                        append=not first_trace)
                    first_trace = False
        print(result.render())
        print(f"(regenerated in {wall:.1f}s wall time)")
        print()
        if not result.all_passed:
            failed += 1
    if opts.trace_out is not None:
        print(f"wrote {trace_lines} trace records to {opts.trace_out}")
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
