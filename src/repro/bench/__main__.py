"""Run the full evaluation: ``python -m repro.bench [experiment ...]``.

With no arguments every table and figure regenerates in paper order;
otherwise only the named experiments run (``table2``, ``fig3``, ...).
Exit status is non-zero if any shape check fails.

Observability flags (see ``docs/observability.md``):

``--metrics``
    Print a per-subsystem metrics block (adapters, switch links,
    reliability, dispatchers, matching, GA buffer pools) for every
    cluster each experiment ran.  Deterministic: identical seeds
    produce byte-identical blocks.
``--trace-out FILE``
    Attach a structured tracer to every cluster and write all trace
    records to ``FILE`` as JSONL
    (``time_us, node, subsystem, event, fields``; ``.gz`` supported).
``--spans``
    Record causal phase spans on every cluster (implied by the two
    flags below).  Purely observational: virtual-time results are
    byte-identical with spans on or off.
``--decompose``
    Print a Table-1-style per-phase latency decomposition (count /
    mean / p50 / p99 per subsystem, phase, and message-size bucket)
    for every experiment, plus the critical path of gfence epochs.
``--spans-out FILE``
    Write all spans as a Chrome trace-event JSON file, loadable at
    https://ui.perfetto.dev (``.gz`` supported): one track per node,
    flow arrows for every wire hop.

Virtual-time telemetry (see ``docs/observability.md``):

``--slo``
    Arm the windowed telemetry pipeline with the default SLO rule set
    (goodput floor, retransmission-rate ceiling, ack-RTT p99 target)
    and print each experiment's burn-rate alert log.  Purely
    observational: virtual-time results are byte-identical with the
    flag on or off.
``--timeline-out FILE``
    Arm the windowed telemetry pipeline and write every cluster's
    per-window series (counter deltas, gauge values, latency sketches)
    and SLO alerts as deterministic JSONL -- byte-identical between
    ``--jobs 1`` and ``--jobs N``.
``--flight-out FILE``
    Write every flight-recorder black-box dump (SLO pages, engaged
    fault clauses, unreachable peers) as deterministic JSONL.
``--window-us F``
    Timeline window width in virtual microseconds (default 100).

Parallelism (see ``docs/performance.md``):

``--jobs N`` / ``--jobs auto``
    Shard each experiment's independent cluster simulations across N
    worker processes (``auto`` = usable core count).  With N > 1 the
    whole run is *pipelined*: every experiment's sweeps are submitted
    up front and flow through one warm worker pool with no
    inter-experiment barrier, issued longest-first from the persistent
    job-cost cache (``.repro/job_costs.json``; override with
    ``REPRO_COST_CACHE``, set ``REPRO_SWEEP_ORDER=fifo`` to disable
    LPT).  Virtual-time results, tables, ``--metrics`` blocks, and
    trace files are byte-identical to ``--jobs 1``; only wall time
    changes.  Default is serial.

Performance flags (see ``docs/performance.md``):

``--perf``
    Measure the simulator itself: wall-clock seconds, kernel events
    processed, and events/second for every experiment plus a dedicated
    2 MB LAPI put probe (``fig2_large``, the hot-path stress case).
    Writes a JSON report (default ``BENCH_PERF.json``) stamped with
    host metadata and the scheduler's ``parallel`` stats block (always
    present; ``jobs: 1`` for serial runs).  Under ``--jobs N`` each
    experiment's ``wall_s`` is the serial-equivalent CPU seconds its
    jobs consumed (pool jobs overlap across experiments, so per-
    experiment stopwatch walls would be meaningless).
``--perf-out FILE``
    Where to write the report.
``--perf-quick``
    Reduced message-size sweeps for fig2/fig3/fig4 -- the CI smoke
    configuration.

Scale sweep (see ``docs/performance.md``):

``--scale``
    Add the 512-4096-node scale bench to the run: the ring + gfence
    workload on the SP multistage, fat-tree, and dragonfly fabrics,
    measuring simulator wall time, kernel events, events/second, and
    resident memory per point.  ``--perf-quick`` reduces the sweep to
    512 nodes (the CI scale-smoke configuration); ``--jobs N`` shards
    the points with byte-identical virtual-time results.
``--scale-out FILE``
    Write the raw per-point scale records as sorted JSON (default
    ``BENCH_SCALE.json``; CI diffs the deterministic fields between
    serial and ``--jobs N`` runs).  Implies ``--scale``.

Fault injection (see ``docs/reliability.md``):

``--faults``
    Add the chaos bench to the run: sweep loss / outage / ack-loss /
    CPU-fault / corruption regimes (``repro.faults``) over a LAPI put
    workload and report goodput degradation and recovery per scenario.
    Deterministic across ``--jobs N``.  ``--perf-quick`` reduces the
    sweep.
``--faults-out FILE``
    Write the raw per-scenario chaos records (exact virtual times,
    retransmission and drop counters) as sorted JSON -- CI diffs the
    serial and ``--jobs N`` files byte-for-byte.  Implies ``--faults``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from statistics import median
from typing import Callable, Optional

from . import ALL_EXPERIMENTS
from . import parallel, runner
from .apps import submit_apps
from .bandwidth import lapi_bandwidth_point, submit_fig2
from .chaos import submit_chaos
from .ga_putget import submit_fig3, submit_fig4, submit_ga_latency
from .latency import submit_pipeline_latency, submit_table2
from .parallel import Deferred
from .scale import submit_scale
from .table1 import run_table1
from ..obs import (merge_pool_stats, render_critical_path,
                   render_decomposition, write_chrome_trace,
                   write_flight_jsonl, write_trace_jsonl)

#: Reduced sweeps for ``--perf-quick``.  Chosen so every shape check of
#: the full sweep still resolves: fig2 keeps the half-peak crossover
#: (8K/16K) and the eager kink; fig3 keeps one size per regime (small
#: win / MPL buffering band / large win / asymptote).
QUICK_SIZES = {
    "fig2": [1024, 8192, 16384, 65536, 2097152],
    "fig3": [512, 8192, 131072, 2097152],
    "fig4": [512, 8192, 131072, 2097152],
}


#: ``--perf`` repetitions per experiment.  Wall time is the median of
#: the reps (host noise routinely swings single-shot walls by tens of
#: percent); every virtual-time observable must be byte-identical
#: across reps or the run aborts.
PERF_REPS = 3


def _perf_record(wall: float, captures,
                 walls: Optional[list] = None) -> dict:
    """Simulator-performance numbers for one experiment run.

    ``wall`` is the median rep; ``walls`` keeps the individual reps in
    run order so a noisy host is visible in the report.
    """
    events = sum(c.events for c in captures)
    virtual_us = sum(c.now for c in captures)
    record = {
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall) if wall > 0 else 0,
        "virtual_us": round(virtual_us, 1),
        "clusters": len(captures),
    }
    if walls is not None:
        record["wall_reps"] = [round(w, 3) for w in walls]
    return record


def _capture_signature(captures) -> list:
    """The virtual-time observables of a capture list -- everything
    that must be byte-identical between ``--perf`` repetitions."""
    return [(c.nnodes, c.events, c.now) for c in captures]


def _check_rep_identity(name: str, first, rerun) -> None:
    """Abort if a ``--perf`` repetition diverged in virtual time.

    Reps rebuild clusters from the same seeds, so any difference in
    event counts or final virtual time is a determinism bug -- a perf
    number attached to diverging runs would be meaningless.
    """
    a, b = _capture_signature(first), _capture_signature(rerun)
    if a != b:
        raise SystemExit(
            f"perf: repetitions of {name!r} diverged in virtual"
            f" observables:\n  first: {a}\n  rerun: {b}\n"
            "(determinism bug -- events/virtual_us must not depend on"
            " the repetition)")


def _submitters(quick: bool, faults_on: bool,
                scale_on: bool) -> dict[str, Callable[[], Deferred]]:
    """Every experiment as a submit-phase entry point.

    Each callable queues the experiment's sweeps on the installed
    scheduler and returns a :class:`Deferred` whose ``finish()``
    assembles the result -- the seam that lets ``--jobs N`` submit
    everything up front and pipeline all sweeps through one pool.
    Serial runs call submit+finish back to back, which runs the jobs
    inline exactly as a direct ``run_*`` call would.
    """
    submitters: dict[str, Callable[[], Deferred]] = {
        "table1": lambda: Deferred(None, lambda _: run_table1()),
        "table2": submit_table2,
        "pipeline": submit_pipeline_latency,
        "fig2": (lambda: submit_fig2(sizes=QUICK_SIZES["fig2"]))
        if quick else submit_fig2,
        "fig3": (lambda: submit_fig3(sizes=QUICK_SIZES["fig3"]))
        if quick else submit_fig3,
        "fig4": (lambda: submit_fig4(sizes=QUICK_SIZES["fig4"]))
        if quick else submit_fig4,
        "ga_lat": submit_ga_latency,
        "apps": submit_apps,
    }
    if faults_on:
        submitters["chaos"] = lambda: submit_chaos(quick=quick)
    if scale_on:
        submitters["scale"] = lambda: submit_scale(quick=quick)
    return submitters


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names (default: all, in paper"
                             f" order: {', '.join(ALL_EXPERIMENTS)})")
    parser.add_argument("--jobs", type=parallel.parse_jobs, default=1,
                        metavar="N|auto",
                        help="worker processes for independent cluster"
                             " simulations (default: 1, serial;"
                             " results are byte-identical either way)")
    parser.add_argument("--metrics", action="store_true",
                        help="print per-subsystem metrics blocks")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write structured JSONL traces to FILE")
    parser.add_argument("--spans", action="store_true",
                        help="record causal phase spans on every"
                             " cluster (implied by --spans-out /"
                             " --decompose)")
    parser.add_argument("--spans-out", metavar="FILE", default=None,
                        help="write a Chrome trace-event JSON file"
                             " (Perfetto-loadable; .gz supported)")
    parser.add_argument("--decompose", action="store_true",
                        help="print a Table-1-style per-phase latency"
                             " decomposition per experiment")
    parser.add_argument("--slo", action="store_true",
                        help="arm windowed telemetry with the default"
                             " SLO rules and print burn-rate alerts")
    parser.add_argument("--timeline-out", metavar="FILE", default=None,
                        help="write per-window telemetry series and SLO"
                             " alerts as deterministic JSONL")
    parser.add_argument("--flight-out", metavar="FILE", default=None,
                        help="write flight-recorder black-box dumps as"
                             " deterministic JSONL")
    parser.add_argument("--window-us", type=float, default=None,
                        metavar="F",
                        help="telemetry window width in virtual"
                             " microseconds (default: 100)")
    parser.add_argument("--perf", action="store_true",
                        help="measure wall time / events per second and"
                             " write a JSON report")
    parser.add_argument("--perf-out", metavar="FILE",
                        default="BENCH_PERF.json",
                        help="perf report path (default: BENCH_PERF.json)")
    parser.add_argument("--perf-quick", action="store_true",
                        help="reduced fig2/fig3/fig4 sweeps (CI smoke)")
    parser.add_argument("--scale", action="store_true",
                        help="run the 512-4096-node scale bench"
                             " (ring + gfence on sp/fattree/dragonfly"
                             " fabrics; --perf-quick reduces to 512"
                             " nodes)")
    parser.add_argument("--scale-out", metavar="FILE", default=None,
                        help="write raw scale records as sorted JSON"
                             " (default BENCH_SCALE.json; implies"
                             " --scale)")
    parser.add_argument("--faults", action="store_true",
                        help="run the chaos fault-injection bench"
                             " (goodput degradation and recovery under"
                             " loss/outage/CPU-fault regimes)")
    parser.add_argument("--faults-out", metavar="FILE", default=None,
                        help="write raw chaos records as sorted JSON"
                             " (implies --faults)")
    opts = parser.parse_args(argv)

    faults_on = (opts.faults or opts.faults_out is not None
                 or "chaos" in opts.experiments)
    scale_on = (opts.scale or opts.scale_out is not None
                or "scale" in opts.experiments)
    known = list(ALL_EXPERIMENTS)
    if faults_on:
        known.append("chaos")
    if scale_on:
        known.append("scale")
    names = opts.experiments or list(known)
    unknown = [n for n in names if n not in known]
    if unknown:
        print(f"unknown experiments: {unknown}; choose from"
              f" {sorted(known)}")
        return 2
    if faults_on and "chaos" not in names:
        names.append("chaos")
    if scale_on and "scale" not in names:
        names.append("scale")

    submitters = _submitters(opts.perf_quick, faults_on, scale_on)

    spans_on = (opts.spans or opts.spans_out is not None
                or opts.decompose)
    telemetry_on = (opts.slo or opts.timeline_out is not None
                    or opts.flight_out is not None)
    telemetry_cfg = None
    if telemetry_on:
        from ..obs import TelemetryConfig, default_rules
        kwargs = {"slo": default_rules() if opts.slo else ()}
        if opts.window_us is not None:
            kwargs["window_us"] = opts.window_us
        telemetry_cfg = TelemetryConfig(**kwargs)
    observing = (opts.metrics or opts.trace_out is not None or opts.perf
                 or spans_on or telemetry_on)
    if observing:
        runner.configure_observability(metrics=opts.metrics,
                                       trace=opts.trace_out is not None,
                                       capture=opts.perf,
                                       spans=spans_on,
                                       telemetry=telemetry_cfg)
    # Observability must be armed before the first parallel sweep so
    # pool workers inherit the flags at initializer time.  The cost
    # cache persists across invocations: the second run schedules with
    # real per-point costs.
    cost_path = os.environ.get("REPRO_COST_CACHE",
                               parallel.DEFAULT_COST_PATH)
    executor = parallel.configure(jobs=opts.jobs, cost_path=cost_path)
    pipelined = opts.jobs > 1
    if pipelined:
        print(f"parallel: pipelining sweeps across {opts.jobs} warm"
              " worker processes (results identical to --jobs 1;"
              f" issue order: {executor.order})")
        print()

    # The executor must come down even when an experiment raises --
    # orphaned pool workers outlive the CLI otherwise.
    try:
        return _run(opts, names, submitters, executor, observing,
                    spans_on, pipelined)
    finally:
        parallel.shutdown()


def _render_slo(name: str, captures) -> str:
    """The ``--slo`` alert block of one experiment: every burn-rate
    state transition of every armed cluster, in deterministic order."""
    lines = []
    for i, c in enumerate(captures):
        if c.telemetry is None:
            continue
        for alert in c.telemetry["alerts"]:
            lines.append(
                f"  cluster #{i} t={alert['t_us']}us"
                f" window={alert['window']}"
                f" {alert['event'].upper()} {alert['rule']}"
                f" (burn short={alert['short_burn']}"
                f" long={alert['long_burn']})")
    pages = sum(1 for line in lines if " PAGE " in line)
    header = (f"-- slo: {name}: {len(lines)} alert transition(s),"
              f" {pages} page(s) --")
    return header + ("\n" + "\n".join(lines) if lines else "")


def _write_timeline(telemetry_records, path: str) -> int:
    """Write ``--timeline-out``: one JSONL line per series and per SLO
    alert, tagged with experiment and cluster index.  Sorted keys and
    fixed separators -- byte-comparable between ``--jobs`` modes."""
    nlines = 0
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for name, idx, snap in telemetry_records:
            timeline = snap["timeline"]
            for series in timeline["series"]:
                row = {"experiment": name, "cluster": idx,
                       "record": "series",
                       "window_us": timeline["window_us"]}
                row.update(series)
                fh.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
                nlines += 1
            for alert in snap["alerts"]:
                row = {"experiment": name, "cluster": idx,
                       "record": "alert"}
                row.update(alert)
                fh.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
                nlines += 1
    return nlines


def _run(opts, names: list[str], submitters: dict, executor,
         observing: bool, spans_on: bool, pipelined: bool) -> int:
    failed = 0
    trace_lines = 0
    first_trace = True
    perf: dict = {}
    chaos_payload = None
    scale_payload = None
    span_streams: list[list[dict]] = []
    pool_blocks: list = []
    #: (experiment, cluster index, TelemetryRuntime.snapshot()) of
    #: every armed cluster, in submission order -- the deterministic
    #: source of --timeline-out / --flight-out / --slo output.
    telemetry_records: list[tuple] = []
    telemetry_out = (opts.slo or opts.timeline_out is not None
                     or opts.flight_out is not None)
    # Under --perf each experiment runs PERF_REPS times: the wall
    # number is the median rep (single-shot walls are hostage to host
    # noise) and the virtual observables are asserted byte-identical
    # across reps.  The last rep's captures feed every downstream
    # consumer -- by the identity assertion they are interchangeable.
    reps = PERF_REPS if opts.perf else 1
    pending: dict[str, list[Deferred]] = {}
    if pipelined:
        # Submit every experiment x rep up front: all sweeps flow
        # through the warm pool with no inter-experiment barrier, in
        # cost-model LPT order.  Results are banked as they complete
        # and merged below in submission order, so the output stream
        # is byte-identical to the serial loop.
        pending = {name: [submitters[name]() for _ in range(reps)]
                   for name in names}
    for name in names:
        walls: list[float] = []
        captures: list = []
        for rep in range(reps):
            if pipelined:
                deferred = pending[name][rep]
                result = deferred.finish()
                # Pool jobs overlap across experiments, so a stopwatch
                # around finish() measures other experiments' work (or
                # nothing, if the jobs already completed).  Report the
                # serial-equivalent CPU seconds this experiment's jobs
                # consumed -- the number comparable across job counts.
                walls.append(deferred.job_cpu_s)
            else:
                start = time.perf_counter()
                result = submitters[name]().finish()
                walls.append(time.perf_counter() - start)
            if observing:
                rerun = runner.drain_captures()
                if opts.perf and len(walls) > 1:
                    _check_rep_identity(name, captures, rerun)
                captures = rerun
        wall = median(walls)
        if name == "chaos":
            chaos_payload = getattr(result, "payload", None)
        if name == "scale":
            scale_payload = getattr(result, "payload", None)
        decomposition = None
        slo_block = None
        if observing:
            if telemetry_out:
                telemetry_records.extend(
                    (name, i, c.telemetry)
                    for i, c in enumerate(captures)
                    if c.telemetry is not None)
                if opts.slo:
                    slo_block = _render_slo(name, captures)
            if opts.metrics:
                result.metrics_blocks = [
                    f"-- metrics: {name} cluster #{i}"
                    f" ({c.nnodes} nodes @ {c.now:.1f} virtual us)"
                    f" --\n{c.metrics_block}"
                    for i, c in enumerate(captures)]
            if opts.trace_out is not None:
                for c in captures:
                    if not c.trace:
                        continue
                    trace_lines += write_trace_jsonl(
                        c.trace, opts.trace_out,
                        append=not first_trace)
                    first_trace = False
            if spans_on:
                streams = [c.spans for c in captures if c.spans]
                if opts.spans_out is not None:
                    span_streams.extend(streams)
                if opts.decompose and streams:
                    flat = [s for stream in streams for s in stream]
                    decomposition = render_decomposition(flat, name)
                    cpath = render_critical_path(flat)
                    if cpath:
                        decomposition += "\n" + cpath
            if opts.perf:
                perf[name] = _perf_record(wall, captures, walls)
                pool_blocks.extend(c.pools for c in captures)
        print(result.render())
        if decomposition is not None:
            print()
            print(decomposition)
        if slo_block is not None:
            print()
            print(slo_block)
        print(f"(regenerated in {wall:.1f}s"
              f" {'cpu' if pipelined else 'wall'} time)")
        print()
        if not result.all_passed:
            failed += 1
    if opts.trace_out is not None:
        if first_trace:  # no records anywhere: still create the file
            open(opts.trace_out, "w", encoding="utf-8").close()
        print(f"wrote {trace_lines} trace records to {opts.trace_out}")
    if opts.spans_out is not None:
        nevents = write_chrome_trace(span_streams, opts.spans_out)
        nspans = sum(len(s) for s in span_streams)
        print(f"wrote {nevents} trace events ({nspans} spans,"
              f" {len(span_streams)} clusters) to {opts.spans_out}")
    if opts.timeline_out is not None:
        nlines = _write_timeline(telemetry_records, opts.timeline_out)
        print(f"wrote {nlines} timeline records to {opts.timeline_out}")
    if opts.flight_out is not None:
        dumps = [{"experiment": name, "cluster": idx, **dump}
                 for name, idx, snap in telemetry_records
                 for dump in snap["flight"]]
        ndumps = write_flight_jsonl(dumps, opts.flight_out)
        print(f"wrote {ndumps} flight dumps to {opts.flight_out}")
    if "scale" in names:
        # Sorted keys; wall seconds and RSS are host facts and vary,
        # but every virtual-time field (virtual_us, events, packet
        # counters) is deterministic -- CI compares those between
        # serial and --jobs N runs.
        scale_out = opts.scale_out or "BENCH_SCALE.json"
        report = {"schema": 1, "quick": opts.perf_quick,
                  "host": parallel.host_record(opts.jobs),
                  "points": scale_payload or {}}
        with open(scale_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(report['points'])} scale records to"
              f" {scale_out}")
    if opts.faults_out is not None:
        # Sorted keys + fixed float formatting (the records only hold
        # rounded floats) make the file safe to byte-compare between
        # serial and --jobs N runs.
        report = {"schema": 1, "quick": opts.perf_quick,
                  "scenarios": chaos_payload or {}}
        with open(opts.faults_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(report['scenarios'])} chaos scenario"
              f" records to {opts.faults_out}")

    if opts.perf:
        # Dedicated hot-path probe: the large-message end of Figure 2,
        # where the event kernel dominates wall time.  Runs inline in
        # the parent -- it measures single-job kernel wall-clock, which
        # a pool worker's scheduling noise would contaminate -- after
        # every pooled sweep above has finished.
        probe_walls: list[float] = []
        probe_captures: list = []
        bw = 0.0
        for _ in range(PERF_REPS):
            start = time.perf_counter()
            bw_rep = lapi_bandwidth_point(2097152)
            probe_walls.append(time.perf_counter() - start)
            rerun = runner.drain_captures()
            if len(probe_walls) > 1:
                _check_rep_identity("fig2_large", probe_captures, rerun)
                if bw_rep != bw:
                    raise SystemExit(
                        f"perf: probe bandwidth diverged between reps"
                        f" ({bw} vs {bw_rep})")
            probe_captures = rerun
            bw = bw_rep
        wall = median(probe_walls)
        if spans_on and opts.spans_out is not None:
            span_streams.extend(c.spans for c in probe_captures
                                if c.spans)
        perf["fig2_large"] = _perf_record(wall, probe_captures,
                                          probe_walls)
        perf["fig2_large"]["bandwidth_mbs"] = round(bw, 2)
        pool_blocks.extend(c.pools for c in probe_captures)
        totals = {
            "wall_s": round(sum(p["wall_s"] for p in perf.values()), 3),
            "events": sum(p["events"] for p in perf.values()),
        }
        totals["events_per_sec"] = (
            round(totals["events"] / totals["wall_s"])
            if totals["wall_s"] > 0 else 0)
        # The parallel block is always present (jobs: 1 for serial
        # runs) so trend tooling and the CI gates see a stable schema.
        report = {"schema": 3, "quick": opts.perf_quick,
                  "host": parallel.host_record(opts.jobs),
                  "pools": merge_pool_stats(pool_blocks),
                  "experiments": perf, "totals": totals,
                  "parallel": executor.record()}
        with open(opts.perf_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"perf: {totals['events']} events in {totals['wall_s']}s"
              f" ({totals['events_per_sec']:,} events/s)"
              f" -> {opts.perf_out}")
        if opts.jobs > 1:
            stats = report["parallel"]
            print(f"pool: {stats['jobs_run']} jobs on {opts.jobs}"
                  f" workers in {stats['chunks_run']} chunks"
                  f" ({stats['steals']} steals), speedup"
                  f" {stats['speedup']}x (efficiency"
                  f" {stats['efficiency']})")
    if failed:
        print(f"{failed} experiment(s) had failing shape checks")
        return 1
    print("all shape checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
