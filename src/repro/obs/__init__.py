"""Unified observability: metrics, trace export, and causal spans.

The paper's whole argument is quantitative (Tables 1-2, Figures 2-4
are counter- and latency-derived), so the simulator carries one
first-class measurement surface instead of per-subsystem ad-hoc
counters:

* :class:`MetricsRegistry` -- cluster-wide named counters, gauges, and
  fixed-bucket virtual-time histograms, addressed by
  ``(subsystem, node, name)``.  Every :class:`repro.machine.Cluster`
  owns one as ``cluster.metrics``; the machine, LAPI, MPL, and GA
  layers wire themselves into it at init time.
* :func:`write_trace_jsonl` and friends -- export
  :class:`repro.sim.Tracer` records as JSONL
  (``time_us, node, subsystem, event, fields``), transparently
  gzipped for ``.gz`` paths.
* :class:`SpanRecorder` (:mod:`repro.obs.spans`) -- causal span
  tracing: every LAPI/MPL/GA operation as a tree of virtual-time
  spans (call/tx/wire/rx_dma/dispatch/handler phases), stitched
  across nodes by packet uids and message ids.
* :func:`decompose` / :func:`critical_path`
  (:mod:`repro.obs.profile`) -- per-phase latency decomposition in
  the shape of the paper's Table 1, plus the gating node/phase of
  each synchronization epoch.
* :func:`write_chrome_trace` (:mod:`repro.obs.chrome`) -- Chrome
  trace-event export, loadable in Perfetto, with cross-node flow
  events for wire hops.

Determinism is a hard guarantee: identical seeds produce identical
snapshots (and byte-identical rendered blocks / trace files / span
streams), serial or parallel.  Recording is purely observational --
arming any of it never perturbs virtual time.  See
``docs/observability.md`` for the schemas and the bench-harness flags
(``python -m repro.bench --metrics --trace-out FILE --spans
--spans-out FILE --decompose``).
"""

from .chrome import chrome_trace_events, write_chrome_trace
from .export import (coerce_value, jsonl_lines, record_to_dict,
                     write_trace_jsonl)
from .flight import FlightRecorder, write_flight_jsonl
from .metrics import (Counter, DEPTH_BUCKETS, Gauge, Histogram,
                      LATENCY_BUCKETS_US, MetricsRegistry)
from .pools import merge_pool_stats, pool_stats
from .profile import (MANDATORY_PHASES, PHASE_ORDER, SIZE_BUCKETS,
                      bucket_of, critical_path, decompose, percentile,
                      render_critical_path, render_decomposition)
from .sketch import DEFAULT_ALPHA, QuantileSketch, merge_sketches
from .slo import (BurnRatePolicy, ErrorRateSlo, GoodputSlo, LatencySlo,
                  SloEvaluator, default_rules)
from .spans import SPAN_SCHEMA_KEYS, Span, SpanRecorder, span_to_dict
from .timeline import (TelemetryConfig, TelemetryRuntime, Timeline,
                       DEFAULT_WINDOW_US)

__all__ = [
    "BurnRatePolicy",
    "Counter",
    "DEFAULT_ALPHA",
    "DEFAULT_WINDOW_US",
    "DEPTH_BUCKETS",
    "ErrorRateSlo",
    "FlightRecorder",
    "Gauge",
    "GoodputSlo",
    "Histogram",
    "LATENCY_BUCKETS_US",
    "LatencySlo",
    "MANDATORY_PHASES",
    "MetricsRegistry",
    "PHASE_ORDER",
    "QuantileSketch",
    "SIZE_BUCKETS",
    "SPAN_SCHEMA_KEYS",
    "SloEvaluator",
    "Span",
    "SpanRecorder",
    "TelemetryConfig",
    "TelemetryRuntime",
    "Timeline",
    "bucket_of",
    "chrome_trace_events",
    "coerce_value",
    "critical_path",
    "decompose",
    "default_rules",
    "jsonl_lines",
    "merge_pool_stats",
    "merge_sketches",
    "percentile",
    "pool_stats",
    "record_to_dict",
    "render_critical_path",
    "render_decomposition",
    "span_to_dict",
    "write_chrome_trace",
    "write_flight_jsonl",
    "write_trace_jsonl",
]
