"""Unified observability: metrics registry + structured trace export.

The paper's whole argument is quantitative (Tables 1-2, Figures 2-4
are counter- and latency-derived), so the simulator carries one
first-class measurement surface instead of per-subsystem ad-hoc
counters:

* :class:`MetricsRegistry` -- cluster-wide named counters, gauges, and
  fixed-bucket virtual-time histograms, addressed by
  ``(subsystem, node, name)``.  Every :class:`repro.machine.Cluster`
  owns one as ``cluster.metrics``; the machine, LAPI, MPL, and GA
  layers wire themselves into it at init time.
* :func:`write_trace_jsonl` and friends -- export
  :class:`repro.sim.Tracer` records as JSONL
  (``time_us, node, subsystem, event, fields``).

Determinism is a hard guarantee: identical seeds produce identical
snapshots (and byte-identical rendered blocks / trace files).  See
``docs/observability.md`` for the schema and the bench-harness flags
(``python -m repro.bench --metrics --trace-out FILE``).
"""

from .export import jsonl_lines, record_to_dict, write_trace_jsonl
from .metrics import (Counter, DEPTH_BUCKETS, Gauge, Histogram,
                      LATENCY_BUCKETS_US, MetricsRegistry)

__all__ = [
    "Counter",
    "DEPTH_BUCKETS",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_US",
    "MetricsRegistry",
    "jsonl_lines",
    "record_to_dict",
    "write_trace_jsonl",
]
