"""Causal span tracing: per-phase virtual-time spans with cross-node
causal edges.

The paper's core quantitative artifact is a latency *decomposition*
(Table 1 splits LAPI's 34 us one-sided latency into call overhead,
adapter/wire time, interrupt dispatch, and handler execution).  The
metrics registry records flat counters; this module records *where the
microseconds go*: every LAPI/MPL/GA operation becomes a tree of
virtual-time spans following the full lifecycle

    origin API call -> TX queue -> wire -> RX DMA ->
    interrupt-or-poll dispatch -> header handler ->
    completion handler -> counter update

with cross-node causality stitched through packet uids and message
ids (origin-registered side tables; no ambient per-timer context, so
the kernel's allocation-free ``call_at`` fast path is untouched).

Hard invariant: recording is *purely observational*.  Every hook reads
``sim.now`` and appends to host-level lists; none schedules events,
consumes RNG, or touches protocol state.  Arming a recorder therefore
cannot perturb virtual time -- ``--metrics`` blocks and figure outputs
are byte-identical with spans on or off (asserted by tests).

Spans are recorded per cluster (packet uids and span ids both restart
per cluster), so serial and ``--jobs N`` runs produce byte-identical
span streams -- the same parity contract the trace/metrics captures
already obey.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.packet import Packet

__all__ = ["Span", "SpanRecorder", "span_to_dict", "SPAN_SCHEMA_KEYS"]

#: Fixed serialization key order of one span dict (schema-stable).
SPAN_SCHEMA_KEYS = ("sid", "parent", "node", "subsystem", "op", "phase",
                    "t0_us", "t1_us", "dur_us", "flow", "fields")


class Span:
    """One closed virtual-time interval on one node.

    Attributes
    ----------
    sid, parent:
        Span id (deterministic creation order per cluster) and parent
        span id (None for roots).
    node:
        Node id the interval elapsed on.
    subsystem, op, phase:
        ``subsystem`` is the owning stack (``lapi``/``mpl``/``ga``),
        ``op`` the logical operation (``put``, ``send``, ``gfence``...),
        ``phase`` the lifecycle phase (``call``, ``tx``, ``wire``,
        ``rx_dma``, ``dispatch``, ``hdr_handler``, ``cmpl_handler``,
        ``counter_update``...; ``op`` for the end-to-end envelope).
    t0, t1:
        Start/end virtual time (us).
    flow:
        Packet uid for wire-hop spans (pairs the ``wire`` span at the
        source with the ``rx_dma`` span at the destination -- the
        Chrome-trace flow events).
    fields:
        Extra structured context (message bytes, uids, epochs...).
    """

    __slots__ = ("sid", "parent", "node", "subsystem", "op", "phase",
                 "t0", "t1", "flow", "fields")

    def __init__(self, sid: int, parent: Optional[int], node: int,
                 subsystem: str, op: str, phase: str, t0: float,
                 t1: float, flow: Optional[int],
                 fields: Optional[dict]) -> None:
        self.sid = sid
        self.parent = parent
        self.node = node
        self.subsystem = subsystem
        self.op = op
        self.phase = phase
        self.t0 = t0
        self.t1 = t1
        self.flow = flow
        self.fields = fields

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span#{self.sid} {self.subsystem}.{self.op}/{self.phase}"
                f" node={self.node} [{self.t0:.3f},{self.t1:.3f}]>")


def span_to_dict(span: Span) -> dict:
    """Serialize one span with fixed key order (byte-determinism)."""
    return {
        "sid": span.sid,
        "parent": span.parent,
        "node": span.node,
        "subsystem": span.subsystem,
        "op": span.op,
        "phase": span.phase,
        "t0_us": round(span.t0, 6),
        "t1_us": round(span.t1, 6),
        "dur_us": round(span.t1 - span.t0, 6),
        "flow": span.flow,
        "fields": span.fields if span.fields is not None else {},
    }


class _PacketTrack:
    """Side-table entry following one packet's lifecycle timestamps.

    Tracks are recycled through a per-recorder free list (see
    :meth:`SpanRecorder.retire_packet`): the reset in :meth:`reset`
    clears every field, so a reused track carries nothing of the
    previous packet's lifecycle.
    """

    __slots__ = ("parent", "op", "nbytes", "submit", "wire", "rx",
                 "queue")

    def __init__(self, parent: Optional[int], op: Optional[str],
                 nbytes: Optional[int]) -> None:
        self.reset(parent, op, nbytes)

    def reset(self, parent: Optional[int], op: Optional[str],
              nbytes: Optional[int]) -> None:
        self.parent = parent
        self.op = op
        self.nbytes = nbytes
        self.submit: Optional[float] = None
        self.wire: Optional[float] = None
        self.rx: Optional[float] = None
        self.queue: Optional[float] = None


class SpanRecorder:
    """Collects spans for one cluster; attach via ``Cluster(spans=...)``.

    The machine and protocol layers call the hooks below at phase
    boundaries; each hook is a pure host-side append.  Packet-phase
    spans (tx/wire/rx_dma/dispatch) are stitched to their originating
    operation through :meth:`bind_packets` side tables keyed by packet
    uid; target-side handler spans parent through message keys
    (``("lapi", src, msg_id)`` / ``("mpl", src, msg_seq)``).
    """

    def __init__(self, limit: int = 2_000_000) -> None:
        self.records: list[Span] = []
        self.limit = limit
        #: Spans discarded past ``limit`` (cap keeps full-sweep runs
        #: bounded; the count makes truncation visible, never silent).
        self.suppressed = 0
        self._sid = 0
        self._open: dict[int, Span] = {}
        self._pkt: dict[int, _PacketTrack] = {}
        self._msg: dict[tuple, tuple[Optional[int], int]] = {}
        #: Free list of retired packet tracks (reset-on-acquire).
        self._track_free: list[_PacketTrack] = []
        #: Track pool counters (obs export; never in --metrics blocks).
        self.tracks_created = 0
        self.tracks_recycled = 0

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # span primitives
    # ------------------------------------------------------------------
    def open(self, node: int, subsystem: str, op: str, t0: float, *,
             phase: str = "op", parent: Optional[int] = None,
             flow: Optional[int] = None, **fields: Any) -> int:
        """Open a span; returns its sid (close it with :meth:`close`)."""
        self._sid += 1
        sid = self._sid
        self._open[sid] = Span(sid, parent, node, subsystem, op, phase,
                               t0, t0, flow, fields or None)
        return sid

    def close(self, sid: int, t1: float, **fields: Any) -> None:
        """Close an open span at ``t1`` (extra fields merge in)."""
        span = self._open.pop(sid, None)
        if span is None:
            return
        span.t1 = t1
        if fields:
            if span.fields is None:
                span.fields = fields
            else:
                span.fields.update(fields)
        self._append(span)

    def emit(self, node: int, subsystem: str, op: str, phase: str,
             t0: float, t1: float, *, parent: Optional[int] = None,
             flow: Optional[int] = None, **fields: Any) -> int:
        """Record an already-closed span; returns its sid."""
        self._sid += 1
        sid = self._sid
        self._append(Span(sid, parent, node, subsystem, op, phase,
                          t0, t1, flow, fields or None))
        return sid

    def _append(self, span: Span) -> None:
        if len(self.records) >= self.limit:
            self.suppressed += 1
            return
        self.records.append(span)

    # ------------------------------------------------------------------
    # causal side tables (origin registration)
    # ------------------------------------------------------------------
    def bind_packets(self, packets: Iterable["Packet"],
                     parent: Optional[int], op: str, nbytes: int,
                     msg_key: Optional[tuple] = None) -> None:
        """Register a message's packets under their originating span.

        Subsequent adapter/switch hooks attribute each packet's
        tx/wire/rx_dma/dispatch phases to ``op`` with ``parent`` as the
        causal parent; ``msg_key`` additionally lets the *target* side
        (header/completion handlers) find the origin span.
        """
        for pkt in packets:
            self._pkt[pkt.uid] = self._new_track(parent, op, nbytes)
        if msg_key is not None:
            self._msg[msg_key] = (parent, nbytes)

    def bind_packet(self, pkt: "Packet", parent: Optional[int], op: str,
                    nbytes: int = 0) -> None:
        """Register a single (usually control) packet."""
        self._pkt[pkt.uid] = self._new_track(parent, op, nbytes)

    def _new_track(self, parent: Optional[int], op: Optional[str],
                   nbytes: Optional[int]) -> _PacketTrack:
        free = self._track_free
        if free:
            track = free.pop()
            track.reset(parent, op, nbytes)
            return track
        self.tracks_created += 1
        return _PacketTrack(parent, op, nbytes)

    def retire_packet(self, uid: int) -> None:
        """Drop a finished packet's track and recycle the record.

        Called when a packet's lifecycle is provably over (the
        transport consumed its acknowledgement); keeps the side table
        bounded on long runs instead of growing one entry per packet
        ever sent.  Unknown uids no-op.
        """
        track = self._pkt.pop(uid, None)
        if track is not None:
            self.tracks_recycled += 1
            self._track_free.append(track)

    def pool_stats(self) -> dict:
        """Track-pool counters for the BENCH_PERF ``pools`` block."""
        return {
            "tracks_created": self.tracks_created,
            "tracks_recycled": self.tracks_recycled,
            "tracks_live": len(self._pkt),
            "free": len(self._track_free),
        }

    def origin_of(self, pkt: "Packet") -> Optional[int]:
        """Originating span sid of a bound packet (None if unbound)."""
        track = self._pkt.get(pkt.uid)
        return track.parent if track is not None else None

    def origin_of_uid(self, uid: Optional[int]) -> Optional[int]:
        """Originating span sid of a bound packet uid."""
        if uid is None:
            return None
        track = self._pkt.get(uid)
        return track.parent if track is not None else None

    def message_origin(self, key: tuple) -> Optional[int]:
        """Origin span sid registered for a message key."""
        entry = self._msg.get(key)
        return entry[0] if entry is not None else None

    def message_bytes(self, key: tuple) -> Optional[int]:
        """Message byte count registered for a message key."""
        entry = self._msg.get(key)
        return entry[1] if entry is not None else None

    # ------------------------------------------------------------------
    # packet lifecycle hooks (machine layer)
    # ------------------------------------------------------------------
    def _track(self, pkt: "Packet") -> _PacketTrack:
        track = self._pkt.get(pkt.uid)
        if track is None:
            # Unbound packet (transport ack, barrier token...): track it
            # anyway so its phases still appear, attributed to its kind.
            track = self._new_track(None, None, None)
            self._pkt[pkt.uid] = track
        return track

    def packet_submitted(self, pkt: "Packet", now: float) -> None:
        """Packet entered the adapter TX FIFO (origin node)."""
        self._track(pkt).submit = now

    def packet_tx_done(self, pkt: "Packet", now: float) -> None:
        """Packet finished serializing onto the injection link."""
        track = self._track(pkt)
        t0 = track.submit if track.submit is not None else now
        self.emit(pkt.src, pkt.proto, track.op or str(pkt.kind), "tx",
                  t0, now, parent=track.parent, uid=pkt.uid,
                  bytes=track.nbytes, pkt_bytes=pkt.size)
        track.wire = now

    def packet_delivered(self, pkt: "Packet", now: float) -> None:
        """Packet arrived at the destination adapter (wire hop done)."""
        track = self._track(pkt)
        t0 = track.wire if track.wire is not None else now
        self.emit(pkt.src, pkt.proto, track.op or str(pkt.kind), "wire",
                  t0, now, parent=track.parent, flow=pkt.uid,
                  uid=pkt.uid, bytes=track.nbytes, pkt_bytes=pkt.size,
                  dst=pkt.dst)
        track.rx = now

    def packet_lost(self, pkt: "Packet", now: float) -> None:
        """Packet dropped by the fabric (never arrives)."""
        track = self._track(pkt)
        t0 = track.wire if track.wire is not None else now
        self.emit(pkt.src, pkt.proto, track.op or str(pkt.kind), "wire",
                  t0, now, parent=track.parent, uid=pkt.uid,
                  bytes=track.nbytes, pkt_bytes=pkt.size, dst=pkt.dst,
                  lost=True)

    def packet_enqueued(self, pkt: "Packet", now: float) -> None:
        """Receive DMA complete; packet demuxed toward an RX FIFO."""
        track = self._track(pkt)
        t0 = track.rx if track.rx is not None else now
        self.emit(pkt.dst, pkt.proto, track.op or str(pkt.kind),
                  "rx_dma", t0, now, parent=track.parent, flow=pkt.uid,
                  uid=pkt.uid, bytes=track.nbytes, pkt_bytes=pkt.size)
        track.queue = now

    def packet_dropped(self, pkt: "Packet", now: float) -> None:
        """Packet dropped at a full RX FIFO (reliability recovers it)."""
        track = self._track(pkt)
        t0 = track.queue if track.queue is not None else now
        self.emit(pkt.dst, pkt.proto, track.op or str(pkt.kind), "drop",
                  t0, now, parent=track.parent, uid=pkt.uid,
                  bytes=track.nbytes, pkt_bytes=pkt.size)

    def packet_corrupted(self, pkt: "Packet", now: float) -> None:
        """Packet discarded by the receive-side CRC check (fault
        injection): it paid the full wire + receive-DMA path before
        dying, unlike a fabric loss."""
        track = self._track(pkt)
        t0 = track.rx if track.rx is not None else now
        self.emit(pkt.dst, pkt.proto, track.op or str(pkt.kind), "drop",
                  t0, now, parent=track.parent, uid=pkt.uid,
                  bytes=track.nbytes, pkt_bytes=pkt.size, crc=True)

    def packet_dispatched(self, pkt: "Packet", now: float) -> None:
        """Dispatcher picked the packet up (queue wait + demux done)."""
        track = self._track(pkt)
        t0 = track.queue if track.queue is not None else now
        self.emit(pkt.dst, pkt.proto, track.op or str(pkt.kind),
                  "dispatch", t0, now, parent=track.parent, uid=pkt.uid,
                  bytes=track.nbytes, pkt_bytes=pkt.size)

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def drain(self) -> list[Span]:
        """All closed spans in canonical ``(t0, sid)`` order."""
        return sorted(self.records, key=lambda s: (s.t0, s.sid))

    def span_dicts(self) -> list[dict]:
        """Serialized spans in canonical order (capture shipping)."""
        return [span_to_dict(s) for s in self.drain()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SpanRecorder {len(self.records)} spans,"
                f" {len(self._open)} open,"
                f" {self.suppressed} suppressed>")
