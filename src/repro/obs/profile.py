"""Per-phase latency decomposition and critical-path extraction.

Reduces span streams (see :mod:`repro.obs.spans`) into the shape of the
paper's Table 1: for each subsystem and lifecycle phase, the count,
mean, p50, and p99 of virtual-time duration, additionally broken down
by message-size bucket.  A second reducer extracts the critical path of
collective synchronization (gfence/barrier epochs): which node arrived
last and which phase dominated its window.

Everything here is pure post-processing over serialized span dicts --
deterministic (nearest-rank percentiles, fixed orderings), no NumPy,
no simulator access -- so serial and parallel sweeps reduce to
byte-identical tables.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["PHASE_ORDER", "SIZE_BUCKETS", "bucket_of", "percentile",
           "decompose", "render_decomposition", "critical_path",
           "render_critical_path"]

#: Canonical phase order: the paper's Table-1 decomposition first
#: (call overhead / TX / wire / RX-DMA / dispatch / header handler /
#: completion handler), then the auxiliary phases, then ``op`` (the
#: end-to-end envelope).  Phases outside this list sort after it.
PHASE_ORDER = ["call", "tx", "wire", "rx_dma", "dispatch",
               "hdr_handler", "cmpl_handler", "counter_update", "copy",
               "match", "unexpected_wait", "reorder_wait", "rndv_wait",
               "drop", "op"]

#: Always printed even with zero samples (the Table-1 shape).
MANDATORY_PHASES = PHASE_ORDER[:7]

#: Message-size buckets: (upper bound inclusive, label).
SIZE_BUCKETS = [(0, "0B"), (256, "<=256B"), (4096, "<=4KB"),
                (65536, "<=64KB"), (1048576, "<=1MB")]

_PHASE_RANK = {p: i for i, p in enumerate(PHASE_ORDER)}


def bucket_of(nbytes: Optional[int]) -> str:
    """Size-bucket label for a message byte count (None = control)."""
    if nbytes is None:
        return "ctrl"
    for bound, label in SIZE_BUCKETS:
        if nbytes <= bound:
            return label
    return ">1MB"


def percentile(sorted_vals: list[float], q: float) -> float:
    """Deterministic nearest-rank percentile of pre-sorted values."""
    n = len(sorted_vals)
    if n == 0:
        raise ValueError("percentile of an empty sequence")
    idx = max(0, min(n - 1, math.ceil(q * n) - 1))
    return sorted_vals[idx]


def _phase_key(phase: str) -> tuple:
    return (_PHASE_RANK.get(phase, len(PHASE_ORDER)), phase)


def _stats(durations: list[float]) -> dict:
    vals = sorted(durations)
    return {
        "count": len(vals),
        "total_us": round(sum(vals), 6),
        "mean_us": round(sum(vals) / len(vals), 6),
        "p50_us": round(percentile(vals, 0.50), 6),
        "p99_us": round(percentile(vals, 0.99), 6),
    }


def decompose(spans: Iterable[dict]) -> dict:
    """Reduce span dicts to per-(subsystem, phase, bucket) statistics.

    Returns ``{subsystem: {phase: {"all": stats, "buckets": {label:
    stats}}}}`` with subsystems sorted and phases in
    :data:`PHASE_ORDER`.  Input spans are the serialized form
    (:func:`repro.obs.spans.span_to_dict`).
    """
    acc: dict[tuple[str, str, str], list[float]] = {}
    for sp in spans:
        fields = sp.get("fields") or {}
        key = (sp["subsystem"], sp["phase"],
               bucket_of(fields.get("bytes")))
        acc.setdefault(key, []).append(sp["dur_us"])

    out: dict[str, dict] = {}
    subsystems = sorted({k[0] for k in acc})
    for sub in subsystems:
        phases = sorted({k[1] for k in acc if k[0] == sub},
                        key=_phase_key)
        sub_out: dict[str, dict] = {}
        for phase in phases:
            buckets = {k[2]: _stats(v) for k, v in acc.items()
                       if k[0] == sub and k[1] == phase}
            every = [d for k, v in acc.items()
                     if k[0] == sub and k[1] == phase for d in v]
            sub_out[phase] = {"all": _stats(every), "buckets": buckets}
        out[sub] = sub_out
    return out


_BUCKET_ORDER = {label: i for i, (_, label)
                 in enumerate(SIZE_BUCKETS + [(None, ">1MB"),
                                              (None, "ctrl")])}


def render_decomposition(spans: Iterable[dict],
                         title: str = "") -> str:
    """Text table of the per-phase decomposition (Table-1 shape).

    One block per subsystem: the seven mandatory phases always print
    (dashes when unobserved) so the decomposition keeps the paper's
    shape even for workloads that skip phases; observed extra phases
    follow.  A second sub-table breaks phases down by message-size
    bucket when more than one bucket was observed.
    """
    stats = decompose(spans)
    lines: list[str] = []
    if title:
        lines.append(f"-- phase decomposition: {title} --")
    if not stats:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    hdr = (f"  {'phase':<14} {'count':>7} {'mean_us':>10}"
           f" {'p50_us':>10} {'p99_us':>10} {'total_us':>12}")
    for sub, phases in stats.items():
        nspans = sum(p["all"]["count"] for p in phases.values())
        lines.append(f"subsystem {sub} ({nspans} spans)")
        lines.append(hdr)
        printed = set()
        for phase in MANDATORY_PHASES:
            entry = phases.get(phase)
            printed.add(phase)
            if entry is None:
                lines.append(f"  {phase:<14} {0:>7} {'-':>10} {'-':>10}"
                             f" {'-':>10} {'-':>12}")
            else:
                lines.append(_stat_row(phase, entry["all"]))
        for phase, entry in phases.items():
            if phase not in printed:
                lines.append(_stat_row(phase, entry["all"]))
        bucket_rows = []
        for phase, entry in phases.items():
            labels = set(entry["buckets"])
            if labels == {"ctrl"} or len(labels) < 2:
                continue
            for label in sorted(labels,
                                key=lambda b: _BUCKET_ORDER.get(b, 99)):
                bucket_rows.append(
                    _stat_row(f"{phase}[{label}]",
                              entry["buckets"][label]))
        if bucket_rows:
            lines.append("  by message-size bucket:")
            lines.extend(bucket_rows)
    return "\n".join(lines)


def _stat_row(label: str, s: dict) -> str:
    return (f"  {label:<14} {s['count']:>7} {s['mean_us']:>10.3f}"
            f" {s['p50_us']:>10.3f} {s['p99_us']:>10.3f}"
            f" {s['total_us']:>12.3f}")


# ----------------------------------------------------------------------
# critical path of synchronization epochs
# ----------------------------------------------------------------------
def critical_path(spans: Iterable[dict]) -> list[dict]:
    """Per-epoch critical path of collective fences/barriers.

    Groups ``gfence`` op spans by barrier epoch; for each epoch reports
    the node whose fence finished last (the gate) and the phase that
    accumulated the most virtual time on that node during the epoch's
    window -- i.e. *which node and which phase gated completion*.
    """
    span_list = list(spans)
    epochs: dict[int, list[dict]] = {}
    for sp in span_list:
        if sp["phase"] != "op" or sp["op"] != "gfence":
            continue
        fields = sp.get("fields") or {}
        epoch = fields.get("epoch")
        if epoch is None:
            continue
        epochs.setdefault(epoch, []).append(sp)

    out = []
    for epoch in sorted(epochs):
        group = epochs[epoch]
        enter = min(sp["t0_us"] for sp in group)
        exit_ = max(sp["t1_us"] for sp in group)
        gate = max(group, key=lambda sp: (sp["t1_us"], -sp["node"]))
        phase_totals: dict[str, float] = {}
        for sp in span_list:
            if (sp["node"] == gate["node"] and sp["phase"] != "op"
                    and sp["t1_us"] > enter and sp["t0_us"] < exit_):
                phase_totals[sp["phase"]] = (
                    phase_totals.get(sp["phase"], 0.0) + sp["dur_us"])
        if phase_totals:
            gate_phase = max(sorted(phase_totals),
                             key=lambda p: phase_totals[p])
            gate_phase_us = round(phase_totals[gate_phase], 6)
        else:
            gate_phase, gate_phase_us = "idle", 0.0
        out.append({
            "epoch": epoch,
            "nodes": len(group),
            "enter_us": round(enter, 6),
            "exit_us": round(exit_, 6),
            "duration_us": round(exit_ - enter, 6),
            "gate_node": gate["node"],
            "gate_exit_us": round(gate["t1_us"], 6),
            "gate_phase": gate_phase,
            "gate_phase_us": gate_phase_us,
        })
    return out


def render_critical_path(spans: Iterable[dict]) -> str:
    """Text block of the per-epoch critical path ('' if no epochs)."""
    rows = critical_path(spans)
    if not rows:
        return ""
    lines = ["  critical path (gfence epochs):",
             f"  {'epoch':>5} {'nodes':>5} {'duration_us':>12}"
             f" {'gate_node':>9} {'gate_phase':>14} {'phase_us':>10}"]
    for r in rows:
        lines.append(
            f"  {r['epoch']:>5} {r['nodes']:>5}"
            f" {r['duration_us']:>12.3f} {r['gate_node']:>9}"
            f" {r['gate_phase']:>14} {r['gate_phase_us']:>10.3f}")
    return "\n".join(lines)
