"""Virtual-time windowed telemetry: per-window series over every metric.

The registry (:mod:`repro.obs.metrics`) answers "what happened by the
end of the run"; the paper's figures -- and every serving-style SLO --
need "what happened *when*".  This module resolves every registered
counter, gauge, and histogram over fixed-width virtual-time windows:

* window ``k`` covers ``[k * window_us, (k + 1) * window_us)`` --
  an observation exactly on an edge belongs to the *later* window;
* counters record the per-window **delta** (provably monotone:
  :meth:`repro.obs.Counter.inc` rejects negative increments);
* gauges record the last value set within the window;
* histograms record a per-window :class:`~repro.obs.sketch.QuantileSketch`
  (p50/p99/p99.9 per window) plus a cumulative whole-run sketch.

Recording is **push-based**: instruments armed by
:meth:`repro.obs.MetricsRegistry.attach_timeline` route each update
here together with the current virtual time, so no window-boundary
timers exist -- the kernel's event stream, ``events_processed``, and
every virtual-time observable are untouched (the zero-perturbation
contract), and a disarmed run pays exactly one ``is None`` test per
instrument update.  Windows *close* when any later-window update
arrives (virtual time is monotone, so a closed window can never
receive more data); close listeners (the SLO evaluator,
:mod:`repro.obs.slo`) run at that point with the window's assembled
values.

Memory is bounded: each series keeps its trailing ``ring_windows``
windows in a ring (empty windows occupy no ring slot), so 4096-node
``--scale`` runs stay flat-memory no matter how long they run.

Everything here is a pure function of the observation stream, so
serial and ``--jobs N`` runs produce byte-identical snapshots -- the
``--timeline-out`` parity CI enforces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import SimulationError
from .sketch import DEFAULT_ALPHA, QuantileSketch, merge_sketches

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator

__all__ = ["TelemetryConfig", "Timeline", "TelemetryRuntime",
           "DEFAULT_WINDOW_US", "DEFAULT_RING_WINDOWS"]

#: Default window width: 100 virtual microseconds resolves the chaos
#: bench's few-thousand-us runs into dozens of points while keeping
#: Figure-2-scale runs to a few hundred windows.
DEFAULT_WINDOW_US = 100.0

#: Default trailing-window ring depth per series.
DEFAULT_RING_WINDOWS = 512

#: Quantiles reported in timeline snapshots.
_SNAPSHOT_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


@dataclass(frozen=True)
class TelemetryConfig:
    """Declarative arming record for the virtual-time telemetry stack.

    Frozen and picklable: the sweep engine ships it to ``--jobs N``
    workers verbatim, so every worker arms exactly the parent's
    configuration (the byte-identity contract).  ``slo`` holds
    :mod:`repro.obs.slo` rule records; an empty tuple arms the
    timeline and flight recorder without any alerting.
    """

    window_us: float = DEFAULT_WINDOW_US
    ring_windows: int = DEFAULT_RING_WINDOWS
    sketch_alpha: float = DEFAULT_ALPHA
    slo: tuple = ()
    flight_entries: int = 64
    flight_dumps: int = 8

    def validate(self) -> None:
        if self.window_us <= 0.0:
            raise SimulationError(
                f"telemetry window_us must be > 0, got {self.window_us}")
        if self.ring_windows < 1:
            raise SimulationError(
                f"telemetry ring_windows must be >= 1,"
                f" got {self.ring_windows}")
        if self.flight_entries < 1 or self.flight_dumps < 0:
            raise SimulationError(
                "telemetry flight_entries must be >= 1 and"
                " flight_dumps >= 0")


def _node_key(node: Optional[int]) -> str:
    return "-" if node is None else str(node)


class _Series:
    """Shared shape of one windowed series.

    ``ring`` holds ``(window_index, value)`` for the trailing non-empty
    windows; ``cur_w``/``cur`` is the open (accumulating) cell.
    """

    __slots__ = ("timeline", "key", "ring", "cur_w", "cur")
    kind = "series"

    def __init__(self, timeline: "Timeline", key: tuple) -> None:
        self.timeline = timeline
        self.key = key  # (subsystem, node_key, name)
        self.ring: deque = deque(maxlen=timeline.ring_windows)
        self.cur_w: Optional[int] = None
        self.cur: Any = None

    def _open(self, w: int) -> None:
        """Route an update in window ``w`` through the window machinery."""
        if self.cur_w is not None and w == self.cur_w:
            return
        self.timeline._advance(w)
        if self.cur_w is not None:
            # _advance closed every window before w, including ours.
            self.ring.append((self.cur_w, self._close()))
        self.cur_w = w
        self.cur = self._fresh()

    def flush(self, upto_w: int, sink: Optional[dict]) -> None:
        """Close the open cell if its window precedes ``upto_w``."""
        if self.cur_w is None or self.cur_w >= upto_w:
            return
        value = self._close()
        self.ring.append((self.cur_w, value))
        if sink is not None:
            sink.setdefault(self.cur_w, {})[self.key] = (self.kind,
                                                         value)
        self.cur_w = None
        self.cur = None

    # Overridden per kind --------------------------------------------------
    def _fresh(self) -> Any:
        raise NotImplementedError

    def _close(self) -> Any:
        return self.cur

    def window_values(self) -> list:
        """Serialized ``[window_index, value]`` pairs (ring order)."""
        return [[w, v] for w, v in self.ring]

    def snapshot(self) -> dict:
        sub, node, name = self.key
        return {"subsystem": sub, "node": node, "name": name,
                "kind": self.kind, "windows": self.window_values()}


class _CounterSeries(_Series):
    """Per-window deltas of one monotone counter."""

    __slots__ = ()
    kind = "counter"

    def _fresh(self) -> int:
        return 0

    def add(self, n: int) -> None:
        self._open(self.timeline.window_of(self.timeline.sim.now))
        self.cur += n


class _GaugeSeries(_Series):
    """Last value set per window."""

    __slots__ = ()
    kind = "gauge"

    def _fresh(self) -> float:
        return 0.0

    def set(self, value: float) -> None:
        self._open(self.timeline.window_of(self.timeline.sim.now))
        self.cur = value


class _HistSeries(_Series):
    """Per-window quantile sketches plus a cumulative run sketch."""

    __slots__ = ("cumulative",)
    kind = "hist"

    def __init__(self, timeline: "Timeline", key: tuple) -> None:
        super().__init__(timeline, key)
        self.cumulative = QuantileSketch(alpha=timeline.sketch_alpha)

    def _fresh(self) -> QuantileSketch:
        return QuantileSketch(alpha=self.timeline.sketch_alpha)

    def observe(self, value: float) -> None:
        self._open(self.timeline.window_of(self.timeline.sim.now))
        self.cur.observe(value)
        self.cumulative.observe(value)

    def window_values(self) -> list:
        return [[w, v.to_dict()] for w, v in self.ring]

    def snapshot(self) -> dict:
        out = super().snapshot()
        out["cumulative"] = self.cumulative.to_dict()
        quantiles = {}
        for label, q in _SNAPSHOT_QUANTILES:
            value = self.cumulative.quantile(q)
            quantiles[label] = (None if value is None
                                else round(value, 6))
        out["quantiles"] = quantiles
        return out


_SERIES_KINDS = {"counter": _CounterSeries, "gauge": _GaugeSeries,
                 "hist": _HistSeries}


class Timeline:
    """All windowed series of one cluster.

    Series exist for (a) every instrument the metrics registry armed
    via :meth:`repro.obs.MetricsRegistry.attach_timeline` and (b)
    timeline-only streams components request directly (payload-byte
    goodput, per-window retransmit counts) -- streams that have no
    end-of-run metric but matter per window.
    """

    def __init__(self, sim: "Simulator",
                 config: Optional[TelemetryConfig] = None) -> None:
        config = config if config is not None else TelemetryConfig()
        config.validate()
        self.sim = sim
        self.config = config
        self.window_us = config.window_us
        self.ring_windows = config.ring_windows
        self.sketch_alpha = config.sketch_alpha
        #: (kind, subsystem, node_key, name) -> series
        self._series: dict[tuple, _Series] = {}
        #: First window index not yet closed; None before any record.
        self._watermark: Optional[int] = None
        #: Highest window index that received data (None when empty).
        self._last_w: Optional[int] = None
        #: Close listeners ``fn(window_index, window_end_us, values)``
        #: where ``values`` maps series key -> (kind, closed value).
        self._listeners: list[Callable[[int, float, dict], None]] = []
        self._finalized = False

    # ------------------------------------------------------------------
    def window_of(self, now: float) -> int:
        """Window index of virtual instant ``now`` (edges round down
        into the later window: ``t == k * window_us`` is window k)."""
        return int(now // self.window_us)

    def window_end_us(self, w: int) -> float:
        return (w + 1) * self.window_us

    def add_close_listener(
            self, fn: Callable[[int, float, dict], None]) -> None:
        self._listeners.append(fn)

    # ------------------------------------------------------------------
    def series(self, kind: str, subsystem: str, name: str,
               node: Optional[int] = None) -> _Series:
        """Get-or-create the ``kind`` series for one stream."""
        cls = _SERIES_KINDS.get(kind)
        if cls is None:
            raise SimulationError(f"unknown timeline series kind"
                                  f" {kind!r}")
        key = (kind, subsystem, _node_key(node), name)
        series = self._series.get(key)
        if series is None:
            series = cls(self, key[1:])
            self._series[key] = series
        elif type(series) is not cls:  # pragma: no cover - defensive
            raise SimulationError(
                f"timeline stream {key[1:]} already registered as"
                f" {series.kind}")
        return series

    def stream_counter(self, subsystem: str, name: str,
                       node: Optional[int] = None) -> _CounterSeries:
        """A timeline-only counter stream (no registry metric)."""
        return self.series("counter", subsystem, name, node)

    # ------------------------------------------------------------------
    def _advance(self, w: int) -> None:
        """Close every window preceding ``w`` and notify listeners.

        Virtual time is monotone, so once an update lands in window
        ``w`` no earlier window can receive data -- they are final.
        Listeners (SLO evaluation, and through it flight-recorder
        dumps) therefore see each window exactly once, immediately
        after the virtual instant that sealed it.
        """
        if self._last_w is None or w > self._last_w:
            self._last_w = w
        mark = self._watermark
        if mark is None:
            self._watermark = w
            return
        if w <= mark:
            if w < mark:  # pragma: no cover - defensive
                raise SimulationError(
                    f"timeline update in closed window {w}"
                    f" (watermark {mark}): virtual time ran backwards?")
            return
        sink: Optional[dict] = {} if self._listeners else None
        for series in self._series.values():
            series.flush(w, sink)
        if self._listeners:
            for closed in range(mark, w):
                values = sink.get(closed, {}) if sink else {}
                end_us = self.window_end_us(closed)
                for fn in self._listeners:
                    fn(closed, end_us, values)
        self._watermark = w

    def finalize(self) -> None:
        """Close the trailing (possibly partial) window.

        Called once the run is over, before any snapshot: the final
        window is sealed by the end of the run rather than by a later
        update, and listeners see it like any other (its values cover
        only the part of the window the run reached).  Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        if self._last_w is None:
            return
        self._advance(self._last_w + 1)

    # ------------------------------------------------------------------
    def counter_windows(self, subsystem: str, name: str,
                        node: Optional[int] = None) -> list:
        """``[window_index, delta]`` pairs of one counter stream
        (empty when the stream never recorded)."""
        key = ("counter", subsystem, _node_key(node), name)
        series = self._series.get(key)
        return series.window_values() if series is not None else []

    def merged_hist(self, subsystem: str, name: str) -> QuantileSketch:
        """Cumulative sketch of one histogram stream merged across
        every node -- the cross-node quantile view."""
        parts = [s.cumulative for (kind, sub, _, nm), s
                 in sorted(self._series.items())
                 if kind == "hist" and sub == subsystem and nm == name]
        return merge_sketches(parts, alpha=self.sketch_alpha)

    def snapshot(self) -> dict:
        """Deterministic picklable form of every series.

        Finalizes first (the trailing window is sealed), then emits
        series sorted by (subsystem, node, name, kind) -- the order
        ``--timeline-out`` writes and CI byte-compares.
        """
        self.finalize()
        entries = sorted(
            self._series.items(),
            key=lambda item: (item[0][1], self._node_sort(item[0][2]),
                              item[0][3], item[0][0]))
        return {"window_us": self.window_us,
                "series": [series.snapshot() for _, series in entries]}

    @staticmethod
    def _node_sort(key: str):
        return (0, int(key)) if key != "-" and key.lstrip("-").isdigit() \
            else (1, key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Timeline {len(self._series)} series,"
                f" window={self.window_us}us,"
                f" watermark={self._watermark}>")


@dataclass
class TelemetryRuntime:
    """The armed telemetry stack of one cluster.

    Built by :class:`repro.machine.Cluster` when a
    :class:`TelemetryConfig` is passed: the timeline attaches to the
    cluster's metrics registry (arming every instrument, present and
    future), the flight recorder hangs off ``sim.flight`` for the
    reliability/fault trigger points, and the SLO evaluator -- when
    rules are configured -- subscribes to window closes and routes its
    alerts into the flight recorder.
    """

    config: TelemetryConfig
    timeline: Timeline
    flight: Any = None
    slo: Any = None

    @classmethod
    def install(cls, config: TelemetryConfig, sim: "Simulator",
                metrics) -> "TelemetryRuntime":
        from .flight import FlightRecorder
        from .slo import SloEvaluator
        config.validate()
        timeline = Timeline(sim, config)
        metrics.attach_timeline(timeline)
        flight = FlightRecorder(sim, entries=config.flight_entries,
                                max_dumps=config.flight_dumps)
        sim.flight = flight
        slo = None
        if config.slo:
            slo = SloEvaluator(config.slo, timeline, flight=flight)
        return cls(config=config, timeline=timeline, flight=flight,
                   slo=slo)

    def snapshot(self) -> dict:
        """Picklable telemetry capture of one finished cluster:
        the windowed series, the SLO alert log, and every flight-
        recorder dump, all in deterministic order."""
        out = {"timeline": self.timeline.snapshot()}
        out["alerts"] = (self.slo.alert_dicts()
                         if self.slo is not None else [])
        out["flight"] = (self.flight.dump_dicts()
                        if self.flight is not None else [])
        return out
