"""Fault-triggered flight recorder: a bounded black box per node.

When something goes wrong mid-run -- an SLO page, a
``PeerUnreachableError`` surfacing through the error handler, a fault
clause engaging -- the interesting evidence is what each node was
doing in the *moments before*, and by the end of the run that context
is gone.  This module keeps a bounded ring of recent notes per node
(retransmit timer fires, fault verdicts, delivery stalls) and, when a
trigger fires, snapshots every ring into a dump: the aircraft
flight-recorder pattern.

Design constraints, same as the rest of ``repro.obs``:

* **Zero cost disarmed.**  The recorder hangs off ``sim.flight``
  (``None`` by default); hot paths pay one ``is None`` test.
* **Bounded.**  Rings hold ``entries`` notes per node; at most
  ``max_dumps`` dumps are kept; each distinct trigger ``key`` fires
  once (a retransmit storm produces one dump, not thousands).
* **Deterministic.**  Notes carry a global sequence number assigned in
  simulation order (the kernel is serial per cluster), dumps merge
  rings by that sequence, and :func:`write_flight_jsonl` emits sorted
  JSON -- so serial and ``--jobs N`` runs produce byte-identical
  black boxes.

Dump JSONL format (one JSON object per line, sorted keys)::

    {"detail": {...}, "entries": [...], "reason": "...",
     "seq": <dump #>, "t_us": <virtual trigger time>}

where each entry is ``{"event", "node", "seq", "subsystem", "t_us",
...fields}``.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import TYPE_CHECKING, Optional

from ..errors import SimulationError
from .export import coerce_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator

__all__ = ["FlightRecorder", "write_flight_jsonl"]


class FlightRecorder:
    """Per-node rings of recent notes plus the triggered dumps."""

    def __init__(self, sim: "Simulator", entries: int = 64,
                 max_dumps: int = 8) -> None:
        if entries < 1:
            raise SimulationError(
                f"flight recorder needs entries >= 1, got {entries}")
        self.sim = sim
        self.entries = entries
        self.max_dumps = max_dumps
        self._rings: dict = {}
        self._seq = 0
        self._fired: set = set()
        self.dumps: list[dict] = []
        self.notes_total = 0
        self.suppressed = 0

    # ------------------------------------------------------------------
    def note(self, node: Optional[int], subsystem: str, event: str,
             **fields) -> None:
        """Record one breadcrumb on ``node``'s ring.

        ``fields`` must be JSON-safe primitives; they are emitted
        verbatim into dumps.  The core keys (``seq``/``t_us``/``node``/
        ``subsystem``/``event``) belong to the recorder and win over
        same-named fields -- ``seq`` in particular is the global merge
        key, so a caller's packet sequence must ride under another
        name.  Old notes fall off the ring -- this is the black box,
        not a trace.
        """
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self.entries)
        self._seq += 1
        self.notes_total += 1
        entry = dict(fields) if fields else {}
        entry.update(seq=self._seq, t_us=round(self.sim.now, 3),
                     node=node, subsystem=subsystem, event=event)
        ring.append(entry)

    # ------------------------------------------------------------------
    def trigger(self, reason: str, key=None, **detail) -> bool:
        """Snapshot every ring into a dump.

        ``key`` deduplicates: a given key fires at most once (pass
        ``None`` to always fire).  Returns ``True`` when a dump was
        captured, ``False`` when suppressed (duplicate key or the
        ``max_dumps`` cap)."""
        if key is not None:
            if key in self._fired:
                self.suppressed += 1
                return False
            self._fired.add(key)
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return False
        entries = sorted((entry for ring in self._rings.values()
                          for entry in ring),
                         key=lambda entry: entry["seq"])
        self.dumps.append({
            "seq": len(self.dumps),
            "t_us": round(self.sim.now, 3),
            "reason": reason,
            "detail": {k: coerce_value(v)
                       for k, v in sorted(detail.items())},
            "entries": [dict(entry) for entry in entries],
        })
        return True

    # ------------------------------------------------------------------
    def dump_dicts(self) -> list[dict]:
        """The captured dumps (JSON-safe, deterministic order)."""
        return [dict(dump) for dump in self.dumps]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FlightRecorder nodes={len(self._rings)}"
                f" notes={self.notes_total} dumps={len(self.dumps)}>")


def write_flight_jsonl(dumps: list, path: str) -> int:
    """Write flight dumps as deterministic JSONL (one dump per line,
    sorted keys, fixed separators).  Returns the line count."""
    with io.open(path, "w", encoding="utf-8", newline="\n") as fh:
        for dump in dumps:
            fh.write(json.dumps(dump, sort_keys=True,
                                separators=(",", ":")))
            fh.write("\n")
    return len(dumps)
