"""Hot-path pool statistics for the perf harness.

The object pools live with their owners -- the per-cluster
:class:`~repro.machine.pool.HotPools` (transport-ack packets and
struct-of-arrays train records), the kernel's fast-timer free list, and
the span recorder's track free list.  :func:`pool_stats` condenses all
of them into one picklable dict per cluster, and
:func:`merge_pool_stats` folds the per-cluster dicts into the single
``pools`` block ``python -m repro.bench --perf`` stamps into
``BENCH_PERF.json``.

These numbers are deliberately *not* part of the ``--metrics`` blocks:
hit counts differ between fast-lane-on and fast-lane-off runs of the
same scenario, and the equivalence contract requires those blocks
byte-identical.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["pool_stats", "merge_pool_stats"]


def pool_stats(cluster) -> dict:
    """All pool counters of one finished cluster, keyed by pool name.

    Works on any object with a ``sim`` attribute (ducks for
    :class:`repro.machine.Cluster`); pools that are not armed on this
    cluster are simply absent from the dict.
    """
    sim = cluster.sim
    stats: dict = {}
    pools = getattr(sim, "pools", None)
    if pools is not None:
        stats.update(pools.stats())
    timer_free = getattr(sim, "_timer_pool", None)
    if timer_free is not None:
        from ..sim.kernel import _TIMER_POOL_CAP
        stats["timers"] = {"free": len(timer_free),
                           "cap": _TIMER_POOL_CAP}
    spans = getattr(cluster, "spans", None)
    if spans is not None:
        stats["span_tracks"] = spans.pool_stats()
    return stats


def merge_pool_stats(blocks: Iterable[Optional[dict]]) -> dict:
    """Fold per-cluster :func:`pool_stats` dicts into one summary.

    Integer counters are summed; ``hit_rate`` is recomputed from the
    summed ``hits``/``acquires`` (never averaged -- clusters differ
    wildly in traffic volume).  ``None`` entries (captures taken with
    pools unarmed) are skipped.
    """
    merged: dict = {}
    for block in blocks:
        if not block:
            continue
        for pool_name, counters in block.items():
            out = merged.setdefault(pool_name, {})
            for key, value in counters.items():
                if key == "hit_rate":
                    continue
                out[key] = out.get(key, 0) + value
    for counters in merged.values():
        acquires = counters.get("acquires")
        if acquires is not None:
            counters["hit_rate"] = (
                round(counters.get("hits", 0) / acquires, 4)
                if acquires else 0.0)
    return merged
