"""Declarative SLO rules with multi-window burn-rate alerting.

ROADMAP item 5 (the production-serving workload) asks "did the run
hold p50/p99/p99.9 latency, bounded error rates, and a goodput floor"
-- questions about *windows of virtual time*, not end-of-run totals.
This module evaluates declarative rules against the closed windows of
a :class:`repro.obs.timeline.Timeline` and raises alerts using the
standard SRE multi-window burn-rate construction:

* each rule carries an **error budget** ``budget`` -- the fraction of
  windows allowed to violate the objective over the long term;
* after window ``w`` closes, the rule's **burn rate** over a lookback
  of ``L`` windows is ``violations(L) / (L * budget)`` -- burn 1.0
  means the budget is being consumed exactly as provisioned, burn
  ``k`` means ``k`` times too fast;
* an alert **pages** when the burn over *both* a short and a long
  lookback reaches ``fast_burn`` (the short window makes the alert
  responsive, the long window keeps one bad blip from paging), and
  **warns** when both reach ``slow_burn``; it clears when neither
  condition holds.

Evaluation is driven entirely by timeline window closes -- it runs in
virtual time, schedules nothing, and is a pure function of the
observation stream, so serial and ``--jobs N`` runs produce identical
alert logs.  A page routes into the flight recorder
(:mod:`repro.obs.flight`), capturing the black box around the
violation.

Rules are frozen, picklable dataclasses so a
:class:`~repro.obs.timeline.TelemetryConfig` carrying them ships to
sweep workers verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SimulationError
from .sketch import merge_sketches

__all__ = ["BurnRatePolicy", "LatencySlo", "ErrorRateSlo",
           "GoodputSlo", "SloEvaluator", "default_rules"]

_SEVERITY = {"ok": 0, "warn": 1, "page": 2}


@dataclass(frozen=True)
class BurnRatePolicy:
    """Lookback pair and burn thresholds for one rule's alerting."""

    short_windows: int = 4
    long_windows: int = 16
    fast_burn: float = 4.0
    slow_burn: float = 1.0

    def validate(self) -> None:
        if not 1 <= self.short_windows <= self.long_windows:
            raise SimulationError(
                f"burn-rate lookbacks must satisfy 1 <= short <= long,"
                f" got {self.short_windows}/{self.long_windows}")
        if not 0.0 < self.slow_burn <= self.fast_burn:
            raise SimulationError(
                f"burn thresholds must satisfy 0 < slow <= fast,"
                f" got {self.slow_burn}/{self.fast_burn}")


def _pick(values: dict, kind: str, subsystem: str, name: str) -> list:
    """Closed-window values of every node's (subsystem, name) stream."""
    return [value for (sub, _node, nm), (k, value) in values.items()
            if k == kind and sub == subsystem and nm == name]


@dataclass(frozen=True)
class LatencySlo:
    """``quantile(metric)`` must stay at or below ``target_us``.

    Evaluated per window against the merged-across-nodes sketch of the
    named histogram stream; windows with no observations are skipped
    (no traffic is not a latency violation).
    """

    name: str
    subsystem: str
    metric: str
    quantile: float
    target_us: float
    budget: float = 0.05
    policy: BurnRatePolicy = field(default_factory=BurnRatePolicy)

    def evaluate(self, values: dict) -> Optional[bool]:
        sketches = _pick(values, "hist", self.subsystem, self.metric)
        sketches = [s for s in sketches if s.count]
        if not sketches:
            return None
        merged = merge_sketches(sketches, alpha=sketches[0].alpha)
        estimate = merged.quantile(self.quantile)
        return estimate is not None and estimate > self.target_us


@dataclass(frozen=True)
class ErrorRateSlo:
    """``errors / total`` per window must stay at or below
    ``max_ratio`` (e.g. retransmissions per packet sent).  Windows
    where ``total`` is zero are skipped."""

    name: str
    subsystem: str
    errors: str
    total: str
    max_ratio: float
    budget: float = 0.05
    policy: BurnRatePolicy = field(default_factory=BurnRatePolicy)

    def evaluate(self, values: dict) -> Optional[bool]:
        bad = sum(_pick(values, "counter", self.subsystem, self.errors))
        total = sum(_pick(values, "counter", self.subsystem,
                          self.total))
        if total <= 0:
            return None
        return bad / total > self.max_ratio


@dataclass(frozen=True)
class GoodputSlo:
    """The summed per-window delta of a counter stream must stay at or
    above ``floor`` once the stream has started flowing.

    Warmup windows (before the first window with any delta) are
    skipped; after that, *empty* windows count as violations -- an
    outage that stops traffic entirely produces gap windows, and those
    gaps are exactly what this rule exists to catch.
    """

    name: str
    subsystem: str
    counter: str
    floor: float
    budget: float = 0.05
    policy: BurnRatePolicy = field(default_factory=BurnRatePolicy)

    def evaluate(self, values: dict) -> Optional[bool]:
        delta = sum(_pick(values, "counter", self.subsystem,
                          self.counter))
        return delta < self.floor


class _RuleState:
    """Mutable alerting state of one rule inside the evaluator."""

    __slots__ = ("rule", "verdicts", "started", "state", "windows",
                 "violations", "worst_burn")

    def __init__(self, rule) -> None:
        rule.policy.validate()
        if not 0.0 < rule.budget <= 1.0:
            raise SimulationError(
                f"SLO rule {rule.name!r}: budget must be in (0, 1],"
                f" got {rule.budget}")
        from collections import deque
        self.rule = rule
        self.verdicts: deque = deque(maxlen=rule.policy.long_windows)
        self.started = False
        self.state = "ok"
        self.windows = 0
        self.violations = 0
        self.worst_burn = 0.0

    def burn(self, lookback: int) -> float:
        window = list(self.verdicts)[-lookback:]
        if not window:
            return 0.0
        return (sum(window) / len(window)) / self.rule.budget


class SloEvaluator:
    """Evaluates a rule set on every timeline window close.

    Subscribes to the timeline; alerts are recorded as state
    *transitions* (page / warn / clear) in a deterministic log, and
    each distinct rule's first page triggers a flight-recorder dump.
    """

    def __init__(self, rules, timeline, flight=None) -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise SimulationError(
                f"duplicate SLO rule names: {names}")
        self._states = [_RuleState(rule) for rule in rules]
        self._timeline = timeline
        self._flight = flight
        self.alerts: list[dict] = []
        timeline.add_close_listener(self.on_window)

    # ------------------------------------------------------------------
    def on_window(self, w: int, end_us: float, values: dict) -> None:
        for st in self._states:
            rule = st.rule
            if isinstance(rule, GoodputSlo) and not st.started:
                # Warmup: hold evaluation until the stream first flows.
                delta = sum(_pick(values, "counter", rule.subsystem,
                                  rule.counter))
                if delta < rule.floor:
                    continue
                st.started = True
            verdict = rule.evaluate(values)
            if verdict is None:
                continue
            st.windows += 1
            st.violations += int(verdict)
            st.verdicts.append(int(verdict))
            if len(st.verdicts) < rule.policy.short_windows:
                continue
            short = st.burn(rule.policy.short_windows)
            long_ = st.burn(rule.policy.long_windows)
            paired = min(short, long_)
            if paired > st.worst_burn:
                st.worst_burn = paired
            if paired >= rule.policy.fast_burn:
                severity = "page"
            elif paired >= rule.policy.slow_burn:
                severity = "warn"
            else:
                severity = "ok"
            if severity == st.state:
                continue
            rising = _SEVERITY[severity] > _SEVERITY[st.state]
            st.state = severity
            self.alerts.append({
                "t_us": round(end_us, 3),
                "window": w,
                "rule": rule.name,
                "event": severity if severity != "ok" else "clear",
                "short_burn": round(short, 4),
                "long_burn": round(long_, 4),
            })
            if severity == "page" and rising and \
                    self._flight is not None:
                self._flight.trigger(
                    "slo-page", key=("slo", rule.name),
                    rule=rule.name, window=w,
                    short_burn=round(short, 4),
                    long_burn=round(long_, 4))

    # ------------------------------------------------------------------
    def alert_dicts(self) -> list[dict]:
        """The transition log (already deterministic and JSON-safe)."""
        return list(self.alerts)

    def summary(self) -> list[dict]:
        """Per-rule roll-up for report payloads."""
        return [{"rule": st.rule.name,
                 "windows": st.windows,
                 "violations": st.violations,
                 "worst_burn": round(st.worst_burn, 4),
                 "final_state": st.state}
                for st in self._states]


def default_rules() -> tuple:
    """The rule set ``--slo`` arms when no custom rules are given.

    Targets are deliberately loose for healthy runs -- the point of
    the defaults is to page on *faults* (outages stalling goodput,
    retransmission storms, latency collapse), not to grade the
    SP's baseline numbers.
    """
    return (
        GoodputSlo(name="goodput-floor",
                   subsystem="telemetry.transport",
                   counter="rx_payload_bytes", floor=1.0,
                   budget=0.05,
                   policy=BurnRatePolicy(short_windows=2,
                                         long_windows=8,
                                         fast_burn=4.0,
                                         slow_burn=1.0)),
        ErrorRateSlo(name="retx-rate",
                     subsystem="telemetry.transport",
                     errors="retransmits", total="rx_packets",
                     max_ratio=0.10, budget=0.05),
        LatencySlo(name="ack-rtt-p99",
                   subsystem="core.reliability", metric="ack_rtt_us",
                   quantile=0.99, target_us=5000.0, budget=0.05),
    )
