"""Chrome trace-event export: open span streams in Perfetto.

Converts serialized span dicts (:func:`repro.obs.spans.span_to_dict`)
into the Chrome trace-event JSON format (the ``{"traceEvents": [...]}``
container), loadable at https://ui.perfetto.dev:

* one *process* per (cluster, node) -- the per-node timeline the paper
  reasons about;
* spans become complete (``"X"``) events, greedily packed onto lanes
  (tids) so concurrent spans on a node never overlap within a lane;
* wire hops become flow events (``"s"`` at the end of the source's
  ``wire`` span, ``"f"`` at the start of the destination's ``rx_dma``
  span), drawing the cross-node causal arrows.

Virtual microseconds map directly onto trace-event ``ts``/``dur``
(which are microseconds by definition).  Output is deterministic:
fixed event ordering, fixed key order, gzip with a zeroed mtime when
the path ends in ``.gz``.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Sequence, Union

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: pid namespacing: cluster index * stride + node id.
_PID_STRIDE = 100
#: flow-id namespacing across clusters (packet uids restart per
#: cluster, so ids must be offset to stay globally unique).
_FLOW_STRIDE = 10_000_000


def chrome_trace_events(
        span_streams: Sequence[Sequence[dict]]) -> list[dict]:
    """Trace events for a sequence of per-cluster span streams.

    ``span_streams[i]`` is the serialized span list of cluster ``i``
    (canonical ``(t0, sid)`` order, as shipped by
    :class:`~repro.bench.runner.ClusterCapture`).
    """
    events: list[dict] = []
    for cidx, spans in enumerate(span_streams):
        _one_cluster(events, cidx, spans)
    return events


def _one_cluster(events: list[dict], cidx: int,
                 spans: Sequence[dict]) -> None:
    ordered = sorted(spans, key=lambda sp: (sp["t0_us"], sp["sid"]))
    #: pid -> list of per-lane end times (greedy interval packing).
    lanes: dict[int, list[float]] = {}
    seen_pids: list[int] = []
    flow_src: dict[int, dict] = {}
    flow_dst: dict[int, dict] = {}

    for sp in ordered:
        pid = cidx * _PID_STRIDE + sp["node"]
        if pid not in lanes:
            lanes[pid] = []
            seen_pids.append(pid)
        ends = lanes[pid]
        for lane, end in enumerate(ends):
            if end <= sp["t0_us"]:
                break
        else:
            ends.append(0.0)
            lane = len(ends) - 1
        ends[lane] = max(sp["t1_us"], sp["t0_us"])
        fields = sp.get("fields") or {}
        args = {"sid": sp["sid"], "parent": sp["parent"]}
        for k in sorted(fields):
            args[k] = fields[k]
        event = {
            "name": f"{sp['subsystem']}.{sp['op']}/{sp['phase']}",
            "cat": sp["subsystem"],
            "ph": "X",
            "ts": sp["t0_us"],
            "dur": round(sp["t1_us"] - sp["t0_us"], 6),
            "pid": pid,
            "tid": lane,
            "args": args,
        }
        events.append(event)
        flow = sp.get("flow")
        if flow is not None:
            if sp["phase"] == "wire":
                flow_src[flow] = event
            elif sp["phase"] == "rx_dma":
                flow_dst[flow] = event

    for pid in seen_pids:
        node = pid - cidx * _PID_STRIDE
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args":
                       {"name": f"cluster{cidx}/node{node}"}})
        for lane in range(len(lanes[pid])):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": lane,
                           "args": {"name": f"lane{lane:02d}"}})

    # Flow arrows for every wire hop observed end-to-end.
    for uid in sorted(flow_src):
        dst = flow_dst.get(uid)
        if dst is None:
            continue  # lost or still-in-flight packet: no arrow
        src = flow_src[uid]
        fid = cidx * _FLOW_STRIDE + uid
        events.append({"name": "wire", "cat": "flow", "ph": "s",
                       "id": fid, "ts": round(src["ts"] + src["dur"], 6),
                       "pid": src["pid"], "tid": src["tid"]})
        events.append({"name": "wire", "cat": "flow", "ph": "f",
                       "bp": "e", "id": fid, "ts": dst["ts"],
                       "pid": dst["pid"], "tid": dst["tid"]})


def write_chrome_trace(span_streams: Sequence[Sequence[dict]],
                       path: Union[str, "os.PathLike"]) -> int:
    """Write a Perfetto-loadable trace to ``path``; returns the event
    count.  Transparently gzips when the name ends in ``.gz``
    (deterministically: zeroed mtime, no embedded filename)."""
    events = chrome_trace_events(span_streams)
    payload = json.dumps({"traceEvents": events,
                          "displayTimeUnit": "ms"},
                         separators=(",", ":"), default=str)
    data = payload.encode("utf-8") + b"\n"
    if str(path).endswith(".gz"):
        with open(path, "wb") as raw:
            with gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                               mtime=0) as fh:
                fh.write(data)
    else:
        with open(path, "wb") as fh:
            fh.write(data)
    return len(events)
