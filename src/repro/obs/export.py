"""Structured trace export: JSONL records for offline analysis.

A :class:`repro.sim.Tracer` already stores structured
``(time, source, category, message, fields)`` records; this module
serializes them to the observability schema::

    {"time_us": 12.5, "node": "adapter0", "subsystem": "tx",
     "event": "...", "fields": {"src": 0, "dst": 1, ...}}

one JSON object per line (JSONL), the format ``python -m repro.bench
--trace-out FILE`` writes and every log pipeline ingests.  Encoding is
deterministic (sorted keys, compact separators), so identical seeds
produce byte-identical trace files.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.trace import TraceRecord

__all__ = ["record_to_dict", "jsonl_lines", "write_trace_jsonl"]


def record_to_dict(record: Union["TraceRecord", dict]) -> dict:
    """Map one trace record onto the JSONL schema.

    Already-serialized dicts pass through unchanged, so the writers
    below accept live :class:`~repro.sim.Tracer` records and the
    pre-serialized records the parallel sweep engine ships back from
    worker processes interchangeably.
    """
    if isinstance(record, dict):
        return record
    return {
        "time_us": round(record.time, 6),
        "node": record.source,
        "subsystem": record.category,
        "event": record.message,
        "fields": dict(record.fields),
    }


def jsonl_lines(records: Iterable["TraceRecord"]) -> Iterable[str]:
    """Deterministically encoded JSON line per record (no newline)."""
    for record in records:
        yield json.dumps(record_to_dict(record), sort_keys=True,
                         separators=(",", ":"), default=str)


def write_trace_jsonl(records: Iterable["TraceRecord"],
                      path: str, *, append: bool = False) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the line count."""
    written = 0
    with open(path, "a" if append else "w", encoding="utf-8") as fh:
        for line in jsonl_lines(records):
            fh.write(line)
            fh.write("\n")
            written += 1
    return written
