"""Structured trace export: JSONL records for offline analysis.

A :class:`repro.sim.Tracer` already stores structured
``(time, source, category, message, fields)`` records; this module
serializes them to the observability schema::

    {"time_us": 12.5, "node": "adapter0", "subsystem": "tx",
     "event": "...", "fields": {"src": 0, "dst": 1, ...}}

one JSON object per line (JSONL), the format ``python -m repro.bench
--trace-out FILE`` writes and every log pipeline ingests.  Encoding is
deterministic: top-level keys emit in a *fixed* order (schema order,
not alphabetical), field keys sort, and non-JSON-serializable field
values (bytes payload fragments, tuples, sets...) are coerced
deterministically instead of raising mid-export.  Identical seeds
produce byte-identical trace files.

Files whose name ends in ``.gz`` are transparently gzip-compressed
(with a zeroed mtime, so compression itself stays deterministic);
append mode appends a concatenated gzip member, which every
decompressor reads as one stream.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import TYPE_CHECKING, Any, Iterable, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.trace import TraceRecord

__all__ = ["record_to_dict", "jsonl_lines", "write_trace_jsonl",
           "coerce_value"]

#: Fixed top-level key order of the JSONL schema.
_SCHEMA_ORDER = ("time_us", "node", "subsystem", "event", "fields")


def coerce_value(value: Any) -> Any:
    """Map one field value onto a deterministic JSON-serializable form.

    Bytes become hex strings (stable, unlike ``repr``), tuples become
    lists, sets become sorted lists, nested dicts coerce recursively
    with sorted keys; everything else unknown falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return [coerce_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(coerce_value(v)) for v in value)
    if isinstance(value, dict):
        return {str(k): coerce_value(v)
                for k, v in sorted(value.items(), key=lambda kv:
                                   str(kv[0]))}
    return str(value)


def _coerce_fields(fields: dict) -> dict:
    return {str(k): coerce_value(v)
            for k, v in sorted(fields.items(),
                               key=lambda kv: str(kv[0]))}


def record_to_dict(record: Union["TraceRecord", dict]) -> dict:
    """Map one trace record onto the JSONL schema, keys in fixed order.

    Accepts live :class:`~repro.sim.Tracer` records and already-
    serialized dicts (the form the parallel sweep engine ships back
    from worker processes) interchangeably; both normalize to the same
    key order and coerced field values, so mixing sources cannot
    perturb byte-level determinism.
    """
    if isinstance(record, dict):
        out = {key: record[key] for key in _SCHEMA_ORDER
               if key in record}
        for key in record:  # preserve any extension keys, sorted last
            if key not in out:
                out[key] = record[key]
        out["fields"] = _coerce_fields(out.get("fields") or {})
        return out
    return {
        "time_us": round(record.time, 6),
        "node": record.source,
        "subsystem": record.category,
        "event": record.message,
        "fields": _coerce_fields(dict(record.fields)),
    }


def jsonl_lines(records: Iterable["TraceRecord"]) -> Iterable[str]:
    """Deterministically encoded JSON line per record (no newline).

    Key order is the fixed schema order (coercion happened in
    :func:`record_to_dict`); ``default=str`` remains as a last-resort
    guard so an unanticipated type can never abort an export.
    """
    for record in records:
        yield json.dumps(record_to_dict(record),
                         separators=(",", ":"), default=str)


def write_trace_jsonl(records: Iterable["TraceRecord"],
                      path: Union[str, "os.PathLike"], *,
                      append: bool = False) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the line count.

    A path ending in ``.gz`` writes gzip-compressed JSONL with a
    zeroed timestamp (byte-deterministic); appending adds a gzip
    member, which decompressors treat as a continuation of the stream.
    """
    written = 0
    if str(path).endswith(".gz"):
        with open(path, "ab" if append else "wb") as raw:
            with gzip.GzipFile(filename="", mode="wb", fileobj=raw,
                               mtime=0) as fh:
                for line in jsonl_lines(records):
                    fh.write(line.encode("utf-8"))
                    fh.write(b"\n")
                    written += 1
        return written
    with open(path, "a" if append else "w", encoding="utf-8") as fh:
        for line in jsonl_lines(records):
            fh.write(line)
            fh.write("\n")
            written += 1
    return written
