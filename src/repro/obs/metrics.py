"""Cluster-wide metrics: named counters, gauges, and histograms.

The registry is the single measurement surface of the simulator: every
subsystem (adapter, switch, reliability layer, LAPI/MPL dispatchers,
GA buffer pools) either updates registry instruments directly on its
hot path or exposes its existing ad-hoc counters through a *collector*
-- a zero-argument callable returning ``{name: value}`` that the
registry invokes lazily at snapshot time.  Collectors keep hot paths
untouched while still aggregating everything into one report.

Metrics are addressed by ``(subsystem, node, name)``; ``node=None``
denotes a cluster-wide metric (the switch).  All values derive from
virtual-time simulation state, so identical seeds produce *identical*
snapshots -- byte-identical once rendered -- which tests assert.

Histograms use fixed log-spaced buckets so that two runs always bucket
identically; :data:`LATENCY_BUCKETS_US` (powers of two from 0.5us to
~1s) suits virtual-time latencies, :data:`DEPTH_BUCKETS` small integer
depths (queue/stash occupancy).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Iterable, Optional, Sequence

from ..errors import SimulationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS_US", "DEPTH_BUCKETS"]

#: Log-spaced virtual-time latency buckets: 0.5us .. ~1s, then +inf.
LATENCY_BUCKETS_US = tuple(2.0 ** k for k in range(-1, 21))

#: Log-spaced occupancy/depth buckets: 1, 2, 4 .. 1024, then +inf.
DEPTH_BUCKETS = tuple(float(2 ** k) for k in range(0, 11))


class Counter:
    """A monotonically increasing named count.

    Negative increments raise: monotonicity is what makes per-window
    timeline deltas (:mod:`repro.obs.timeline`) provably non-negative.
    ``_tl`` is the optional timeline series armed by
    :meth:`MetricsRegistry.attach_timeline`; disarmed, each update
    pays exactly one ``is None`` test.
    """

    __slots__ = ("name", "value", "_tl")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._tl = None

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise SimulationError(f"counter {self.name}: negative inc {n}")
        self.value += n
        if self._tl is not None:
            self._tl.add(n)

    def snapshot_value(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (occupancy, utilization, high-water)."""

    __slots__ = ("name", "value", "high_water", "_tl")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high_water = 0.0
        self._tl = None

    def set(self, v: float) -> None:
        self.value = v
        if v > self.high_water:
            self.high_water = v
        if self._tl is not None:
            self._tl.set(v)

    def snapshot_value(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram of virtual-time observations.

    ``buckets`` are the inclusive upper edges; an implicit ``+inf``
    bucket catches everything beyond the last edge.  Buckets are fixed
    at construction, never rescaled, so identically seeded runs bucket
    identically.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total", "min",
                 "max", "_tl")

    def __init__(self, name: str,
                 buckets: Sequence[float] = LATENCY_BUCKETS_US) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise SimulationError(
                f"histogram {name}: buckets must be strictly increasing")
        self.name = name
        self.buckets = edges
        self.counts = [0] * (len(edges) + 1)  # last slot == +inf
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self._tl = None

    def observe(self, value: float) -> None:
        # min/max seed from the first sample: an all-negative stream
        # must not report max=0.0 (and min must not report 0.0 for an
        # all-positive one).
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value
        # bisect_left finds the first edge >= value -- the same slot the
        # linear "value <= edge" scan selected; len(edges) lands in the
        # +inf overflow bucket.
        self.counts[bisect_left(self.buckets, value)] += 1
        if self._tl is not None:
            self._tl.observe(value)

    def snapshot_value(self) -> dict:
        """Stable dict form: count/sum/min/max plus nonzero buckets."""
        nonzero = {}
        for edge, n in zip(self.buckets, self.counts):
            if n:
                nonzero[format(edge, "g")] = n
        if self.counts[-1]:
            nonzero["inf"] = self.counts[-1]
        return {"count": self.count, "sum": round(self.total, 6),
                "min": round(self.min, 6), "max": round(self.max, 6),
                "buckets": nonzero}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count}>"


def _node_key(node: Optional[int]) -> str:
    return "-" if node is None else str(node)


def _fmt_value(v: Any) -> str:
    if isinstance(v, float):
        return format(round(v, 6), "g")
    if isinstance(v, dict):  # histogram snapshot
        buckets = "|".join(f"{k}:{n}" for k, n in v["buckets"].items())
        return (f"{{count={v['count']} sum={format(v['sum'], 'g')}"
                f" min={format(v['min'], 'g')}"
                f" max={format(v['max'], 'g')}"
                f" buckets={buckets or '-'}}}")
    return str(v)


class MetricsRegistry:
    """All metrics of one simulated cluster.

    Instruments are get-or-create: asking twice for the same
    ``(subsystem, node, name)`` returns the same object, so layers can
    wire themselves up independently.  Snapshots are plain nested dicts
    (``subsystem -> node -> name -> value``) with deterministically
    sorted keys; :meth:`render` produces the per-subsystem text block
    the bench harness prints under ``--metrics``.
    """

    #: Instrument class -> timeline series kind.
    _TIMELINE_KINDS = {Counter: "counter", Gauge: "gauge",
                       Histogram: "hist"}

    def __init__(self) -> None:
        #: (subsystem, node_key, name) -> instrument
        self._instruments: dict[tuple[str, str, str], Any] = {}
        #: (subsystem, node_key) -> [collector, ...]
        self._collectors: dict[tuple[str, str], list[Callable]] = {}
        #: Armed timeline (repro.obs.timeline.Timeline) or None.
        self._timeline = None

    # -- instrument factories -------------------------------------------
    def attach_timeline(self, timeline) -> None:
        """Arm windowed telemetry: every existing instrument -- and
        every instrument created from now on -- mirrors its updates
        into a :class:`repro.obs.timeline.Timeline` series.

        Purely additive: snapshots, renders, and collectors are
        untouched, so ``--metrics`` output is identical armed or not.
        """
        self._timeline = timeline
        for (subsystem, node_key, name), inst in \
                self._instruments.items():
            kind = self._TIMELINE_KINDS[type(inst)]
            inst._tl = timeline.series(kind, subsystem, name, node_key)

    def _get_or_create(self, cls, subsystem: str, name: str,
                       node: Optional[int], *args):
        key = (subsystem, _node_key(node), name)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(f"{subsystem}.{name}", *args)
            self._instruments[key] = inst
            if self._timeline is not None:
                inst._tl = self._timeline.series(
                    self._TIMELINE_KINDS[cls], subsystem, name, key[1])
        elif not isinstance(inst, cls):
            raise SimulationError(
                f"metric {key} already registered as"
                f" {type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, subsystem: str, name: str,
                node: Optional[int] = None) -> Counter:
        return self._get_or_create(Counter, subsystem, name, node)

    def gauge(self, subsystem: str, name: str,
              node: Optional[int] = None) -> Gauge:
        return self._get_or_create(Gauge, subsystem, name, node)

    def histogram(self, subsystem: str, name: str,
                  node: Optional[int] = None,
                  buckets: Sequence[float] = LATENCY_BUCKETS_US
                  ) -> Histogram:
        return self._get_or_create(Histogram, subsystem, name, node,
                                   buckets)

    # -- lazy collectors ------------------------------------------------
    def register_collector(self, subsystem: str, fn: Callable[[], dict],
                           node: Optional[int] = None) -> None:
        """Attach ``fn`` (returning ``{name: value}``) to a subsystem.

        Called at snapshot time; the cheap way to export counters a
        component already keeps without touching its hot path.
        """
        self._collectors.setdefault((subsystem, _node_key(node)),
                                    []).append(fn)

    # -- snapshot / render ----------------------------------------------
    @staticmethod
    def _node_sort_key(k: str):
        return (0, int(k)) if k.lstrip("-").isdigit() and k != "-" \
            else (1, k)

    def snapshot(self) -> dict:
        """Deterministic ``subsystem -> node -> name -> value`` dict."""
        merged: dict[str, dict[str, dict[str, Any]]] = {}
        for (subsystem, node, name), inst in self._instruments.items():
            merged.setdefault(subsystem, {}).setdefault(node, {})[
                name] = inst.snapshot_value()
        for (subsystem, node), fns in self._collectors.items():
            block = merged.setdefault(subsystem, {}).setdefault(node, {})
            for fn in fns:
                for name, value in fn().items():
                    block[name] = value
        return {
            sub: {
                node: dict(sorted(merged[sub][node].items()))
                for node in sorted(merged[sub],
                                   key=self._node_sort_key)
            }
            for sub in sorted(merged)
        }

    def render(self) -> str:
        """Per-subsystem text block (what ``--metrics`` prints)."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics registered)"
        lines = []
        for subsystem, nodes in snap.items():
            lines.append(f"{subsystem}:")
            for node, values in nodes.items():
                where = "cluster" if node == "-" else f"node {node}"
                body = " ".join(f"{k}={_fmt_value(v)}"
                                for k, v in values.items())
                lines.append(f"  {where}: {body}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MetricsRegistry {len(self._instruments)} instruments,"
                f" {sum(len(v) for v in self._collectors.values())}"
                " collectors>")
