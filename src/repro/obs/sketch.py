"""Deterministic log-bucketed quantile sketches (DDSketch-style).

The paper's profiles are quantile-shaped -- Table 1 decomposes a
*median* latency, the serving roadmap wants p50/p99/p99.9 SLOs -- but
the fixed-bucket :class:`repro.obs.Histogram` cannot answer "what is
p99 of this window's latencies" with a useful error bound.  This
module adds the standard streaming answer: a sketch that buckets each
observation by the integer key

    key(v) = ceil(log(v) / log(gamma)),    gamma = (1 + a) / (1 - a)

so every value in bucket ``k`` lies within relative error ``a`` of the
bucket's representative value ``2 * gamma^k / (gamma + 1)``.  Quantile
queries walk the bucket counts by rank and return the representative,
giving the classic DDSketch guarantee::

    |q_est - q_true| <= a * q_true        (relative, for any quantile)

Two properties matter more here than accuracy:

* **Fixed layout.**  ``gamma`` is derived once from ``alpha``; bucket
  keys are integers; nothing rescales or collapses as data arrives.
  Two sketches built from the same observations are *equal*, not just
  statistically close.
* **Exact, order-independent merge.**  Merging adds integer bucket
  counts, so ``merge(a, b) == merge(b, a)`` bit-for-bit and any
  grouping of per-node / per-worker sketches combines to the same
  result -- the property the ``--jobs N`` byte-identity contract
  needs (histogram-of-histograms would need it too; quantile summaries
  like t-digest do not have it).

Values at or below ``MIN_TRACKABLE`` land in a dedicated zero bucket;
negative values mirror into a negative store keyed by ``key(-v)``.
Serialization (:meth:`QuantileSketch.to_dict`) emits sorted integer
keys as strings, so ``json.dumps(..., sort_keys=True)`` of two equal
sketches is byte-identical.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..errors import SimulationError

__all__ = ["QuantileSketch", "merge_sketches", "DEFAULT_ALPHA",
           "MIN_TRACKABLE"]

#: Default relative accuracy: 1% -- p99 of a 100us stream is reported
#: within +-1us, far below every bucket the figures resolve.
DEFAULT_ALPHA = 0.01

#: Magnitudes at or below this are indistinguishable from zero (the
#: log mapping diverges at 0); they are counted in the zero bucket.
MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """A mergeable log-bucketed quantile sketch with fixed layout.

    ``alpha`` is the relative-accuracy target; all sketches that are
    ever merged must share it (checked -- merging sketches of
    different layouts would silently corrupt both bounds).
    """

    __slots__ = ("alpha", "_log_gamma", "count", "total", "zero",
                 "pos", "neg")

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise SimulationError(
                f"sketch alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self._log_gamma = math.log((1.0 + alpha) / (1.0 - alpha))
        self.count = 0
        self.total = 0.0
        self.zero = 0
        #: bucket key -> observation count, positive / negative stores.
        self.pos: dict[int, int] = {}
        self.neg: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _key(self, magnitude: float) -> int:
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _value(self, key: int) -> float:
        """Representative value of bucket ``key`` (midpoint in relative
        terms: within ``alpha`` of every member)."""
        gamma = math.exp(self._log_gamma)
        return 2.0 * gamma ** key / (gamma + 1.0)

    # ------------------------------------------------------------------
    def observe(self, value: float, n: int = 1) -> None:
        """Fold ``n`` occurrences of ``value`` into the sketch."""
        if n <= 0:
            raise SimulationError(f"sketch observe: n must be > 0,"
                                  f" got {n}")
        self.count += n
        self.total += value * n
        if -MIN_TRACKABLE <= value <= MIN_TRACKABLE:
            self.zero += n
        elif value > 0.0:
            key = self._key(value)
            self.pos[key] = self.pos.get(key, 0) + n
        else:
            key = self._key(-value)
            self.neg[key] = self.neg.get(key, 0) + n

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile estimate (relative error <= alpha).

        ``None`` on an empty sketch.  Nearest-rank semantics: the
        returned bucket holds the observation with 1-based rank
        ``ceil(q * count)`` (clamped to ``[1, count]``), so ``q=0``
        is the minimum bucket and ``q=1`` the maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = min(max(math.ceil(q * self.count), 1), self.count)
        seen = 0
        # Negative store first, most-negative value first: larger keys
        # are larger magnitudes, i.e. smaller (more negative) values.
        for key in sorted(self.neg, reverse=True):
            seen += self.neg[key]
            if seen >= rank:
                return -self._value(key)
        seen += self.zero
        if seen >= rank:
            return 0.0
        for key in sorted(self.pos):
            seen += self.pos[key]
            if seen >= rank:
                return self._value(key)
        # Unreachable unless counts were corrupted externally.
        raise SimulationError("sketch rank walk overran the counts")

    def quantiles(self, qs: Iterable[float]) -> list[Optional[float]]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into ``self`` (returns ``self``).

        Exact: bucket counts add, so the merged sketch equals the
        sketch of the concatenated streams regardless of merge order
        or grouping (the associativity/commutativity tests pin this).
        """
        if other.alpha != self.alpha:
            raise SimulationError(
                f"cannot merge sketches of different layouts"
                f" (alpha {self.alpha} vs {other.alpha})")
        self.count += other.count
        self.total += other.total
        self.zero += other.zero
        for key, n in other.pos.items():
            self.pos[key] = self.pos.get(key, 0) + n
        for key, n in other.neg.items():
            self.neg[key] = self.neg.get(key, 0) + n
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable serialized form (sorted integer keys as strings)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": round(self.total, 6),
            "zero": self.zero,
            "pos": {str(k): self.pos[k] for k in sorted(self.pos)},
            "neg": {str(k): self.neg[k] for k in sorted(self.neg)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(alpha=data["alpha"])
        sketch.count = int(data["count"])
        sketch.total = float(data["sum"])
        sketch.zero = int(data["zero"])
        sketch.pos = {int(k): int(n) for k, n in data["pos"].items()}
        sketch.neg = {int(k): int(n) for k, n in data["neg"].items()}
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return (self.alpha == other.alpha and self.count == other.count
                and self.zero == other.zero and self.pos == other.pos
                and self.neg == other.neg
                and round(self.total, 6) == round(other.total, 6))

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<QuantileSketch n={self.count} alpha={self.alpha}"
                f" buckets={len(self.pos) + len(self.neg)}>")


def merge_sketches(sketches: Iterable[QuantileSketch],
                   alpha: float = DEFAULT_ALPHA) -> QuantileSketch:
    """Merge many sketches into a fresh one (inputs untouched)."""
    out = QuantileSketch(alpha=alpha)
    for sketch in sketches:
        out.merge(sketch)
    return out
