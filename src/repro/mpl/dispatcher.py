"""The MPL/MPI receive-side protocol engine.

Handles arriving packets for the two-sided stack: envelope admission in
send order, matching against posted receives, early-arrival buffering
(the "extra copy" of section 4), rendezvous handshakes, and ``rcvncall``
handler dispatch with its AIX context-creation cost (section 5.2).

Like the LAPI dispatcher it runs either on an interrupt-priority thread
(interrupt mode) or inline from blocked MPL calls (polling mode), and it
never blocks on flow control.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..errors import MplError
from ..machine.cpu import HANDLER
from .constants import MplPacketKind
from .matching import MessageState, RecvRequest
from .protocol import cts_packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cpu import Thread
    from ..machine.packet import Packet
    from .api import Mpl

__all__ = ["MplDispatcher"]


class MplDispatcher:
    """Receive-side engine of one MPL context."""

    def __init__(self, mpl: "Mpl") -> None:
        self.mpl = mpl
        self.ctx = mpl.ctx
        self.config = mpl.config

    # ------------------------------------------------------------------
    # entry points (same structure as the LAPI dispatcher)
    # ------------------------------------------------------------------
    def drain(self, thread: "Thread") -> Generator:
        processed = 0
        while True:
            ok, pkt = self.mpl.client.rx.try_get()
            if not ok:
                break
            yield from self.process(thread, pkt, amortized=processed > 0)
            processed += 1
        if processed:
            self.ctx.progress_ws.notify_all()
        return processed

    def poll_step(self, thread: "Thread") -> Generator:
        # Inlined thread.execute fast path (see the LAPI dispatcher's
        # poll_step): identical timing, one less generator per poll.
        cost = self.config.poll_check_cost
        if thread._holding and thread.cpu.faults is None and cost > 0:
            yield cost
            thread.cpu_time += cost
        else:
            yield from thread.execute(cost)
        if self.mpl.client.pending > 0:
            yield from self.drain(thread)
            return
        # Wake on a packet OR any progress signal (adapter-level acks
        # complete send requests without a packet reaching the FIFO).
        sim = thread.sim
        getter = self.mpl.client.rx.get()
        progress = self.ctx.progress_ws.wait()
        yield from thread.wait(sim.any_of([getter, progress]))
        if getter.triggered:
            yield from self.process(thread, getter.value)
            yield from self.drain(thread)
            self.ctx.progress_ws.notify_all()
        else:
            self.mpl.client.rx.cancel_get(getter)

    def interrupt_service(self, thread: "Thread") -> Generator:
        from ..core.dispatcher import linger_loop
        self.ctx.stats.interrupts_taken += 1
        yield from thread.execute(self.config.interrupt_latency)
        yield from self.drain(thread)
        yield from linger_loop(self, thread)
        self.mpl.client.arm_interrupt()

    # ------------------------------------------------------------------
    def process(self, thread: "Thread", pkt: "Packet",
                amortized: bool = False) -> Generator:
        ev = self.ctx.dispatch_lock.acquire(owner=thread)
        if not ev.triggered:
            yield from thread.wait(ev)
        try:
            yield from self._process_locked(thread, pkt, amortized)
        finally:
            self.ctx.dispatch_lock.release()

    def _process_locked(self, thread: "Thread", pkt: "Packet",
                        amortized: bool = False) -> Generator:
        cfg = self.config
        self.ctx.stats.packets_processed += 1
        sp = self.mpl.spans
        if pkt.kind == MplPacketKind.ACK:
            if thread._holding and thread.cpu.faults is None:
                yield 0.3
                thread.cpu_time += 0.3
            else:
                yield from thread.execute(0.3)
            if sp is not None:
                sp.packet_dispatched(pkt, thread.sim.now)
            self.mpl.transport.on_ack(pkt)
            return
        cost = (cfg.mpl_pkt_recv_amortized if amortized
                else cfg.mpl_pkt_recv_cost)
        if thread._holding and thread.cpu.faults is None and cost > 0:
            yield cost
            thread.cpu_time += cost
        else:
            yield from thread.execute(cost)
        if sp is not None:
            sp.packet_dispatched(pkt, thread.sim.now)
        if not self.mpl.transport.on_packet(pkt):
            return
        kind = pkt.kind
        if kind == MplPacketKind.DATA:
            yield from self._data(thread, pkt)
        elif kind == MplPacketKind.RTS:
            yield from self._rts(thread, pkt)
        elif kind == MplPacketKind.CTS:
            self._cts(pkt)
        else:
            raise MplError(f"MPL dispatcher: unknown kind {kind!r}")

    # ------------------------------------------------------------------
    # message state helpers
    # ------------------------------------------------------------------
    def _state(self, src: int, msg_seq: int) -> MessageState:
        key = (src, msg_seq)
        msg = self.ctx.recv_msgs.get(key)
        if msg is None:
            msg = MessageState(src, msg_seq)
            self.ctx.recv_msgs[key] = msg
        return msg

    def _admit_and_match(self, thread: "Thread",
                         msg: MessageState) -> Generator:
        """Run in-order envelope admission, then matching, for every
        envelope the arrival unblocked."""
        cfg = self.config
        sp = self.mpl.spans
        for env in self.ctx.match.admit_envelope(msg):
            if sp is not None:
                t_m = thread.sim.now
            yield from thread.execute(cfg.mpl_match_cost)
            if sp is not None:
                sp.emit(self.ctx.rank, "mpl", "recv", "match", t_m,
                        thread.sim.now,
                        parent=sp.message_origin(
                            ("mpl", env.src, env.msg_seq)),
                        bytes=env.total, src=env.src)
            req = self.ctx.match.match_arrival(env)
            if req is not None:
                yield from self._bind_flush(thread, env)
                if env.is_rndv:
                    self._send_cts(env)
            elif env.rcvncall_fn is not None and env.is_rndv:
                # rcvncall accepts rendezvous traffic into early storage.
                self._send_cts(env)
            yield from self._maybe_complete(thread, env)

    def _send_cts(self, msg: MessageState) -> None:
        cts = cts_packet(self.config, self.ctx.rank, msg.src,
                         msg.msg_seq, reply_to=msg.rts_uid)
        sp = self.mpl.spans
        if sp is not None:
            sp.bind_packet(cts, sp.origin_of_uid(msg.rts_uid), "cts")
        self.mpl.transport.send_control(cts)

    def _bind_flush(self, thread: "Thread",
                    msg: MessageState) -> Generator:
        """Flush pre-envelope stash into the message's destination."""
        for offset, payload in msg.stash:
            yield from self._place(thread, msg, offset, payload)
        msg.stash.clear()

    def _place(self, thread: "Thread", msg: MessageState, offset: int,
               payload: bytes) -> Generator:
        """Copy one chunk to wherever this message currently lands."""
        cfg = self.config
        yield from thread.execute(cfg.copy_cost(len(payload)))
        req = msg.recv_req
        if req is not None and not msg.used_early:
            # Direct path: one copy, straight to the receiver's buffer.
            if req.addr is not None:
                self.mpl.memory.write(req.addr + offset, payload)
            else:
                if req.sink is None:
                    req.sink = bytearray(msg.total)
                req.sink[offset:offset + len(payload)] = payload
        else:
            # Early-arrival path: assemble internally; the extra copy to
            # the user happens at delivery.
            if msg.early_buffer is None:
                msg.early_buffer = bytearray(msg.total)
            msg.early_buffer[offset:offset + len(payload)] = payload
            msg.used_early = True
            self.ctx.stats.early_arrival_bytes += len(payload)
        msg.received += len(payload)
        self.ctx.stats.bytes_received += len(payload)

    def _maybe_complete(self, thread: "Thread",
                        msg: MessageState) -> Generator:
        if not msg.data_complete:
            return
        if msg.recv_req is not None:
            yield from self.deliver(thread, msg)
        elif msg.rcvncall_fn is not None:
            self._spawn_rcvncall(msg)
            del self.ctx.recv_msgs[(msg.src, msg.msg_seq)]
        # else: unexpected and complete; waits for a receive to post.

    def deliver(self, thread: "Thread", msg: MessageState) -> Generator:
        """Final delivery of a complete, bound message."""
        cfg = self.config
        req = msg.recv_req
        if msg.used_early:
            # The extra copy: early-arrival buffer -> user destination.
            sp = self.mpl.spans
            if sp is not None:
                t_cp = thread.sim.now
            yield from thread.execute(cfg.copy_cost(msg.total))
            if sp is not None:
                sp.emit(self.ctx.rank, "mpl", "recv", "copy", t_cp,
                        thread.sim.now,
                        parent=sp.message_origin(
                            ("mpl", msg.src, msg.msg_seq)),
                        bytes=msg.total, early_arrival=True)
            blob = bytes(msg.early_buffer[:msg.total])
            if req.addr is not None:
                self.mpl.memory.write(req.addr, blob)
            else:
                req.data = blob
        elif req.addr is None:
            req.data = bytes(req.sink[:msg.total]) if req.sink else b""
        req.complete = True
        self.ctx.recv_msgs.pop((msg.src, msg.msg_seq), None)
        self.ctx.progress_ws.notify_all()

    def _spawn_rcvncall(self, msg: MessageState) -> None:
        """Run an MPL rcvncall handler: AIX creates a handler context
        (expensive, section 5.2), then the user function executes."""
        mpl = self.mpl
        cfg = self.config
        blob = bytes(msg.early_buffer[:msg.total]) if msg.early_buffer \
            else b""
        mpl.ctx.active_handlers += 1
        sp = mpl.spans

        def body(hthread):
            cs_sid = None
            if sp is not None:
                cs_sid = sp.open(mpl.ctx.rank, "mpl", "rcvncall",
                                 hthread.sim.now, phase="cmpl_handler",
                                 parent=sp.message_origin(
                                     ("mpl", msg.src, msg.msg_seq)),
                                 bytes=msg.total, tag=msg.tag)
                hthread.span_parent = cs_sid
            try:
                yield from hthread.execute(cfg.rcvncall_context_cost)
                mpl.ctx.stats.rcvncalls_run += 1
                result = msg.rcvncall_fn(mpl.task, msg.src, msg.tag, blob)
                if result is not None and hasattr(result, "send"):
                    yield from result
            finally:
                mpl.ctx.active_handlers -= 1
                if sp is not None:
                    sp.close(cs_sid, hthread.sim.now)
            mpl.ctx.progress_ws.notify_all()

        mpl.task.node.cpu.spawn(body, name=f"mpl{self.ctx.rank}.rcvncall",
                                priority=HANDLER)

    # ------------------------------------------------------------------
    # packet kinds
    # ------------------------------------------------------------------
    def _data(self, thread: "Thread", pkt: "Packet") -> Generator:
        msg = self._state(pkt.src, pkt.info["msg_seq"])
        if pkt.info.get("is_first") and not msg.envelope_known:
            # For rendezvous traffic the RTS already delivered the
            # envelope; only admit it once.
            msg.set_envelope(pkt.info["tag"], pkt.info["total"],
                             pkt.info.get("is_rndv", False))
            yield from self._admit_and_match(thread, msg)
        payload = pkt.payload
        if payload:
            if msg.matched or msg.envelope_known:
                yield from self._place(thread, msg, pkt.info["offset"],
                                       payload)
            else:
                # Outran its own envelope: stash until it arrives.
                yield from thread.execute(
                    self.config.copy_cost(len(payload)))
                msg.stash.append((pkt.info["offset"], payload))
        yield from self._maybe_complete(thread, msg)

    def _rts(self, thread: "Thread", pkt: "Packet") -> Generator:
        msg = self._state(pkt.src, pkt.info["msg_seq"])
        msg.rts_uid = pkt.uid
        msg.set_envelope(pkt.info["tag"], pkt.info["total"], True)
        yield from self._admit_and_match(thread, msg)

    def _cts(self, pkt: "Packet") -> None:
        req = self.ctx.rndv_waiting.pop((pkt.src, pkt.info["msg_seq"]),
                                        None)
        if req is None:
            raise MplError(
                f"rank {self.ctx.rank}: CTS for unknown rendezvous"
                f" {pkt.info['msg_seq']}")
        req.cts_event.succeed(None)
