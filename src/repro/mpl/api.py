"""The public MPL/MPI interface -- the paper's baseline stack.

One :class:`Mpl` object per task provides the two-sided message-passing
surface the paper compares LAPI against:

* blocking and non-blocking ``send``/``recv`` with tag + source
  matching (wildcards supported) and per-source in-order delivery;
* the **eager** protocol below ``MP_EAGER_LIMIT`` (buffered sends
  return after an internal copy; early arrivals cost an extra copy at
  the receiver) and the **rendezvous** protocol above it (RTS/CTS
  round trip, then a single-copy transfer);
* ``rcvncall`` -- MPL's interrupt-driven receive used by the old GA
  implementation, paying the AIX handler-context-creation cost;
* ``lockrnc`` -- MPL's interrupt disable/enable, the atomicity tool of
  the MPL-based GA (section 5.2);
* collectives (barrier / bcast / reduce) built from point-to-point.

All communication methods are generator coroutines run on a node CPU
thread, exactly like the LAPI API.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional, Union

from ..errors import MplError
from ..machine.cpu import INTERRUPT
from .constants import ANY_SOURCE, ANY_TAG, MplPacketKind, ReservedTag
from .dispatcher import MplDispatcher
from .matching import RecvRequest
from .protocol import PROTO, data_packets, rts_packet
from .requests import MplContext, SendRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cluster import Task
    from ..machine.cpu import Thread

__all__ = ["Mpl", "ANY_SOURCE", "ANY_TAG"]


class Mpl:
    """MPL/MPI communication handle of one task."""

    def __init__(self, task: "Task", interrupt_mode: bool = True,
                 eager_limit: Optional[int] = None) -> None:
        self.task = task
        self.config = task.node.config
        if eager_limit is None:
            eager_limit = self.config.mpl_eager_limit
        if eager_limit > self.config.mpl_eager_limit_max:
            raise MplError(
                f"MP_EAGER_LIMIT {eager_limit} exceeds the maximum"
                f" {self.config.mpl_eager_limit_max}")
        #: Effective MP_EAGER_LIMIT for this task.
        self.eager_limit = eager_limit
        self.ctx = MplContext(task.cluster.sim, task.rank, task.size)
        self.interrupt_mode = interrupt_mode
        self.client = None
        self.transport = None
        self.dispatcher: Optional[MplDispatcher] = None
        self._initialized = False
        #: Depth of lockrnc interrupt-disable nesting.
        self._lockrnc_depth = 0

    # shorthands ---------------------------------------------------------
    @property
    def memory(self):
        return self.task.node.memory

    @property
    def sim(self):
        return self.task.cluster.sim

    @property
    def spans(self):
        """The cluster's span recorder, or None when tracing is off."""
        return self.task.cluster.sim.spans

    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.ctx.size

    @property
    def stats(self):
        return self.ctx.stats

    def current_thread(self) -> "Thread":
        return self.task.node.cpu.current_thread()

    def _check_live(self) -> None:
        if not self._initialized:
            raise MplError("MPL used before init")

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def init(self) -> Generator:
        """Attach to the adapter and start the progress engine."""
        if self._initialized:
            raise MplError("MPL init called twice")
        from ..core.reliability import ReliableTransport
        thread = self.current_thread()
        yield from thread.execute(self.config.mpl_call_overhead)
        adapter = self.task.node.adapter
        self.client = adapter.attach_client(PROTO)
        cfg = self.config
        # Same auto rule as LAPI: adapt exactly when a fault schedule
        # is installed (see docs/reliability.md).
        adaptive = (cfg.adaptive_rto if cfg.adaptive_rto is not None
                    else self.task.cluster.faults is not None)
        self.transport = ReliableTransport(
            self.sim, adapter, PROTO,
            window=cfg.mpl_window,
            timeout=cfg.mpl_retrans_timeout,
            adaptive=adaptive, rto_min=cfg.rto_min,
            rto_max=cfg.rto_max, backoff=cfg.rto_backoff,
            degraded_after=cfg.peer_degraded_after,
            retry_budget=cfg.retry_budget)
        self.dispatcher = MplDispatcher(self)
        self.transport.wait_credit = self._wait_credit
        self.transport.on_progress = self.ctx.progress_ws.notify_all
        # MPL has no user error-handler registration; terminal
        # transport failures go straight to the structured run
        # termination path.
        self.transport.on_fatal = self.task.cluster.fail_run
        self.client.delivery_filter = self._ack_fast_path
        self.client.on_arrival = self._spawn_interrupt_dispatcher
        self.client.interrupts_enabled = self.interrupt_mode
        self._register_metrics()
        resilience = self.task.cluster.resilience
        if resilience is not None:
            resilience.attach_stack(self.task.node.node_id, self)
        self._initialized = True

    def _register_metrics(self) -> None:
        """Wire this stack into the cluster's observability registry."""
        metrics = self.task.cluster.metrics
        rank = self.ctx.rank
        self.transport.ack_rtt = metrics.histogram(
            "mpl.reliability", "ack_rtt_us", node=rank)
        metrics.register_collector("mpl.reliability",
                                   self.transport.metrics, node=rank)
        telemetry = self.task.cluster.telemetry
        if telemetry is not None:
            # Same timeline-only streams as the LAPI stack, under the
            # shared "telemetry.transport" subsystem so cross-stack
            # goodput sums per window (the SLO floor reads the sum).
            tl = telemetry.timeline
            self.transport.rx_goodput_bytes = tl.stream_counter(
                "telemetry.transport", "rx_payload_bytes", node=rank)
            self.transport.rx_goodput_packets = tl.stream_counter(
                "telemetry.transport", "rx_packets", node=rank)
            self.transport.retx_stream = tl.stream_counter(
                "telemetry.transport", "retransmits", node=rank)
        metrics.register_collector("mpl.matching",
                                   self._matching_metrics, node=rank)

    def _matching_metrics(self) -> dict:
        m = self.ctx.match
        s = self.ctx.stats
        return {
            "matched_posted": m.matched_posted,
            "matched_unexpected": m.matched_unexpected,
            "envelopes_parked": m.envelopes_parked,
            "unexpected_pending": len(m.unexpected),
            "eager_buffered": s.eager_buffered,
            "eager_direct": s.eager_direct,
            "early_arrival_bytes": s.early_arrival_bytes,
            "rendezvous_round_trips": s.rendezvous,
            "rcvncalls_run": s.rcvncalls_run,
        }

    def _wait_credit(self, thread, event) -> Generator:
        """Block on a send-window credit, driving progress if polling."""
        if self.interrupt_mode and self._lockrnc_depth == 0:
            yield from thread.wait(event)
        else:
            while not event.triggered:
                yield from self.dispatcher.poll_step(thread)

    def _ack_fast_path(self, packet) -> bool:
        """Adapter-level transport-ACK handling (see the LAPI twin)."""
        if packet.kind == MplPacketKind.ACK:
            self.transport.on_ack(packet)
            return True
        return False

    # ------------------------------------------------------------------
    # fail-stop peer handling (driven by repro.resilience)
    # ------------------------------------------------------------------
    def peer_unreachable(self, peer: int, err: Exception) -> None:
        """The failure detector convicted ``peer``.

        Clean up first (open the breaker, complete unacked traffic in
        error so window/fence waiters unblock) and only then route the
        error by policy -- under ``on_peer_failure="continue"`` the
        survivors keep running against the reduced peer set.
        """
        self.ctx.dead_peers.add(peer)
        self.transport.peer_down(peer)
        self.ctx.progress_ws.notify_all()
        if self.task.cluster.on_peer_failure == "fail":
            # MPL has no user error-handler hook; conviction goes
            # straight to structured run termination.
            self.task.cluster.fail_run(err)

    def peer_absolved(self, peer: int) -> None:
        """A convicted peer answered a heartbeat again (restart)."""
        self.transport.breaker_close(peer)

    def crash_reset(self) -> None:
        """Discard all protocol state after this node's crash.

        Fail-stop semantics: the restarted node remembers nothing --
        matching queues, rendezvous handshakes, and transport windows
        all start empty.
        """
        self.transport._tx.clear()
        self.transport._rx.clear()
        ctx = self.ctx
        ctx.recv_msgs.clear()
        ctx.rndv_waiting.clear()
        ctx.match.unexpected.clear()
        ctx.match.posted.clear()

    def term(self) -> Generator:
        """Quiesce (collective) and detach."""
        self._check_live()
        yield from self.barrier()
        yield from self.wait_for(lambda: self.ctx.active_handlers == 0)
        self.client.interrupts_enabled = False
        self._initialized = False

    def _spawn_interrupt_dispatcher(self) -> None:
        if self._lockrnc_depth > 0:
            # Interrupts disabled via lockrnc: serviced on unlock.
            return
        self.task.node.cpu.spawn(
            self.dispatcher.interrupt_service,
            name=f"mpl{self.rank}.irq", priority=INTERRUPT)

    # ------------------------------------------------------------------
    # progress plumbing (mirrors the LAPI API)
    # ------------------------------------------------------------------
    def wait_for(self, predicate: Callable[[], bool]) -> Generator:
        thread = self.current_thread()
        while not predicate():
            if self.interrupt_mode and self._lockrnc_depth == 0:
                yield from thread.wait(self.ctx.progress_ws.wait())
            else:
                yield from self.dispatcher.poll_step(thread)

    def wait(self, request: Union[SendRequest, RecvRequest]) -> Generator:
        """Block until a send or receive request completes."""
        self._check_live()
        yield from self.wait_for(lambda: request.complete)

    def waitall(self, requests) -> Generator:
        """Block until every request in the iterable completes."""
        reqs = list(requests)
        yield from self.wait_for(lambda: all(r.complete for r in reqs))

    def waitany(self, requests) -> Generator:
        """Block until at least one request completes; returns the
        index of the first complete one."""
        reqs = list(requests)
        if not reqs:
            raise MplError("waitany on an empty request list")
        yield from self.wait_for(
            lambda: any(r.complete for r in reqs))
        for i, r in enumerate(reqs):
            if r.complete:
                return i

    # ------------------------------------------------------------------
    # lockrnc: MPL's interrupt disable (atomicity tool of GA-on-MPL)
    # ------------------------------------------------------------------
    def lockrnc(self, disable: bool) -> None:
        """Disable (True) / re-enable (False) communication interrupts."""
        self._check_live()
        if disable:
            self._lockrnc_depth += 1
            self.client.interrupts_enabled = False
        else:
            if self._lockrnc_depth == 0:
                raise MplError("lockrnc unlock without lock")
            self._lockrnc_depth -= 1
            if self._lockrnc_depth == 0 and self.interrupt_mode:
                self.client.interrupts_enabled = True
                self.client.arm_interrupt()

    # ------------------------------------------------------------------
    # sends
    # ------------------------------------------------------------------
    def isend(self, dst: int, source: Union[int, bytes], nbytes: int,
              tag: int) -> Generator:
        """Non-blocking send; returns a :class:`SendRequest`.

        ``source`` is a local memory address or a ``bytes`` payload
        (internal staging, used by collectives and packing layers).
        """
        self._check_live()
        cfg = self.config
        ctx = self.ctx
        thread = self.current_thread()
        if not (0 <= dst < ctx.size):
            raise MplError(f"destination {dst} outside job of {ctx.size}")
        if nbytes < 0:
            raise MplError(f"negative send length {nbytes}")
        sp = self.spans
        op_sid = None
        if sp is not None:
            t_call = self.sim.now
            op_sid = sp.open(ctx.rank, "mpl", "send", t_call,
                             parent=getattr(thread, "span_parent", None),
                             dst=dst, bytes=nbytes, tag=tag)
        yield from thread.execute(cfg.mpl_call_overhead)
        if sp is not None:
            sp.emit(ctx.rank, "mpl", "send", "call", t_call,
                    self.sim.now, parent=op_sid, bytes=nbytes)
        ctx.stats.sends += 1
        ctx.stats.bytes_sent += nbytes

        if isinstance(source, (bytes, bytearray, memoryview)):
            data = bytes(source[:nbytes])
            if len(data) != nbytes:
                raise MplError(
                    f"payload holds {len(data)} bytes, expected {nbytes}")
        else:
            data = self.memory.read(source, nbytes) if nbytes else b""

        if dst == ctx.rank:
            req = yield from self._local_send(thread, data, tag)
            if sp is not None:
                sp.close(op_sid, self.sim.now, local=True)
            return req

        msg_seq = ctx.next_seq(dst)
        if nbytes <= self.eager_limit:
            req = yield from self._send_eager(thread, dst, msg_seq, tag,
                                              data, op_sid)
        else:
            req = yield from self._send_rndv(thread, dst, msg_seq, tag,
                                             data, op_sid)
        if sp is not None:
            sp.close(op_sid, self.sim.now)
        return req

    def _send_eager(self, thread, dst: int, msg_seq: int, tag: int,
                    data: bytes, op_sid=None) -> Generator:
        cfg = self.config
        ctx = self.ctx
        buffered = len(data) <= cfg.mpl_send_buffer_limit
        proto = "eager-buffered" if buffered else "eager-direct"
        req = SendRequest(dst, msg_seq, len(data), proto)
        packets = data_packets(cfg, ctx.rank, dst, msg_seq, tag, data)
        req.total_packets = len(packets)
        sp = self.spans
        if sp is not None:
            sp.bind_packets(packets, op_sid, "send", len(data),
                            msg_key=("mpl", ctx.rank, msg_seq))
        if buffered:
            # Copy into MPL's internal send buffer: the user buffer is
            # reusable as soon as the copy finishes (the generous
            # buffering section 5.4 credits for the 1-20 KB band).
            if sp is not None:
                t_cp = self.sim.now
            yield from thread.execute(cfg.copy_cost(len(data)))
            if sp is not None:
                sp.emit(ctx.rank, "mpl", "send", "copy", t_cp,
                        self.sim.now, parent=op_sid, bytes=len(data))
            req.complete = True
            ctx.stats.eager_buffered += 1
        else:
            ctx.stats.eager_direct += 1

        def on_ack(r=req):
            if r.ack_one():
                ctx.progress_ws.notify_all()

        for pkt in packets:
            yield from thread.execute(cfg.mpl_pkt_send_cost)
            yield from self.transport.send_data(thread, pkt,
                                                on_ack=on_ack)
        return req

    def _send_rndv(self, thread, dst: int, msg_seq: int, tag: int,
                   data: bytes, op_sid=None) -> Generator:
        """Rendezvous: RTS now; a service thread streams after CTS."""
        cfg = self.config
        ctx = self.ctx
        ctx.stats.rendezvous += 1
        req = SendRequest(dst, msg_seq, len(data), "rendezvous")
        req.cts_event = self.sim.event(name=f"cts:{dst}:{msg_seq}")
        ctx.rndv_waiting[(dst, msg_seq)] = req
        yield from thread.execute(cfg.mpl_rendezvous_ctrl_cost)
        sp = self.spans
        rts = rts_packet(cfg, ctx.rank, dst, msg_seq, tag, len(data))
        if sp is not None:
            sp.bind_packet(rts, op_sid, "send", len(data))
        self.transport.send_control(rts)
        packets = data_packets(cfg, ctx.rank, dst, msg_seq, tag, data,
                               is_rndv=True)
        req.total_packets = len(packets)
        if sp is not None:
            sp.bind_packets(packets, op_sid, "send", len(data),
                            msg_key=("mpl", ctx.rank, msg_seq))
        mpl = self

        def on_ack(r=req):
            if r.ack_one():
                ctx.progress_ws.notify_all()

        def streamer(sthread):
            if sp is not None:
                t_w = sthread.sim.now
            yield from sthread.wait(req.cts_event)
            if sp is not None:
                sp.emit(ctx.rank, "mpl", "send", "rndv_wait", t_w,
                        sthread.sim.now, parent=op_sid, bytes=len(data))
            yield from sthread.execute(cfg.mpl_rendezvous_ctrl_cost)
            for pkt in packets:
                yield from sthread.execute(cfg.mpl_pkt_send_cost)
                yield from mpl.transport.send_data(sthread, pkt,
                                                   on_ack=on_ack)

        from ..machine.cpu import HANDLER
        self.task.node.cpu.spawn(streamer,
                                 name=f"mpl{ctx.rank}.rndv{msg_seq}",
                                 priority=HANDLER)
        return req

    def _local_send(self, thread, data: bytes, tag: int) -> Generator:
        """Send to self: goes through the matching engine locally."""
        cfg = self.config
        ctx = self.ctx
        from .matching import MessageState
        msg = MessageState(ctx.rank, ctx.next_seq(ctx.rank))
        msg.set_envelope(tag, len(data), False)
        yield from thread.execute(cfg.copy_cost(len(data)))
        req = SendRequest(ctx.rank, msg.msg_seq, len(data),
                          "eager-buffered")
        req.complete = True
        for env in ctx.match.admit_envelope(msg):
            bound = ctx.match.match_arrival(env)
            env.early_buffer = bytearray(data)
            env.used_early = True
            env.received = len(data)
            if bound is not None:
                yield from self.dispatcher.deliver(thread, env)
            elif env.rcvncall_fn is not None:
                ctx.recv_msgs[(env.src, env.msg_seq)] = env
                yield from self.dispatcher._maybe_complete(thread, env)
            else:
                ctx.recv_msgs[(env.src, env.msg_seq)] = env
        return req

    def send(self, dst: int, source: Union[int, bytes], nbytes: int,
             tag: int) -> Generator:
        """Blocking send (returns when the user buffer is reusable)."""
        req = yield from self.isend(dst, source, nbytes, tag)
        yield from self.wait(req)

    # ------------------------------------------------------------------
    # receives
    # ------------------------------------------------------------------
    def irecv(self, src: int, tag: int, addr: Optional[int],
              maxlen: int) -> Generator:
        """Non-blocking receive; returns a :class:`RecvRequest`.

        ``addr=None`` receives into internal storage; the payload is
        available as ``request.data`` once complete.
        """
        self._check_live()
        cfg = self.config
        ctx = self.ctx
        thread = self.current_thread()
        sp = self.spans
        op_sid = None
        if sp is not None:
            t_call = self.sim.now
            op_sid = sp.open(ctx.rank, "mpl", "recv", t_call,
                             parent=getattr(thread, "span_parent", None),
                             src=src, tag=tag)
        yield from thread.execute(cfg.mpl_call_overhead
                                  + cfg.mpl_post_recv_cost)
        if sp is not None:
            sp.emit(ctx.rank, "mpl", "recv", "call", t_call,
                    self.sim.now, parent=op_sid)
        ctx.stats.recvs += 1
        req = RecvRequest(src, tag, addr, maxlen)
        msg = ctx.match.post_recv(req)
        if msg is not None:
            if sp is not None:
                t_m = self.sim.now
            yield from thread.execute(cfg.mpl_match_cost)
            if sp is not None:
                sp.emit(ctx.rank, "mpl", "recv", "match", t_m,
                        self.sim.now, parent=op_sid, unexpected=True)
            yield from self.dispatcher._bind_flush(thread, msg)
            if msg.is_rndv:
                self.dispatcher._send_cts(msg)
            if msg.data_complete:
                yield from self.dispatcher.deliver(thread, msg)
        if sp is not None:
            sp.close(op_sid, self.sim.now)
        return req

    def recv(self, src: int, tag: int, addr: Optional[int],
             maxlen: int) -> Generator:
        """Blocking receive; returns the completed request."""
        req = yield from self.irecv(src, tag, addr, maxlen)
        yield from self.wait(req)
        return req

    def recv_bytes(self, src: int, tag: int,
                   maxlen: int = 1 << 30) -> Generator:
        """Blocking receive into internal storage; returns the bytes."""
        req = yield from self.recv(src, tag, None, maxlen)
        return req.data if req.data is not None else b""

    # ------------------------------------------------------------------
    # probe
    # ------------------------------------------------------------------
    def iprobe(self, src: int, tag: int) -> Generator:
        """Non-blocking probe: ``(src, tag, nbytes)`` of the first
        matching unexpected message, or None.

        Drives progress in polling mode (like any MPL call).
        """
        self._check_live()
        thread = self.current_thread()
        yield from thread.execute(self.config.mpl_call_overhead * 0.5)
        if (not self.interrupt_mode or self._lockrnc_depth > 0) \
                and self.client.pending > 0:
            yield from self.dispatcher.drain(thread)
        return self._match_unexpected(src, tag)

    def probe(self, src: int, tag: int) -> Generator:
        """Blocking probe: waits until a matching message is available
        (without receiving it); returns ``(src, tag, nbytes)``."""
        self._check_live()
        thread = self.current_thread()
        yield from thread.execute(self.config.mpl_call_overhead * 0.5)
        while True:
            found = self._match_unexpected(src, tag)
            if found is not None:
                return found
            if self.interrupt_mode and self._lockrnc_depth == 0:
                yield from thread.wait(self.ctx.progress_ws.wait())
            else:
                yield from self.dispatcher.poll_step(thread)

    def _match_unexpected(self, src: int, tag: int):
        for msg in self.ctx.match.unexpected:
            if ((src == ANY_SOURCE or src == msg.src)
                    and (tag == ANY_TAG or tag == msg.tag)):
                return (msg.src, msg.tag, msg.total)
        return None

    # ------------------------------------------------------------------
    # rcvncall
    # ------------------------------------------------------------------
    def rcvncall(self, tag: int, handler: Callable) -> None:
        """Register a persistent interrupt-receive handler for ``tag``.

        ``handler(task, src, tag, data)`` runs on a handler thread after
        the AIX context-creation cost; it may be a plain function or a
        generator (it can issue MPL calls, as GA's request servers do).
        """
        self._check_live()
        self.ctx.match.register_rcvncall(tag, handler)

    # ------------------------------------------------------------------
    # collectives (see collectives.py for the algorithms)
    # ------------------------------------------------------------------
    def barrier(self) -> Generator:
        from .collectives import barrier
        yield from barrier(self)

    def bcast(self, data: Optional[bytes], root: int = 0) -> Generator:
        from .collectives import bcast
        result = yield from bcast(self, data, root)
        return result

    def reduce(self, values, op: Callable, root: int = 0) -> Generator:
        from .collectives import reduce
        result = yield from reduce(self, values, op, root)
        return result

    def allreduce(self, values, op: Callable) -> Generator:
        from .collectives import allreduce
        result = yield from allreduce(self, values, op)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "interrupt" if self.interrupt_mode else "polling"
        return (f"<Mpl rank={self.rank}/{self.size} {mode}"
                f" eager={self.eager_limit}>")
