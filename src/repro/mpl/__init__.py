"""MPL/MPI -- the message-passing baseline stack of the comparison.

Implements the two-sided protocols the paper measures against LAPI:
eager (with internal send buffering and early-arrival copies) and
rendezvous (RTS/CTS) transfer, tag/source matching with per-source
in-order delivery over the reordering switch, ``rcvncall`` interrupt
receives, ``lockrnc`` atomicity, and log-time collectives.
"""

from .api import ANY_SOURCE, ANY_TAG, Mpl
from .constants import MplPacketKind, ReservedTag
from .matching import MatchEngine, MessageState, RecvRequest
from .requests import MplContext, MplStats, SendRequest

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MatchEngine",
    "MessageState",
    "Mpl",
    "MplContext",
    "MplPacketKind",
    "MplStats",
    "RecvRequest",
    "ReservedTag",
    "SendRequest",
]
