"""Send-side request objects and per-task MPL state."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..sim import Event, SimLock, WaitSet
from .matching import MatchEngine, MessageState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator

__all__ = ["SendRequest", "MplStats", "MplContext"]


class SendRequest:
    """A non-blocking send in flight.

    ``complete`` means the user buffer is reusable (MPI semantics):
    immediately after the internal copy for buffered eager sends, after
    the last acknowledgement otherwise.
    """

    __slots__ = ("dst", "msg_seq", "nbytes", "complete", "total_packets",
                 "acked_packets", "cts_event", "protocol")

    def __init__(self, dst: int, msg_seq: int, nbytes: int,
                 protocol: str) -> None:
        self.dst = dst
        self.msg_seq = msg_seq
        self.nbytes = nbytes
        #: "eager-buffered", "eager-direct", or "rendezvous".
        self.protocol = protocol
        self.complete = False
        self.total_packets = 0
        self.acked_packets = 0
        self.cts_event: Optional[Event] = None

    def ack_one(self) -> bool:
        """Record a packet ack; True when that completed the request."""
        self.acked_packets += 1
        if (not self.complete
                and self.acked_packets >= self.total_packets > 0):
            self.complete = True
            return True
        return False


@dataclass
class MplStats:
    """Operation counters for one MPL context."""

    sends: int = 0
    recvs: int = 0
    eager_buffered: int = 0
    eager_direct: int = 0
    rendezvous: int = 0
    rcvncalls_run: int = 0
    packets_processed: int = 0
    interrupts_taken: int = 0
    early_arrival_bytes: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class MplContext:
    """Mutable state of one task's MPL instance."""

    def __init__(self, sim: "Simulator", rank: int, size: int) -> None:
        self.sim = sim
        self.rank = rank
        self.size = size
        self.match = MatchEngine(rank)
        # The matcher records unexpected/reorder wait spans; it needs
        # the clock (pure reads -- it never charges time itself).
        self.match.sim = sim
        #: (src, msg_seq) -> receive-side message state.
        self.recv_msgs: dict[tuple[int, int], MessageState] = {}
        #: (dst, msg_seq) -> sender-side rendezvous state awaiting CTS.
        self.rndv_waiting: dict[tuple[int, int], SendRequest] = {}
        self._next_seq: dict[int, int] = {}
        self.progress_ws = WaitSet(sim, name=f"mpl{rank}.progress")
        self.dispatch_lock = SimLock(sim, name=f"mpl{rank}.dispatch")
        #: Peers the failure detector convicted (fail-stop dead); only
        #: populated when ``repro.resilience`` is armed.
        self.dead_peers: set[int] = set()
        self.active_handlers = 0
        self.stats = MplStats()

    def next_seq(self, dst: int) -> int:
        seq = self._next_seq.get(dst, 0)
        self._next_seq[dst] = seq + 1
        return seq
