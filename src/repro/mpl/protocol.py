"""MPL/MPI wire formats: eager data, rendezvous control.

MPI headers are 16 bytes (section 4): two-sided matching means packets
carry only (envelope, sequence, offset) -- the receiver's own state
supplies buffer addresses.  The smaller header is why MPI's peak
bandwidth edges out LAPI's; the matching state it implies is part of
why everything below the peak is slower.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.config import MachineConfig

from ..machine.packet import Packet
from .constants import MplPacketKind

__all__ = ["data_packets", "rts_packet", "cts_packet", "PROTO"]

#: Adapter demultiplexing key for the MPL stack.
PROTO = "mpl"


def _mk(src: int, dst: int, kind: str, header: int, payload: bytes,
        info: dict) -> "Packet":
    return Packet(src=src, dst=dst, proto=PROTO, kind=kind,
                  header_bytes=header, payload=payload, info=info)


def data_packets(config: "MachineConfig", src: int, dst: int,
                 msg_seq: int, tag: int, data: bytes,
                 is_rndv: bool = False) -> list["Packet"]:
    """Packets of one message's data stream (eager or post-CTS).

    The first packet carries the envelope (tag, total, protocol); later
    packets carry only sequence/offset, as real 16-byte headers would.
    """
    chunk = config.mpl_payload
    total = len(data)
    packets = []
    offset = 0
    while True:
        part = data[offset:offset + chunk]
        info = {"msg_seq": msg_seq, "offset": offset}
        if offset == 0:
            info.update(tag=tag, total=total, is_first=True,
                        is_rndv=is_rndv)
        packets.append(_mk(src, dst, MplPacketKind.DATA,
                           config.mpl_header, bytes(part), info))
        offset += len(part)
        if offset >= total:
            break
    return packets


def rts_packet(config: "MachineConfig", src: int, dst: int, msg_seq: int,
               tag: int, total: int) -> "Packet":
    """Rendezvous request-to-send: the envelope travels alone."""
    return _mk(src, dst, MplPacketKind.RTS, config.mpl_header, b"",
               {"msg_seq": msg_seq, "tag": tag, "total": total})


def cts_packet(config: "MachineConfig", src: int, dst: int,
               msg_seq: int, reply_to: int = None) -> "Packet":
    """Rendezvous clear-to-send: receiver is ready, sender may stream.

    ``reply_to`` names the uid of the RTS packet being answered (set
    whenever the receiver knows it -- identical wire contents whether
    span tracing is armed or not)."""
    return _mk(src, dst, MplPacketKind.CTS, config.mpl_header, b"",
               {"msg_seq": msg_seq, "reply_to": reply_to})
