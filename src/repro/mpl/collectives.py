"""Collectives built on MPL point-to-point messaging.

The paper's MPL-based GA and the application kernels need barrier,
broadcast, and reductions.  These use the textbook logarithmic
algorithms over reserved tags; per-source in-order matching makes plain
tag reuse across epochs safe (tokens from one source can never overtake
each other).
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from .constants import ReservedTag

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import Mpl

__all__ = ["barrier", "bcast", "reduce", "allreduce"]


def barrier(mpl: "Mpl") -> Generator:
    """Dissemination barrier: ceil(log2(N)) rounds of tokens."""
    size, rank = mpl.size, mpl.rank
    if size == 1:
        return
    dist = 1
    while dist < size:
        to = (rank + dist) % size
        frm = (rank - dist) % size
        req = yield from mpl.irecv(frm, ReservedTag.BARRIER, None, 0)
        yield from mpl.send(to, b"", 0, ReservedTag.BARRIER)
        yield from mpl.wait(req)
        dist <<= 1


def bcast(mpl: "Mpl", data: Optional[bytes], root: int = 0) -> Generator:
    """Binomial-tree broadcast of a byte payload; returns it everywhere."""
    size = mpl.size
    if size == 1:
        return data
    # Rotate ranks so the root is virtual rank 0.
    vrank = (mpl.rank - root) % size
    if vrank == 0 and data is None:
        raise ValueError("bcast root must supply data")
    # Find the bit on which this rank receives; the root never does and
    # exits the scan with the top of the tree.
    mask = 1
    while mask < size and not (vrank & mask):
        mask <<= 1
    if vrank != 0:
        parent = ((vrank - mask) + root) % size
        data = yield from mpl.recv_bytes(parent, ReservedTag.BCAST)
    # Forward down the binomial tree.
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < size:
            yield from mpl.send(((child + root) % size), data,
                                len(data), ReservedTag.BCAST)
        mask >>= 1
    return data


def reduce(mpl: "Mpl", value: Any, op: Callable[[Any, Any], Any],
           root: int = 0) -> Generator:
    """Binomial-tree reduction of picklable values; result at root.

    ``op(a, b)`` must be associative and commutative (GA uses sums and
    maxima of numpy arrays / floats).
    """
    size = mpl.size
    vrank = (mpl.rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            blob = pickle.dumps(acc, protocol=pickle.HIGHEST_PROTOCOL)
            yield from mpl.send(parent, blob, len(blob),
                                ReservedTag.REDUCE)
            break
        else:
            child = vrank | mask
            if child < size:
                blob = yield from mpl.recv_bytes(
                    ((child + root) % size), ReservedTag.REDUCE)
                acc = op(acc, pickle.loads(blob))
        mask <<= 1
    return acc if vrank == 0 else None


def allreduce(mpl: "Mpl", value: Any,
              op: Callable[[Any, Any], Any]) -> Generator:
    """Reduce to rank 0, then broadcast the result to everyone."""
    acc = yield from reduce(mpl, value, op, root=0)
    blob = pickle.dumps(acc, protocol=pickle.HIGHEST_PROTOCOL) \
        if mpl.rank == 0 else None
    blob = yield from bcast(mpl, blob, root=0)
    return pickle.loads(blob)
