"""Two-sided message matching with MPI ordering semantics.

The defining complexity of the send/receive model (and a chunk of the
overhead the paper's section 4 attributes to MPI): arriving messages
must be matched against posted receives by ``(source, tag)`` with
wildcards, **in send order per source**, even though the switch fabric
reorders packets.  This module owns:

* the posted-receive queue (FIFO; wildcard matching),
* the unexpected-message queue (messages that arrived before a matching
  receive; eager ones buffered in early-arrival storage -- the "extra
  copy"),
* per-source envelope sequencing that restores send order before any
  matching happens,
* ``rcvncall`` handler registration (MPL's interrupt-driven receive).

All state here is pure bookkeeping -- no simulated time; the dispatcher
and API charge the costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import MplError
from .constants import ANY_SOURCE, ANY_TAG

__all__ = ["MessageState", "RecvRequest", "MatchEngine"]


class MessageState:
    """Receive-side state of one incoming message (eager or rndv)."""

    __slots__ = ("src", "msg_seq", "tag", "total", "received",
                 "is_rndv", "early_buffer", "recv_req", "rcvncall_fn",
                 "matched", "envelope_known", "stash", "used_early",
                 "rts_uid", "unexpected_at", "parked_at")

    def __init__(self, src: int, msg_seq: int) -> None:
        self.src = src
        self.msg_seq = msg_seq
        # Envelope fields; valid once envelope_known.
        self.tag = -2
        self.total = -1
        self.is_rndv = False
        self.envelope_known = False
        self.received = 0
        #: uid of the RTS packet that announced this message (rndv);
        #: echoed in the CTS ``reply_to`` field.
        self.rts_uid: Optional[int] = None
        #: Span-trace timestamps: when the message joined the
        #: unexpected queue / was parked behind a sequencing gap.
        self.unexpected_at: Optional[float] = None
        self.parked_at: Optional[float] = None
        #: Data packets that arrived before the envelope: (offset, bytes).
        self.stash: list[tuple[int, bytes]] = []
        #: Early-arrival storage for eager data that beat the receive.
        self.early_buffer: Optional[bytearray] = None
        #: True if any byte of this message passed through the early
        #: buffer (forces the extra copy at receive time).
        self.used_early = False
        #: The posted receive this message is bound to, if matched.
        self.recv_req: Optional["RecvRequest"] = None
        #: rcvncall handler bound to this message, if any.
        self.rcvncall_fn: Optional[Callable] = None
        self.matched = False

    def set_envelope(self, tag: int, total: int, is_rndv: bool) -> None:
        self.tag = tag
        self.total = total
        self.is_rndv = is_rndv
        self.envelope_known = True

    @property
    def data_complete(self) -> bool:
        return self.envelope_known and self.received >= self.total


class RecvRequest:
    """A posted receive."""

    __slots__ = ("src", "tag", "addr", "maxlen", "complete", "message",
                 "received_len", "received_src", "received_tag", "sink",
                 "data")

    def __init__(self, src: int, tag: int, addr: Optional[int],
                 maxlen: int) -> None:
        self.src = src
        self.tag = tag
        #: Destination in simulated memory, or None for bytes mode (the
        #: payload is handed back as ``data``).
        self.addr = addr
        self.maxlen = maxlen
        self.complete = False
        self.message: Optional[MessageState] = None
        self.received_len = 0
        self.received_src = -1
        self.received_tag = -1
        #: Assembly area for bytes mode.
        self.sink: Optional[bytearray] = None
        #: Final payload in bytes mode (valid once complete).
        self.data: Optional[bytes] = None

    def matches(self, src: int, tag: int) -> bool:
        return ((self.src == ANY_SOURCE or self.src == src)
                and (self.tag == ANY_TAG or self.tag == tag))


@dataclass
class _SourceStream:
    """Per-source envelope sequencing state."""

    next_seq: int = 0
    #: Envelopes that arrived ahead of a gap, keyed by msg_seq.
    parked: dict[int, MessageState] = field(default_factory=dict)


class MatchEngine:
    """Posted/unexpected queues + in-order envelope admission."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        #: Simulator handle, installed by the owning context; used only
        #: to read the clock when span tracing is armed.
        self.sim = None
        self.posted: list[RecvRequest] = []
        self.unexpected: list[MessageState] = []
        self._streams: dict[int, _SourceStream] = {}
        #: tag -> persistent rcvncall handler.
        self.rcvncall_handlers: dict[int, Callable] = {}
        # Statistics
        self.matched_posted = 0
        self.matched_unexpected = 0
        self.envelopes_parked = 0

    def _stream(self, src: int) -> _SourceStream:
        st = self._streams.get(src)
        if st is None:
            st = _SourceStream()
            self._streams[src] = st
        return st

    # ------------------------------------------------------------------
    # envelope admission (called on the first packet / RTS of a message)
    # ------------------------------------------------------------------
    def admit_envelope(self, msg: MessageState) -> list[MessageState]:
        """Admit an arriving envelope, enforcing per-source send order.

        Returns the list of envelopes that became *matchable* (in send
        order) -- possibly empty if this envelope arrived ahead of a
        gap, possibly several if it filled one.
        """
        stream = self._stream(msg.src)
        if msg.msg_seq < stream.next_seq or msg.msg_seq in stream.parked:
            raise MplError(
                f"rank {self.rank}: duplicate envelope {msg.src}:"
                f"{msg.msg_seq} escaped transport dedup")
        stream.parked[msg.msg_seq] = msg
        sp = self.sim.spans if self.sim is not None else None
        if msg.msg_seq != stream.next_seq:
            self.envelopes_parked += 1
            if sp is not None:
                msg.parked_at = self.sim.now
        ready = []
        while stream.next_seq in stream.parked:
            admitted = stream.parked.pop(stream.next_seq)
            if sp is not None and admitted.parked_at is not None:
                sp.emit(self.rank, "mpl", "recv", "reorder_wait",
                        admitted.parked_at, self.sim.now,
                        parent=sp.message_origin(
                            ("mpl", admitted.src, admitted.msg_seq)),
                        bytes=admitted.total, src=admitted.src)
            ready.append(admitted)
            stream.next_seq += 1
        return ready

    # ------------------------------------------------------------------
    # matching proper
    # ------------------------------------------------------------------
    def match_arrival(self, msg: MessageState) -> Optional[RecvRequest]:
        """Match an admitted envelope against posted receives.

        On a hit the request is bound and removed from the posted queue;
        on a miss the message checks rcvncall handlers and otherwise
        joins the unexpected queue.  Returns the bound request, if any.
        """
        for i, req in enumerate(self.posted):
            if req.matches(msg.src, msg.tag):
                del self.posted[i]
                self._bind(msg, req)
                self.matched_posted += 1
                return req
        handler = self.rcvncall_handlers.get(msg.tag)
        if handler is not None:
            msg.rcvncall_fn = handler
            msg.matched = True
            return None
        if self.sim is not None and self.sim.spans is not None:
            msg.unexpected_at = self.sim.now
        self.unexpected.append(msg)
        return None

    def post_recv(self, req: RecvRequest) -> Optional[MessageState]:
        """Post a receive; returns the unexpected message it matched."""
        for i, msg in enumerate(self.unexpected):
            if req.matches(msg.src, msg.tag):
                del self.unexpected[i]
                self._bind(msg, req)
                self.matched_unexpected += 1
                sp = self.sim.spans if self.sim is not None else None
                if sp is not None and msg.unexpected_at is not None:
                    sp.emit(self.rank, "mpl", "recv", "unexpected_wait",
                            msg.unexpected_at, self.sim.now,
                            parent=sp.message_origin(
                                ("mpl", msg.src, msg.msg_seq)),
                            bytes=msg.total, src=msg.src)
                return msg
        self.posted.append(req)
        return None

    def _bind(self, msg: MessageState, req: RecvRequest) -> None:
        if msg.total > req.maxlen:
            raise MplError(
                f"rank {self.rank}: message of {msg.total} bytes"
                f" overflows a {req.maxlen}-byte receive (truncation is"
                " an error, as in MPI)")
        msg.recv_req = req
        msg.matched = True
        req.message = msg
        req.received_len = msg.total
        req.received_src = msg.src
        req.received_tag = msg.tag

    # ------------------------------------------------------------------
    def register_rcvncall(self, tag: int, handler: Callable) -> None:
        """Install a persistent interrupt-receive handler for ``tag``."""
        if tag in self.rcvncall_handlers:
            raise MplError(f"rcvncall already registered for tag {tag}")
        self.rcvncall_handlers[tag] = handler

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MatchEngine rank={self.rank} posted={len(self.posted)}"
                f" unexpected={len(self.unexpected)}>")
