"""MPL/MPI constants: wildcards, packet kinds, reserved tags."""

from __future__ import annotations

__all__ = ["ANY_SOURCE", "ANY_TAG", "MplPacketKind", "ReservedTag"]

#: Wildcard source for receive matching (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for receive matching (MPI_ANY_TAG).
ANY_TAG = -1


class MplPacketKind:
    """Wire packet kinds of the MPL/MPI stack."""

    #: Data packet of an eager or rendezvous message.
    DATA = "data"
    #: Transport acknowledgement.
    ACK = "ack"
    #: Rendezvous request-to-send (envelope only).
    RTS = "rts"
    #: Rendezvous clear-to-send.
    CTS = "cts"


class ReservedTag:
    """Negative tags reserved for internal collectives.

    User tags must be >= 0; collective traffic uses this private range
    so it can never match a user receive.
    """

    BARRIER = -10
    BCAST = -11
    REDUCE = -12

    #: Tags below this are reserved.
    USER_MIN = 0
