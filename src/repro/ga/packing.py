"""Packed column-major byte streams for GA transfers.

A piece of a global array travels as its elements packed column-major
(Fortran order), tightly.  These helpers translate between that packed
stream and (a) a rank's block storage in simulated memory, and (b) a
caller's tight local buffer holding a whole section.

They move bytes only; CPU copy *costs* are charged by the protocol code
that calls them, keeping data movement and time accounting separate
(the same discipline as :mod:`repro.machine.memory`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import GaError
from .sections import Section

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.memory import Memory
    from .array import GlobalArray

__all__ = ["read_piece_packed", "write_piece_packed",
           "scatter_packed_range", "gather_packed_range",
           "accumulate_packed_range", "local_offset_of_piece"]


def read_piece_packed(memory: "Memory", ga: "GlobalArray", rank: int,
                      piece: Section) -> bytes:
    """Read ``piece`` out of ``rank``'s block as a packed stream."""
    out = bytearray(piece.size * ga.itemsize)
    pos = 0
    for col in piece.columns():
        addr, nbytes = ga.column_run(rank, col, col.jlo)
        out[pos:pos + nbytes] = memory.read(addr, nbytes)
        pos += nbytes
    return bytes(out)


def write_piece_packed(memory: "Memory", ga: "GlobalArray", rank: int,
                       piece: Section, blob: bytes) -> None:
    """Write a packed stream into ``piece`` of ``rank``'s block."""
    if len(blob) != piece.size * ga.itemsize:
        raise GaError(
            f"packed blob of {len(blob)} bytes does not match piece"
            f" {piece} ({piece.size * ga.itemsize} bytes)")
    pos = 0
    for col in piece.columns():
        addr, nbytes = ga.column_run(rank, col, col.jlo)
        memory.write(addr, blob[pos:pos + nbytes])
        pos += nbytes


def scatter_packed_range(memory: "Memory", ga: "GlobalArray", rank: int,
                         piece: Section, blob: bytes,
                         offset: int) -> None:
    """Write ``blob`` -- bytes ``[offset, offset+len)`` of the piece's
    packed stream -- into ``rank``'s block (chunk delivery)."""
    item = ga.itemsize
    col_bytes = piece.rows * item
    end = offset + len(blob)
    if end > piece.size * item:
        raise GaError(f"chunk [{offset}:{end}] overruns piece {piece}")
    pos = offset
    while pos < end:
        ci, within = divmod(pos, col_bytes)
        j = piece.jlo + ci
        run = min(col_bytes - within, end - pos)
        col_addr = ga.element_addr(rank, piece.ilo, j)
        memory.write(col_addr + within, blob[pos - offset:
                                             pos - offset + run])
        pos += run


def gather_packed_range(memory: "Memory", ga: "GlobalArray", rank: int,
                        piece: Section, offset: int,
                        length: int) -> bytes:
    """Read bytes ``[offset, offset+length)`` of the piece's packed
    stream out of ``rank``'s block."""
    item = ga.itemsize
    col_bytes = piece.rows * item
    end = offset + length
    if end > piece.size * item:
        raise GaError(f"chunk [{offset}:{end}] overruns piece {piece}")
    out = bytearray(length)
    pos = offset
    while pos < end:
        ci, within = divmod(pos, col_bytes)
        j = piece.jlo + ci
        run = min(col_bytes - within, end - pos)
        col_addr = ga.element_addr(rank, piece.ilo, j)
        out[pos - offset:pos - offset + run] = memory.read(
            col_addr + within, run)
        pos += run
    return bytes(out)


def accumulate_packed_range(memory: "Memory", ga: "GlobalArray",
                            rank: int, piece: Section, blob: bytes,
                            offset: int, alpha: float) -> None:
    """Atomically-applied DAXPY of a packed chunk into the block:
    ``block += alpha * chunk`` over bytes ``[offset, offset+len)`` of
    the piece's packed stream.  The caller holds the GA mutex."""
    import numpy as np

    item = ga.itemsize
    col_bytes = piece.rows * item
    end = offset + len(blob)
    if end > piece.size * item:
        raise GaError(f"chunk [{offset}:{end}] overruns piece {piece}")
    if offset % item or len(blob) % item:
        raise GaError("accumulate chunk not element-aligned")
    pos = offset
    while pos < end:
        ci, within = divmod(pos, col_bytes)
        j = piece.jlo + ci
        run = min(col_bytes - within, end - pos)
        col_addr = ga.element_addr(rank, piece.ilo, j)
        view = memory.view(col_addr + within, run, dtype=ga.dtype)
        chunk = np.frombuffer(blob[pos - offset:pos - offset + run],
                              dtype=ga.dtype)
        view += np.asarray(alpha, dtype=ga.dtype) * chunk
        pos += run


def local_offset_of_piece(section: Section, piece: Section,
                          itemsize: int) -> tuple[bool, int]:
    """Locate ``piece`` inside a tight local buffer holding ``section``.

    Returns ``(contiguous_in_local, byte_offset_of_first_element)``.
    The piece is contiguous in the local buffer when it spans entire
    columns of the section (or a single column).
    """
    rel = piece.relative_to(section)
    offset = (rel.jlo * section.rows + rel.ilo) * itemsize
    contiguous = (piece.cols == 1
                  or (rel.ilo == 0 and rel.ihi == section.rows - 1))
    return contiguous, offset
