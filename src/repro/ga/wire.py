"""Binary request descriptors for the GA protocols.

The LAPI backend ships these in the AM user header (uhdr), so they must
stay small (LAPI_Qenv(MAX_UHDR_SZ) is 128 bytes here); the MPL backend
prefixes its single packed request message with the same encoding.
A fixed-layout struct -- not pickle -- keeps the size deterministic and
the wire format honest.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import GaError
from .sections import Section

__all__ = ["GaOp", "Descriptor", "DESCRIPTOR_SIZE"]


class GaOp:
    """GA request opcodes."""

    PUT = 1
    GET = 2
    ACC = 3
    GET_REPLY = 4
    READ_INC = 5
    LOCK_CAS = 6
    FENCE = 7
    SCATTER = 8
    GATHER = 9

    NAMES = {1: "put", 2: "get", 3: "acc", 4: "get_reply",
             5: "read_inc", 6: "lock_cas", 7: "fence", 8: "scatter",
             9: "gather"}


#: opcode, handle, section (4 x i64), chunk offset, total bytes, alpha,
#: reply address, reply counter id, aux value.
_FMT = "<bxxxi4qqqdqqq"
DESCRIPTOR_SIZE = struct.calcsize(_FMT)
assert DESCRIPTOR_SIZE <= 128, "descriptor must fit LAPI's uhdr limit"


@dataclass(frozen=True)
class Descriptor:
    """One GA request header.

    Field roles by opcode:

    * PUT/ACC: ``section`` is the target piece; ``offset``/``total``
      locate this chunk in the piece's packed (column-major) byte
      stream; ``alpha`` scales ACC contributions.
    * GET: ``reply_addr`` is the origin's staging buffer (or final
      buffer for contiguous replies); ``reply_cntr`` the origin counter
      to bump per reply message.
    * READ_INC / LOCK_CAS: ``aux`` carries the increment / comparand,
      ``alpha`` the CAS replacement; the old value returns in a reply.
    * FENCE: ``aux`` carries the issued-operation count being flushed.
    """

    op: int
    handle: int
    section: Section
    offset: int = 0
    total: int = 0
    alpha: float = 1.0
    reply_addr: int = 0
    reply_cntr: int = -1
    aux: int = 0

    def pack(self) -> bytes:
        s = self.section
        return struct.pack(_FMT, self.op, self.handle, s.ilo, s.ihi,
                           s.jlo, s.jhi, self.offset, self.total,
                           self.alpha, self.reply_addr, self.reply_cntr,
                           self.aux)

    @classmethod
    def unpack(cls, blob: bytes) -> "Descriptor":
        if len(blob) < DESCRIPTOR_SIZE:
            raise GaError(
                f"descriptor blob of {len(blob)} bytes, need"
                f" {DESCRIPTOR_SIZE}")
        (op, handle, ilo, ihi, jlo, jhi, offset, total, alpha,
         reply_addr, reply_cntr, aux) = struct.unpack(
            _FMT, blob[:DESCRIPTOR_SIZE])
        return cls(op=op, handle=handle,
                   section=Section(ilo, ihi, jlo, jhi), offset=offset,
                   total=total, alpha=alpha, reply_addr=reply_addr,
                   reply_cntr=reply_cntr, aux=aux)

    @property
    def op_name(self) -> str:
        return GaOp.NAMES.get(self.op, f"op{self.op}")
