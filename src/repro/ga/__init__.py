"""Global Arrays -- the paper's example user-level library (section 5).

A portable shared-memory programming model over distributed 2-D arrays:
one-sided put/get/accumulate on array sections, scatter/gather,
read-and-increment, global mutexes, and sync/fence -- implemented on
**two** backends for the paper's comparison:

* :class:`~repro.ga.lapi_backend.LapiBackend` -- the hybrid AM/RMC
  protocols of section 5.3;
* :class:`~repro.ga.mpl_backend.MplBackend` -- the older
  ``rcvncall``-based implementation of section 5.2.
"""

from .api import GlobalArrays
from .array import GlobalArray
from .config import GA_DEFAULTS, GaConfig
from .distribution import BlockDistribution, process_grid
from .sections import Section
from .wire import DESCRIPTOR_SIZE, Descriptor, GaOp

__all__ = [
    "BlockDistribution",
    "DESCRIPTOR_SIZE",
    "Descriptor",
    "GA_DEFAULTS",
    "GaConfig",
    "GaOp",
    "GlobalArray",
    "GlobalArrays",
    "Section",
    "process_grid",
]
