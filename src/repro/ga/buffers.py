"""AM receive-buffer management for the GA-on-LAPI backend.

Section 5.3.1 is devoted to this problem: the LAPI header handler must
return a buffer immediately (it cannot block or return NULL), arrival
rate can exceed the completion handlers' consumption rate, and dynamic
allocation is therefore "not practical".  GA's answer -- reproduced
here -- is a **preallocated pool**: small slots sized to a single
packet for the pipelined ~900-byte protocol, plus a handful of large
slots for multi-packet accumulate messages.  Completion handlers return
slots to the pool as soon as the data is applied to the array.

Pool exhaustion raises a hard error: it means the protocol's flow
control (the send window bounding in-flight chunks) has been violated,
which is a bug, not a runtime condition to paper over.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import GaError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.memory import Memory

__all__ = ["AmBufferPool"]


class AmBufferPool:
    """Preallocated receive slots in a node's simulated memory."""

    def __init__(self, memory: "Memory", *, small_size: int,
                 small_count: int, large_size: int,
                 large_count: int) -> None:
        if small_size <= 0 or large_size <= 0:
            raise GaError("buffer sizes must be positive")
        self.memory = memory
        self.small_size = small_size
        self.large_size = large_size
        self._small_free = [memory.malloc(small_size)
                            for _ in range(small_count)]
        self._large_free = [memory.malloc(large_size)
                            for _ in range(large_count)]
        self._owner: dict[int, str] = {}
        # Statistics
        self.small_high_water = 0
        self.large_high_water = 0
        self._small_total = small_count
        self._large_total = large_count

    # ------------------------------------------------------------------
    def acquire(self, nbytes: int) -> int:
        """Take a slot able to hold ``nbytes``; must not block.

        Called from header handlers, which LAPI forbids from blocking
        or returning NULL -- hence the hard failure on exhaustion.
        """
        if nbytes <= self.small_size and self._small_free:
            addr = self._small_free.pop()
            self._owner[addr] = "small"
            used = self._small_total - len(self._small_free)
            self.small_high_water = max(self.small_high_water, used)
            return addr
        if nbytes <= self.large_size:
            if not self._large_free:
                raise GaError(
                    "GA AM buffer pool exhausted: flow control violated"
                    f" ({nbytes}-byte request, no large slot free)")
            addr = self._large_free.pop()
            self._owner[addr] = "large"
            used = self._large_total - len(self._large_free)
            self.large_high_water = max(self.large_high_water, used)
            return addr
        raise GaError(
            f"{nbytes}-byte AM exceeds the {self.large_size}-byte large"
            " slot; the sender-side protocol must have chunked this")

    def release(self, addr: int) -> None:
        """Return a slot (from a completion handler)."""
        kind = self._owner.pop(addr, None)
        if kind == "small":
            self._small_free.append(addr)
        elif kind == "large":
            self._large_free.append(addr)
        else:
            raise GaError(f"release of unknown pool slot {addr:#x}")

    @property
    def small_free(self) -> int:
        return len(self._small_free)

    @property
    def large_free(self) -> int:
        return len(self._large_free)

    @property
    def in_use(self) -> int:
        return len(self._owner)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<AmBufferPool small {self.small_free}/{self._small_total}"
                f" large {self.large_free}/{self._large_total} free>")
