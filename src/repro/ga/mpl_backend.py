"""The GA-on-MPL backend: the paper's previous implementation (5.2).

Remote access goes through MPL request messages that interrupt the
target and invoke a ``rcvncall`` message handler:

* **put/acc**: the request header and the data are *packed into one
  message* (MPL's in-order progress rules prevent separating them --
  section 5.4 -- so the sender pays a pack copy even for contiguous
  data); the handler copies the data out of the message buffer into
  the array (another copy);
* **get**: a request message interrupts the target (paying the AIX
  handler-context cost), the handler packs the data into a reply
  message (copy) which the origin unpacks (copy);
* **atomicity** of accumulate/read-inc uses ``lockrnc`` interrupt
  disabling plus the effectively single-threaded handler execution --
  exactly the mechanism section 5.2 describes;
* **fence** exploits per-source in-order request servicing: a flush
  request's reply proves all earlier requests from this origin were
  handled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..errors import GaError
from ..sim import SimLock
from .packing import (accumulate_packed_range, local_offset_of_piece,
                      read_piece_packed, scatter_packed_range,
                      write_piece_packed)
from .sections import Section
from .wire import DESCRIPTOR_SIZE, Descriptor, GaOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import GlobalArrays
    from .array import GlobalArray

__all__ = ["MplBackend", "GA_REQ_TAG", "GA_REP_TAG"]

#: Reserved tags of the GA request/reply streams.
GA_REQ_TAG = -100
GA_REP_TAG = -101


class MplBackend:
    """rcvncall-based GA protocols over the MPL stack."""

    name = "mpl"

    def __init__(self, runtime: "GlobalArrays") -> None:
        self.runtime = runtime
        self.task = runtime.task
        self.mpl = runtime.task.mpl
        if self.mpl is None:
            raise GaError("GA MPL backend requires the MPL stack")
        self.config = runtime.config
        self.gcfg = runtime.gcfg
        self.memory = runtime.task.node.memory
        #: Serializes handler bodies: MPL handler execution is
        #: effectively single-threaded (section 5.2 relies on it).
        self._handler_lock: Optional[SimLock] = None
        #: Requests issued per target since the last fence.
        self._issued: dict[int, int] = {}

    # ------------------------------------------------------------------
    def init(self) -> Generator:
        self._handler_lock = SimLock(self.mpl.sim,
                                     name=f"ga{self.mpl.rank}.mplhdl")
        # MPL (the pre-MPI library GA originally used) buffers
        # non-blocking sends up to its internal buffer limit -- the
        # "much larger buffer space in MPL/MPI" of section 5.4 that
        # lets GA-MPL puts in the 1-20 KB band return sooner than
        # GA-LAPI's acknowledged transfers.  MP_EAGER_LIMIT is the
        # MPI-specific knob; raise the threshold to MPL's behaviour.
        self.mpl.eager_limit = max(self.mpl.eager_limit,
                                   self.config.mpl_send_buffer_limit)
        self.mpl.rcvncall(GA_REQ_TAG, self._request_handler)
        yield from self.mpl.barrier()

    def terminate(self) -> Generator:
        yield from self.sync()

    # ==================================================================
    # target side: the rcvncall request handler
    # ==================================================================
    def _request_handler(self, task, src, tag, blob):
        """Service one GA request (runs on a handler thread after the
        rcvncall context-creation cost was charged by the MPL layer)."""
        thread = task.node.cpu.current_thread()
        cfg = self.config
        ev = self._handler_lock.acquire(owner=thread)
        if not ev.triggered:
            yield from thread.wait(ev)
        try:
            desc = Descriptor.unpack(blob)
            data = blob[DESCRIPTOR_SIZE:]
            rank = self.mpl.rank
            if desc.op == GaOp.PUT:
                ga = self.runtime.array(desc.handle)
                yield from thread.execute(cfg.copy_cost(len(data)))
                scatter_packed_range(self.memory, ga, rank,
                                     desc.section, data, desc.offset)
            elif desc.op == GaOp.ACC:
                ga = self.runtime.array(desc.handle)
                # lockrnc guards against re-entry, as in section 5.2.
                self.mpl.lockrnc(True)
                try:
                    yield from thread.execute(
                        cfg.mutex_cost + cfg.daxpy_cost(len(data)))
                    accumulate_packed_range(self.memory, ga, rank,
                                            desc.section, data,
                                            desc.offset, desc.alpha)
                finally:
                    self.mpl.lockrnc(False)
            elif desc.op == GaOp.GET:
                ga = self.runtime.array(desc.handle)
                piece = desc.section
                nbytes = piece.size * ga.itemsize
                # MPL progress rules force the reply through a message
                # buffer: the handler packs unconditionally (the copy
                # LAPI's one-sided replies avoid).
                yield from thread.execute(cfg.copy_cost(nbytes))
                payload = read_piece_packed(self.memory, ga, rank,
                                            piece)
                yield from self.mpl.send(src, payload, nbytes,
                                         GA_REP_TAG)
            elif desc.op == GaOp.READ_INC:
                ga = self.runtime.array(desc.handle)
                i, j = desc.section.ilo, desc.section.jlo
                addr = ga.element_addr(rank, i, j)
                self.mpl.lockrnc(True)
                try:
                    yield from thread.execute(cfg.mutex_cost + 0.5)
                    prev = self.memory.read_i64(addr)
                    self.memory.write_i64(addr, prev + desc.aux)
                finally:
                    self.mpl.lockrnc(False)
                yield from self.mpl.send(
                    src, np.int64(prev).tobytes(), 8, GA_REP_TAG)
            elif desc.op == GaOp.LOCK_CAS:
                addr = desc.reply_addr  # lock word address (local)
                self.mpl.lockrnc(True)
                try:
                    yield from thread.execute(cfg.mutex_cost + 0.5)
                    prev = self.memory.read_i64(addr)
                    if prev == desc.aux:
                        self.memory.write_i64(addr, int(desc.alpha))
                finally:
                    self.mpl.lockrnc(False)
                yield from self.mpl.send(
                    src, np.int64(prev).tobytes(), 8, GA_REP_TAG)
            elif desc.op == GaOp.FENCE:
                # Per-source in-order servicing: everything this origin
                # sent earlier has been handled; just confirm.
                yield from self.mpl.send(src, b"", 0, GA_REP_TAG)
            elif desc.op == GaOp.SCATTER:
                ga = self.runtime.array(desc.handle)
                yield from thread.execute(cfg.copy_cost(len(data)))
                for k in range(len(data) // 24):
                    rec = data[k * 24:(k + 1) * 24]
                    i = int(np.frombuffer(rec[:8], np.int64)[0])
                    j = int(np.frombuffer(rec[8:16], np.int64)[0])
                    addr = ga.element_addr(rank, i, j)
                    self.memory.write(addr, rec[16:16 + ga.itemsize])
            elif desc.op == GaOp.GATHER:
                ga = self.runtime.array(desc.handle)
                pairs = np.frombuffer(data, np.int64).reshape(-1, 2)
                yield from thread.execute(
                    cfg.copy_cost(len(pairs) * ga.itemsize))
                out = bytearray()
                for i, j in pairs:
                    addr = ga.element_addr(rank, int(i), int(j))
                    out += self.memory.read(addr, ga.itemsize)
                yield from self.mpl.send(src, bytes(out), len(out),
                                         GA_REP_TAG)
            else:
                raise GaError(f"unknown GA request {desc.op_name!r}")
        finally:
            self._handler_lock.release()

    # ==================================================================
    # origin side
    # ==================================================================
    def _pack_request(self, thread, desc: Descriptor,
                      data: bytes) -> Generator:
        """Pack header+data into one message (the unavoidable MPL
        sender-side copy of section 5.4); returns the blob."""
        cfg = self.config
        yield from thread.execute(cfg.copy_cost(DESCRIPTOR_SIZE
                                                + len(data)))
        return desc.pack() + data

    def _count(self, owner: int) -> None:
        self._issued[owner] = self._issued.get(owner, 0) + 1

    def put(self, ga: "GlobalArray", section: Section,
            local_addr: int) -> Generator:
        yield from self._put_or_acc(ga, section, local_addr, GaOp.PUT,
                                    1.0)

    def acc(self, ga: "GlobalArray", section: Section, local_addr: int,
            alpha: float = 1.0) -> Generator:
        yield from self._put_or_acc(ga, section, local_addr, GaOp.ACC,
                                    alpha)

    def _put_or_acc(self, ga: "GlobalArray", section: Section,
                    local_addr: int, op: int,
                    alpha: float) -> Generator:
        mpl = self.mpl
        cfg = self.config
        thread = mpl.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        requests = []
        for owner, piece in ga.dist.locate(section):
            nbytes = piece.size * ga.itemsize
            data = self._extract_local(ga, section, piece, local_addr)
            if owner == mpl.rank:
                if op == GaOp.PUT:
                    yield from thread.execute(cfg.copy_cost(nbytes))
                    scatter_packed_range(self.memory, ga, mpl.rank,
                                         piece, data, 0)
                else:
                    mpl.lockrnc(True)
                    try:
                        yield from thread.execute(
                            cfg.mutex_cost + cfg.daxpy_cost(nbytes))
                        accumulate_packed_range(self.memory, ga,
                                                mpl.rank, piece, data,
                                                0, alpha)
                    finally:
                        mpl.lockrnc(False)
                continue
            desc = Descriptor(op=op, handle=ga.handle, section=piece,
                              offset=0, total=nbytes, alpha=alpha)
            blob = yield from self._pack_request(thread, desc, data)
            req = yield from mpl.isend(owner, blob, len(blob),
                                       GA_REQ_TAG)
            requests.append(req)
            self._count(owner)
        # GA put returns when local buffers are reusable; the packed
        # blob is already a private copy, so only transport completion
        # of unbuffered sends gates us.
        yield from mpl.waitall(requests)

    def get(self, ga: "GlobalArray", section: Section,
            local_addr: int) -> Generator:
        mpl = self.mpl
        cfg = self.config
        thread = mpl.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        for owner, piece in ga.dist.locate(section):
            nbytes = piece.size * ga.itemsize
            contig_local, loff = local_offset_of_piece(
                section, piece, ga.itemsize)
            if owner == mpl.rank:
                yield from thread.execute(cfg.copy_cost(nbytes))
                blob = read_piece_packed(self.memory, ga, mpl.rank,
                                         piece)
                self._insert_local(ga, section, piece, local_addr, blob)
                continue
            desc = Descriptor(op=GaOp.GET, handle=ga.handle,
                              section=piece, total=nbytes)
            blob = yield from self._pack_request(thread, desc, b"")
            yield from mpl.send(owner, blob, len(blob), GA_REQ_TAG)
            if ga.piece_is_contiguous(owner, piece) and contig_local:
                # 1-D fast path: post the receive straight onto the
                # user's buffer -- "the MPL implementation is able to
                # avoid one memory copy" (section 5.4).
                yield from mpl.recv(owner, GA_REP_TAG,
                                    local_addr + loff, nbytes)
            else:
                # Strided replies go through the receive buffer and
                # are unpacked -- the extra copy the 1998 code paid on
                # every 2-D request.
                reply = yield from mpl.recv_bytes(owner, GA_REP_TAG)
                yield from thread.execute(cfg.copy_cost(nbytes))
                self._insert_local(ga, section, piece, local_addr,
                                   reply)

    # The local pack/unpack helpers are identical to the LAPI backend's.
    def _extract_local(self, ga, section, piece, local_addr) -> bytes:
        rel = piece.relative_to(section)
        item = ga.itemsize
        out = bytearray(piece.size * item)
        pos = 0
        for c in range(rel.jlo, rel.jhi + 1):
            off = (c * section.rows + rel.ilo) * item
            run = rel.rows * item
            out[pos:pos + run] = self.memory.read(local_addr + off, run)
            pos += run
        return bytes(out)

    def _insert_local(self, ga, section, piece, local_addr,
                      blob) -> None:
        rel = piece.relative_to(section)
        item = ga.itemsize
        pos = 0
        for c in range(rel.jlo, rel.jhi + 1):
            off = (c * section.rows + rel.ilo) * item
            run = rel.rows * item
            self.memory.write(local_addr + off, blob[pos:pos + run])
            pos += run

    # ------------------------------------------------------------------
    def scatter(self, ga: "GlobalArray", points, values) -> Generator:
        mpl = self.mpl
        thread = mpl.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        by_owner: dict[int, list[int]] = {}
        for k, (i, j) in enumerate(points):
            by_owner.setdefault(ga.dist.owner_of(i, j), []).append(k)
        requests = []
        for owner, idxs in by_owner.items():
            if owner == mpl.rank:
                for k in idxs:
                    i, j = points[k]
                    addr = ga.element_addr(owner, i, j)
                    self.memory.write(
                        addr, np.asarray(values[k],
                                         dtype=ga.dtype).tobytes())
                continue
            blob = bytearray()
            for k in idxs:
                i, j = points[k]
                blob += np.int64(i).tobytes()
                blob += np.int64(j).tobytes()
                blob += np.asarray(values[k],
                                   dtype=ga.dtype).tobytes().ljust(8,
                                                                   b"\0")
            desc = Descriptor(op=GaOp.SCATTER, handle=ga.handle,
                              section=ga.local_block, total=len(blob),
                              aux=len(idxs))
            msg = yield from self._pack_request(thread, desc,
                                                bytes(blob))
            req = yield from mpl.isend(owner, msg, len(msg), GA_REQ_TAG)
            requests.append(req)
            self._count(owner)
        yield from mpl.waitall(requests)

    def gather(self, ga: "GlobalArray", points) -> Generator:
        mpl = self.mpl
        cfg = self.config
        thread = mpl.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        out = np.zeros(len(points), dtype=ga.dtype)
        by_owner: dict[int, list[int]] = {}
        for k, (i, j) in enumerate(points):
            by_owner.setdefault(ga.dist.owner_of(i, j), []).append(k)
        for owner, idxs in by_owner.items():
            if owner == mpl.rank:
                for k in idxs:
                    i, j = points[k]
                    addr = ga.element_addr(owner, i, j)
                    out[k] = np.frombuffer(
                        self.memory.read(addr, ga.itemsize),
                        dtype=ga.dtype)[0]
                continue
            blob = bytearray()
            for k in idxs:
                i, j = points[k]
                blob += np.int64(i).tobytes()
                blob += np.int64(j).tobytes()
            desc = Descriptor(op=GaOp.GATHER, handle=ga.handle,
                              section=ga.local_block, total=len(blob),
                              aux=len(idxs))
            msg = yield from self._pack_request(thread, desc,
                                                bytes(blob))
            yield from mpl.send(owner, msg, len(msg), GA_REQ_TAG)
            reply = yield from mpl.recv_bytes(owner, GA_REP_TAG)
            yield from thread.execute(
                cfg.copy_cost(len(idxs) * ga.itemsize))
            vals = np.frombuffer(reply, dtype=ga.dtype)
            for k, v in zip(idxs, vals):
                out[k] = v
        return out

    def read_inc(self, ga: "GlobalArray", point, inc: int) -> Generator:
        if ga.dtype != np.int64:
            raise GaError("read_inc requires an int64 global array")
        mpl = self.mpl
        thread = mpl.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        i, j = point
        owner = ga.dist.owner_of(i, j)
        if owner == mpl.rank:
            addr = ga.element_addr(owner, i, j)
            mpl.lockrnc(True)
            try:
                yield from thread.execute(self.config.mutex_cost + 0.5)
                prev = self.memory.read_i64(addr)
                self.memory.write_i64(addr, prev + inc)
            finally:
                mpl.lockrnc(False)
            return prev
        desc = Descriptor(op=GaOp.READ_INC, handle=ga.handle,
                          section=Section(i, i, j, j), aux=inc)
        blob = yield from self._pack_request(thread, desc, b"")
        yield from mpl.send(owner, blob, len(blob), GA_REQ_TAG)
        reply = yield from mpl.recv_bytes(owner, GA_REP_TAG)
        return int(np.frombuffer(reply, np.int64)[0])

    def lock_cas(self, owner: int, addr: int) -> Generator:
        """One CAS attempt on a remote lock word via a request."""
        mpl = self.mpl
        thread = mpl.current_thread()
        if owner == mpl.rank:
            mpl.lockrnc(True)
            try:
                yield from thread.execute(self.config.mutex_cost + 0.5)
                prev = self.memory.read_i64(addr)
                if prev == 0:
                    self.memory.write_i64(addr, 1)
            finally:
                mpl.lockrnc(False)
            return prev == 0
        desc = Descriptor(op=GaOp.LOCK_CAS, handle=-1,
                          section=Section(0, 0, 0, 0), alpha=1.0,
                          reply_addr=addr, aux=0)
        blob = yield from self._pack_request(thread, desc, b"")
        yield from mpl.send(owner, blob, len(blob), GA_REQ_TAG)
        reply = yield from mpl.recv_bytes(owner, GA_REP_TAG)
        return int(np.frombuffer(reply, np.int64)[0]) == 0

    def unlock_swap(self, owner: int, addr: int) -> Generator:
        mpl = self.mpl
        thread = mpl.current_thread()
        if owner == mpl.rank:
            mpl.lockrnc(True)
            try:
                yield from thread.execute(self.config.mutex_cost + 0.5)
                self.memory.write_i64(addr, 0)
            finally:
                mpl.lockrnc(False)
            return
        desc = Descriptor(op=GaOp.LOCK_CAS, handle=-1,
                          section=Section(0, 0, 0, 0), alpha=0.0,
                          reply_addr=addr, aux=1)
        blob = yield from self._pack_request(thread, desc, b"")
        yield from mpl.send(owner, blob, len(blob), GA_REQ_TAG)
        yield from mpl.recv_bytes(owner, GA_REP_TAG)

    # ------------------------------------------------------------------
    def fence(self, *, ordering_only: bool = False) -> Generator:
        """Flush: in-order servicing makes one round trip per target
        with outstanding requests sufficient."""
        mpl = self.mpl
        thread = mpl.current_thread()
        for owner in list(self._issued):
            count = self._issued.get(owner, 0)
            if count <= 0:
                continue
            self._issued[owner] = 0
            desc = Descriptor(op=GaOp.FENCE, handle=-1,
                              section=Section(0, 0, 0, 0), aux=count)
            blob = yield from self._pack_request(thread, desc, b"")
            yield from mpl.send(owner, blob, len(blob), GA_REQ_TAG)
            yield from mpl.recv_bytes(owner, GA_REP_TAG)

    def sync(self) -> Generator:
        yield from self.fence()
        yield from self.mpl.barrier()

    def barrier(self) -> Generator:
        yield from self.mpl.barrier()

    def exchange(self, value) -> Generator:
        """Collective allgather used by create (address exchange)."""
        gathered = yield from self.mpl.allreduce(
            [(self.mpl.rank, value)], lambda a, b: a + b)
        table = dict(gathered)
        return [table[r] for r in range(self.mpl.size)]
