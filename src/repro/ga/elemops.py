"""Whole-array collective operations of the GA toolkit.

The real Global Arrays library ships data-parallel operations over
entire arrays -- ``GA_Scale``, ``GA_Add``, ``GA_Copy``, ``GA_Ddot``,
``GA_Symmetrize``, ``GA_Transpose`` -- implemented owner-computes: each
task updates its own block through the zero-copy local view, with
communication only where the operation inherently needs it.  The
chemistry applications of section 5.4 lean on these heavily between
their one-sided phases.

All functions are collective (every task must call them with the same
arguments) and charge compute time at the node's sustained rates.
Global reductions are built *from GA itself* (partial values meet in a
small global array), so they exercise the same communication stack as
everything else -- no out-of-band magic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from ..errors import GaError
from .sections import Section

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import GlobalArrays

__all__ = ["scale", "add", "copy", "dot", "symmetrize"]


def _aligned(ga_rt: "GlobalArrays", *handles: int):
    """Fetch arrays and require identical shape + distribution."""
    arrays = [ga_rt.array(h) for h in handles]
    first = arrays[0]
    for other in arrays[1:]:
        if other.dims != first.dims or other.dist != first.dist:
            raise GaError(
                f"arrays {first.name!r} and {other.name!r} are not"
                " aligned (same dims and distribution required)")
    return arrays


def scale(ga_rt: "GlobalArrays", handle: int, alpha: float) -> Generator:
    """GA_Scale: ``A *= alpha`` (collective)."""
    ga = ga_rt.array(handle)
    thread = ga_rt.task.node.cpu.current_thread()
    if ga.local_block is not None:
        view = ga_rt.access(handle)
        yield from thread.compute(
            ga_rt.config.flop_cost(view.size))
        view *= np.asarray(alpha, dtype=ga.dtype)
    yield from ga_rt.backend.barrier()


def add(ga_rt: "GlobalArrays", c_handle: int, a_handle: int,
        b_handle: int, alpha: float = 1.0,
        beta: float = 1.0) -> Generator:
    """GA_Add: ``C = alpha*A + beta*B`` over aligned arrays."""
    c, a, b = _aligned(ga_rt, c_handle, a_handle, b_handle)
    thread = ga_rt.task.node.cpu.current_thread()
    if c.local_block is not None:
        cv = ga_rt.access(c_handle)
        av = ga_rt.access(a_handle)
        bv = ga_rt.access(b_handle)
        yield from thread.compute(
            ga_rt.config.flop_cost(3 * cv.size))
        cv[...] = (np.asarray(alpha, dtype=c.dtype) * av
                   + np.asarray(beta, dtype=c.dtype) * bv)
    yield from ga_rt.backend.barrier()


def copy(ga_rt: "GlobalArrays", src_handle: int,
         dst_handle: int) -> Generator:
    """GA_Copy: ``B = A`` over aligned arrays."""
    src, dst = _aligned(ga_rt, src_handle, dst_handle)
    thread = ga_rt.task.node.cpu.current_thread()
    if src.local_block is not None:
        sv = ga_rt.access(src_handle)
        dv = ga_rt.access(dst_handle)
        yield from thread.execute(ga_rt.config.copy_cost(sv.nbytes))
        dv[...] = sv
    yield from ga_rt.backend.barrier()


def dot(ga_rt: "GlobalArrays", a_handle: int,
        b_handle: int) -> Generator:
    """GA_Ddot: global ``sum(A * B)``; same value on every task.

    The reduction meets in a small global array: each task stores its
    partial into its slot, everyone syncs and reads the column back --
    a reduction made of GA's own one-sided operations.
    """
    a, b = _aligned(ga_rt, a_handle, b_handle)
    thread = ga_rt.task.node.cpu.current_thread()
    partial = 0.0
    if a.local_block is not None:
        av = ga_rt.access(a_handle)
        bv = ga_rt.access(b_handle)
        yield from thread.compute(
            ga_rt.config.flop_cost(2 * av.size))
        partial = float(np.sum(av * bv))
    scratch = yield from ga_rt.create((ga_rt.size, 1),
                                      dtype=np.float64,
                                      name=f"_dot{a_handle}")
    yield from ga_rt.put_ndarray(scratch,
                                 (ga_rt.rank, ga_rt.rank, 0, 0),
                                 [[partial]])
    yield from ga_rt.sync()
    col = yield from ga_rt.get_ndarray(scratch,
                                       (0, ga_rt.size - 1, 0, 0))
    yield from ga_rt.sync()
    yield from ga_rt.destroy(scratch)
    return float(col.sum())


def symmetrize(ga_rt: "GlobalArrays", handle: int) -> Generator:
    """GA_Symmetrize: ``A = (A + A^T) / 2`` for a square array.

    Each task fetches the transpose-image of its block one-sidedly
    (the classic mixed local/remote access pattern), so tasks must not
    update their blocks until everyone has read: two sync points
    bracket the update.
    """
    ga = ga_rt.array(handle)
    n, m = ga.dims
    if n != m:
        raise GaError(f"symmetrize needs a square array, got {ga.dims}")
    thread = ga_rt.task.node.cpu.current_thread()
    block = ga.local_block
    mirror = None
    if block is not None:
        src = Section(block.jlo, block.jhi, block.ilo, block.ihi)
        mirror = yield from ga_rt.get_ndarray(handle, src)
    yield from ga_rt.sync()  # all reads done before anyone writes
    if block is not None:
        view = ga_rt.access(handle)
        yield from thread.compute(
            ga_rt.config.flop_cost(2 * view.size))
        view[...] = 0.5 * (view + mirror.T)
    yield from ga_rt.sync()
