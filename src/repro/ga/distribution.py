"""Block distribution of Global Arrays over tasks.

GA distributes a dense 2-D array over a process grid in contiguous
blocks; every task can compute, locally and exactly, which task owns any
element and where each owner's block starts -- the "full locality
information and control" section 5.1 credits for application
scalability.

The grid is chosen by the classic GA heuristic: the most square
factorization ``pr x pc`` of the task count, biased toward more row
blocks (Fortran column-major storage keeps columns contiguous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import GaError
from .sections import Section

__all__ = ["BlockDistribution", "process_grid"]


def process_grid(ntasks: int, dims: tuple[int, int]) -> tuple[int, int]:
    """Choose a ``pr x pc`` process grid for ``ntasks`` tasks.

    Picks the factorization closest to the array's aspect ratio so
    blocks come out roughly square (GA's default heuristic).  When the
    array is smaller than the task count in some dimension, the excess
    grid slots own empty blocks (real GA behaves the same way for tiny
    arrays such as shared counters).
    """
    if ntasks < 1:
        raise GaError(f"need at least one task, got {ntasks}")
    n, m = dims
    best = (ntasks, 1)
    best_score = None
    for pr in range(1, ntasks + 1):
        if ntasks % pr:
            continue
        pc = ntasks // pr
        # Penalize grid slots that would own nothing, then prefer
        # square blocks.
        empty = max(0, pr - n) * pc + max(0, pc - m) * min(pr, n)
        br, bc = n / min(pr, n), m / min(pc, m)
        score = (empty * 1e9) + abs(br - bc)
        if best_score is None or score < best_score:
            best_score = score
            best = (pr, pc)
    return best


@dataclass(frozen=True)
class BlockDistribution:
    """Owner-computes mapping of a 2-D array onto a task grid."""

    dims: tuple[int, int]
    pgrid: tuple[int, int]

    @classmethod
    def create(cls, dims: tuple[int, int],
               ntasks: int) -> "BlockDistribution":
        n, m = dims
        if n < 1 or m < 1:
            raise GaError(f"invalid array dims {dims}")
        return cls(dims=(n, m), pgrid=process_grid(ntasks, (n, m)))

    @property
    def ntasks(self) -> int:
        return self.pgrid[0] * self.pgrid[1]

    # ------------------------------------------------------------------
    def _split(self, extent: int, parts: int, index: int) -> tuple[int, int]:
        """Inclusive bounds of chunk ``index`` when ``extent`` elements
        split into ``parts`` nearly equal contiguous chunks."""
        base, rem = divmod(extent, parts)
        lo = index * base + min(index, rem)
        hi = lo + base - 1 + (1 if index < rem else 0)
        return lo, hi

    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates of a rank (column-major rank ordering)."""
        pr, pc = self.pgrid
        if not (0 <= rank < pr * pc):
            raise GaError(f"rank {rank} outside {pr}x{pc} grid")
        return rank % pr, rank // pr

    def rank_of(self, pi: int, pj: int) -> int:
        pr, _ = self.pgrid
        return pj * pr + pi

    def block(self, rank: int) -> Optional[Section]:
        """The section of the array owned by ``rank``.

        ``None`` when the rank owns nothing (array smaller than the
        grid in some dimension).
        """
        pr, pc = self.pgrid
        pi, pj = self.coords(rank)
        ilo, ihi = self._split(self.dims[0], pr, pi)
        jlo, jhi = self._split(self.dims[1], pc, pj)
        if ilo > ihi or jlo > jhi:
            return None
        return Section(ilo, ihi, jlo, jhi)

    def owner_of(self, i: int, j: int) -> int:
        """The rank owning element ``(i, j)``."""
        n, m = self.dims
        if not (0 <= i < n and 0 <= j < m):
            raise GaError(f"element ({i},{j}) outside {n}x{m} array")
        pr, pc = self.pgrid
        pi = self._find(i, self.dims[0], pr)
        pj = self._find(j, self.dims[1], pc)
        return self.rank_of(pi, pj)

    def _find(self, x: int, extent: int, parts: int) -> int:
        base, rem = divmod(extent, parts)
        cut = rem * (base + 1)
        if x < cut:
            return x // (base + 1)
        return rem + (x - cut) // base if base else rem

    def locate(self, section) -> list[tuple[int, Section]]:
        """Decompose ``section`` into per-owner pieces.

        Returns ``(rank, piece)`` pairs covering the section exactly,
        ordered by rank -- the core of GA's owner-computes transfers.
        """
        section = Section.of(section)
        n, m = self.dims
        if not Section(0, n - 1, 0, m - 1).contains(section):
            raise GaError(f"section {section} outside {n}x{m} array")
        pieces = []
        for rank in range(self.ntasks):
            block = self.block(rank)
            if block is None:
                continue
            piece = block.intersect(section)
            if piece is not None:
                pieces.append((rank, piece))
        return pieces

    def blocks(self) -> Iterator[tuple[int, Section]]:
        """All (rank, block) pairs with non-empty blocks."""
        for rank in range(self.ntasks):
            block = self.block(rank)
            if block is not None:
                yield rank, block
