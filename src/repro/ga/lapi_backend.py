"""The GA-on-LAPI backend: section 5.3's hybrid protocols.

Protocol selection, per owner piece of a request:

* **contiguous** piece (single column -- the paper's "1-D" -- or
  full-height columns): direct ``LAPI_Put`` / ``LAPI_Get``, zero
  intermediate copies (the headline advantage of section 5.4);
* **strided** piece below the 0.5 MB threshold: the piece's packed
  stream ships as pipelined single-packet active messages of ~900
  bytes each (the uhdr carries the request descriptor, the remainder
  of the packet carries data -- section 5.3.1's exploitation of header
  room and pipelining);
* **strided** piece at/above the threshold: per-column remote memory
  copies (the 0.5 MB protocol switch visible in Figures 3 and 4);
* **accumulate** always travels by active message (the target must
  apply it atomically under the GA mutex); large payloads use
  large-slot chunks instead of packet-sized ones;
* **get** for strided pieces is an AM request whose completion handler
  packs the data and ``LAPI_Put``s it back into the origin's staging
  buffer, bumping the origin's reply counter.

Completion accounting follows section 5.3.2: every remote put/acc
request carries the per-target *generalized counter* as its completion
counter; ``fence`` passes the issued count to ``LAPI_Waitcntr``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from ..errors import GaError
from .buffers import AmBufferPool
from .gencounters import GenCounterArray
from .packing import (accumulate_packed_range, gather_packed_range,
                      local_offset_of_piece, read_piece_packed,
                      scatter_packed_range)
from .sections import Section
from .wire import DESCRIPTOR_SIZE, Descriptor, GaOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .api import GlobalArrays
    from .array import GlobalArray

__all__ = ["LapiBackend"]


class LapiBackend:
    """Hybrid AM/RMC protocols over the LAPI stack."""

    name = "lapi"

    def __init__(self, runtime: "GlobalArrays") -> None:
        self.runtime = runtime
        self.task = runtime.task
        self.lapi = runtime.task.lapi
        if self.lapi is None:
            raise GaError("GA LAPI backend requires the LAPI stack")
        self.config = runtime.config  # machine config
        self.gcfg = runtime.gcfg      # GA thresholds
        self.memory = runtime.task.node.memory
        self.pool: Optional[AmBufferPool] = None
        self.gen: Optional[GenCounterArray] = None
        self._chunk_hid: Optional[int] = None
        self._reply_cntr = None
        self._org_cntr = None
        self._acc_mutex = None

    # ------------------------------------------------------------------
    @property
    def chunk_payload(self) -> int:
        """Data bytes a single-packet AM chunk can carry beside the
        descriptor (the "~900 bytes" of section 5.3.1)."""
        natural = (self.config.packet_size - self.config.lapi_header
                   - DESCRIPTOR_SIZE)
        if self.gcfg.am_chunk_cap is not None:
            return min(natural, self.gcfg.am_chunk_cap)
        return natural

    def init(self) -> Generator:
        from ..sim import SimLock
        lapi = self.lapi
        self.pool = AmBufferPool(
            self.memory,
            small_size=self.config.packet_size,
            small_count=self.gcfg.pool_small_count,
            large_size=self.gcfg.pool_large_size,
            large_count=self.gcfg.pool_large_count)
        self.gen = GenCounterArray(lapi)
        self._reply_cntr = lapi.counter(name="ga.reply")
        self._org_cntr = lapi.counter(name="ga.org")
        self._acc_mutex = SimLock(lapi.sim, name=f"ga{lapi.rank}.accmx")
        self._chunk_hid = lapi.register_handler(self._chunk_hh)
        self.task.cluster.metrics.register_collector(
            "ga.buffers", self._pool_metrics, node=self.task.rank)
        yield from lapi.gfence()

    def _pool_metrics(self) -> dict:
        """Pool occupancy for the observability registry (collector)."""
        pool = self.pool
        return {
            "small_high_water": pool.small_high_water,
            "large_high_water": pool.large_high_water,
            "small_free": pool.small_free,
            "large_free": pool.large_free,
            "in_use": pool.in_use,
        }

    def terminate(self) -> Generator:
        yield from self.sync()

    # ==================================================================
    # target side: the AM header handler and completion handlers
    # ==================================================================
    def _chunk_hh(self, task, src, uhdr, udata_len):
        """Header handler for every GA active message.

        Must not block and must return a buffer for data-bearing
        messages (section 5.3.1), hence the preallocated pool.
        """
        desc = Descriptor.unpack(uhdr)
        if udata_len == 0:
            return None, self._ctrl_cmpl, (desc, src)
        slot = self.pool.acquire(udata_len)
        return slot, self._data_cmpl, (desc, src, slot, udata_len)

    def _data_cmpl(self, task, info):
        """Completion handler for data-bearing chunks (put/acc/scatter/
        gather index lists).  Runs on its own HANDLER thread."""
        desc, src, slot, nbytes = info
        thread = task.node.cpu.current_thread()
        cfg = self.config
        try:
            blob = self.memory.read(slot, nbytes)
            ga = self.runtime.array(desc.handle)
            if desc.op == GaOp.PUT:
                yield from thread.execute(cfg.copy_cost(nbytes))
                scatter_packed_range(self.memory, ga, self.lapi.rank,
                                     desc.section, blob, desc.offset)
            elif desc.op == GaOp.ACC:
                yield from self._apply_acc(thread, ga, desc, blob)
            elif desc.op == GaOp.SCATTER:
                yield from self._apply_scatter(thread, ga, blob)
            elif desc.op == GaOp.GATHER:
                yield from self._serve_gather(thread, ga, desc, src,
                                              blob)
            else:
                raise GaError(
                    f"unexpected data chunk op {desc.op_name!r}")
        finally:
            self.pool.release(slot)

    def _apply_acc(self, thread, ga, desc: Descriptor,
                   blob: bytes) -> Generator:
        """Atomic accumulate: mutex + DAXPY (section 5.3.3)."""
        cfg = self.config
        ev = self._acc_mutex.acquire(owner=thread)
        if not ev.triggered:
            yield from thread.wait(ev)
        try:
            yield from thread.execute(cfg.mutex_cost
                                      + cfg.daxpy_cost(len(blob)))
            accumulate_packed_range(self.memory, ga, self.lapi.rank,
                                    desc.section, blob, desc.offset,
                                    desc.alpha)
        finally:
            self._acc_mutex.release()

    def _apply_scatter(self, thread, ga, blob: bytes) -> Generator:
        """Apply a scatter chunk: 24-byte [i, j, raw value] records."""
        cfg = self.config
        yield from thread.execute(cfg.copy_cost(len(blob)))
        for k in range(len(blob) // 24):
            rec = blob[k * 24:(k + 1) * 24]
            i = int(np.frombuffer(rec[:8], dtype=np.int64)[0])
            j = int(np.frombuffer(rec[8:16], dtype=np.int64)[0])
            addr = ga.element_addr(self.lapi.rank, i, j)
            self.memory.write(addr, rec[16:16 + ga.itemsize])

    def _serve_gather(self, thread, ga, desc: Descriptor, src: int,
                      blob: bytes) -> Generator:
        """Serve a gather chunk: read listed elements, put values back."""
        cfg = self.config
        pairs = np.frombuffer(blob, dtype=np.int64).reshape(-1, 2)
        yield from thread.execute(cfg.copy_cost(len(pairs) * ga.itemsize))
        out = bytearray()
        for i, j in pairs:
            addr = ga.element_addr(self.lapi.rank, int(i), int(j))
            out += self.memory.read(addr, ga.itemsize)
        yield from self._put_reply(thread, src, desc, bytes(out))

    def _ctrl_cmpl(self, task, info):
        """Completion handler for data-less requests (get)."""
        desc, src = info
        thread = task.node.cpu.current_thread()
        cfg = self.config
        if desc.op != GaOp.GET:
            raise GaError(f"unexpected control op {desc.op_name!r}")
        ga = self.runtime.array(desc.handle)
        piece = desc.section
        nbytes = piece.size * ga.itemsize
        # Pack the piece (one copy at the target, charged)...
        yield from thread.execute(cfg.copy_cost(nbytes))
        blob = read_piece_packed(self.memory, ga, self.lapi.rank, piece)
        # ...and push it into the origin's staging buffer.
        yield from self._put_reply(thread, src, desc, blob)

    def _put_reply(self, thread, src: int, desc: Descriptor,
                   blob: bytes) -> Generator:
        """LAPI_Put ``blob`` to the origin's reply address, bumping its
        reply counter; holds the scratch until retransmit-safe."""
        scratch = self.memory.malloc(max(len(blob), 1))
        self.memory.write(scratch, blob)
        org = self.lapi.counter()
        yield from self.lapi.put(src, len(blob), desc.reply_addr,
                                 scratch, tgt_cntr=desc.reply_cntr,
                                 org_cntr=org)
        yield from self.lapi.waitcntr(org, 1)
        self.memory.free(scratch)

    # ==================================================================
    # origin side: put / get / acc
    # ==================================================================
    def put(self, ga: "GlobalArray", section: Section,
            local_addr: int) -> Generator:
        yield from self._put_or_acc(ga, section, local_addr,
                                    op=GaOp.PUT, alpha=1.0)

    def acc(self, ga: "GlobalArray", section: Section, local_addr: int,
            alpha: float = 1.0) -> Generator:
        yield from self._put_or_acc(ga, section, local_addr,
                                    op=GaOp.ACC, alpha=alpha)

    def _put_or_acc(self, ga: "GlobalArray", section: Section,
                    local_addr: int, *, op: int,
                    alpha: float) -> Generator:
        lapi = self.lapi
        sp = lapi.spans
        if sp is None:
            yield from self._put_or_acc_body(ga, section, local_addr,
                                             op=op, alpha=alpha)
            return
        thread = lapi.current_thread()
        name = "ga.acc" if op == GaOp.ACC else "ga.put"
        op_sid = sp.open(lapi.rank, "ga", name, lapi.sim.now,
                         parent=getattr(thread, "span_parent", None),
                         bytes=section.size * ga.itemsize)
        # Nested LAPI puts/amsends parent under the GA operation.
        prev = getattr(thread, "span_parent", None)
        thread.span_parent = op_sid
        try:
            yield from self._put_or_acc_body(ga, section, local_addr,
                                             op=op, alpha=alpha)
        finally:
            thread.span_parent = prev
            sp.close(op_sid, lapi.sim.now)

    def _put_or_acc_body(self, ga: "GlobalArray", section: Section,
                         local_addr: int, *, op: int,
                         alpha: float) -> Generator:
        lapi = self.lapi
        cfg = self.config
        thread = lapi.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        ops_issued = 0
        scratches = []
        for owner, piece in ga.dist.locate(section):
            contig_local, loff = local_offset_of_piece(
                section, piece, ga.itemsize)
            nbytes = piece.size * ga.itemsize
            if owner == lapi.rank:
                yield from self._local_put_acc(thread, ga, piece,
                                               local_addr, section, op,
                                               alpha)
                continue
            # Source bytes: direct from the local buffer when the piece
            # is contiguous there, else packed into a scratch (a copy).
            if contig_local:
                src_addr = local_addr + loff
            else:
                blob = self._extract_local(ga, section, piece,
                                           local_addr)
                yield from thread.execute(cfg.copy_cost(nbytes))
                src_addr = self.memory.malloc(nbytes)
                self.memory.write(src_addr, blob)
                scratches.append(src_addr)

            if op == GaOp.PUT and ga.piece_is_contiguous(owner, piece):
                # Direct RMC: the paper's preferred 1-D path.
                tgt_addr, _ = ga.piece_addr_len(owner, piece)
                yield from lapi.put(owner, nbytes, tgt_addr, src_addr,
                                    org_cntr=self._org_cntr,
                                    cmpl_cntr=self.gen[owner].cntr)
                self.gen[owner].record("put")
                ops_issued += 1
            elif op == GaOp.PUT and self.gcfg.use_vector_rmc:
                # Future-work path (section 6 #1): one vector put, no
                # per-column calls, no pack copies.
                col_bytes = piece.rows * ga.itemsize
                runs = []
                for ci, col in enumerate(piece.columns()):
                    runs.append((ga.element_addr(owner, piece.ilo,
                                                 col.jlo),
                                 src_addr + ci * col_bytes, col_bytes))
                yield from lapi.putv(owner, runs,
                                     org_cntr=self._org_cntr,
                                     cmpl_cntr=self.gen[owner].cntr)
                self.gen[owner].record("put")
                ops_issued += 1
            elif (op == GaOp.PUT
                  and nbytes >= self.gcfg.strided_rmc_threshold):
                # Large strided: per-column RMC (the 0.5 MB switch).
                col_bytes = piece.rows * ga.itemsize
                for ci, col in enumerate(piece.columns()):
                    tgt_addr = ga.element_addr(owner, piece.ilo, col.jlo)
                    yield from lapi.put(
                        owner, col_bytes, tgt_addr,
                        src_addr + ci * col_bytes,
                        org_cntr=self._org_cntr,
                        cmpl_cntr=self.gen[owner].cntr)
                    ops_issued += 1
                self.gen[owner].record("put", piece.cols)
            else:
                # Pipelined AM chunks.
                chunk = self.chunk_payload
                if op == GaOp.ACC and nbytes > self.gcfg.acc_large_threshold:
                    chunk = self.gcfg.pool_large_size
                sent = yield from self._send_chunks(
                    thread, ga, owner, piece, src_addr, nbytes, op,
                    alpha, chunk)
                ops_issued += sent
        # GA put/acc returns when the local buffer is reusable.  Small
        # operations fired the origin counter synchronously (internal
        # retransmit copy), so a cheap inline check usually suffices and
        # the full Waitcntr call is only paid when something is still
        # in flight.
        if ops_issued:
            if self._org_cntr.value >= ops_issued:
                yield from thread.execute(cfg.lapi_counter_update)
                self._org_cntr.set(self._org_cntr.value - ops_issued)
            else:
                yield from lapi.waitcntr(self._org_cntr, ops_issued)
        for addr in scratches:
            self.memory.free(addr)

    def _send_chunks(self, thread, ga, owner: int, piece: Section,
                     src_addr: int, nbytes: int, op: int, alpha: float,
                     chunk: int) -> Generator:
        """Stream the packed piece as AM chunks; returns the count."""
        lapi = self.lapi
        sent = 0
        offset = 0
        while True:
            this = min(chunk, nbytes - offset)
            desc = Descriptor(op=op, handle=ga.handle, section=piece,
                              offset=offset, total=nbytes, alpha=alpha)
            yield from lapi.amsend(
                owner, self._chunk_hid, desc.pack(),
                src_addr + offset, this,
                org_cntr=self._org_cntr,
                cmpl_cntr=self.gen[owner].cntr)
            self.gen[owner].record(GaOp.NAMES[op])
            sent += 1
            offset += this
            if offset >= nbytes:
                return sent

    def _extract_local(self, ga, section: Section, piece: Section,
                       local_addr: int) -> bytes:
        """Pack a strided piece out of the tight local section buffer."""
        rel = piece.relative_to(section)
        item = ga.itemsize
        out = bytearray(piece.size * item)
        pos = 0
        for c in range(rel.jlo, rel.jhi + 1):
            off = (c * section.rows + rel.ilo) * item
            run = rel.rows * item
            out[pos:pos + run] = self.memory.read(local_addr + off, run)
            pos += run
        return bytes(out)

    def _insert_local(self, ga, section: Section, piece: Section,
                      local_addr: int, blob: bytes) -> None:
        """Unpack a piece's packed stream into the local section buffer."""
        rel = piece.relative_to(section)
        item = ga.itemsize
        pos = 0
        for c in range(rel.jlo, rel.jhi + 1):
            off = (c * section.rows + rel.ilo) * item
            run = rel.rows * item
            self.memory.write(local_addr + off, blob[pos:pos + run])
            pos += run

    def _local_put_acc(self, thread, ga, piece: Section, local_addr: int,
                       section: Section, op: int,
                       alpha: float) -> Generator:
        cfg = self.config
        nbytes = piece.size * ga.itemsize
        blob = self._extract_local(ga, section, piece, local_addr)
        if op == GaOp.PUT:
            yield from thread.execute(cfg.copy_cost(nbytes))
            scatter_packed_range(self.memory, ga, self.lapi.rank, piece,
                                 blob, 0)
        else:
            desc = Descriptor(op=GaOp.ACC, handle=ga.handle,
                              section=piece, total=nbytes, alpha=alpha)
            yield from self._apply_acc(thread, ga, desc, blob)

    # ------------------------------------------------------------------
    def get(self, ga: "GlobalArray", section: Section,
            local_addr: int) -> Generator:
        """Blocking GA get (the operation is blocking in GA)."""
        lapi = self.lapi
        sp = lapi.spans
        if sp is None:
            yield from self._get_body(ga, section, local_addr)
            return
        thread = lapi.current_thread()
        op_sid = sp.open(lapi.rank, "ga", "ga.get", lapi.sim.now,
                         parent=getattr(thread, "span_parent", None),
                         bytes=section.size * ga.itemsize)
        prev = getattr(thread, "span_parent", None)
        thread.span_parent = op_sid
        try:
            yield from self._get_body(ga, section, local_addr)
        finally:
            thread.span_parent = prev
            sp.close(op_sid, lapi.sim.now)

    def _get_body(self, ga: "GlobalArray", section: Section,
                  local_addr: int) -> Generator:
        lapi = self.lapi
        cfg = self.config
        thread = lapi.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        replies_expected = 0
        staged: list[tuple[Section, int, int]] = []  # piece, stage, len
        for owner, piece in ga.dist.locate(section):
            contig_local, loff = local_offset_of_piece(
                section, piece, ga.itemsize)
            nbytes = piece.size * ga.itemsize
            if owner == lapi.rank:
                yield from thread.execute(cfg.copy_cost(nbytes))
                blob = read_piece_packed(self.memory, ga, lapi.rank,
                                         piece)
                self._insert_local(ga, section, piece, local_addr, blob)
                continue
            item = ga.itemsize
            rel = piece.relative_to(section)
            if ga.piece_is_contiguous(owner, piece) and contig_local:
                # Direct RMC straight into the user's buffer: zero
                # copies end to end (section 5.4's 1-D fast path).
                tgt_addr, _ = ga.piece_addr_len(owner, piece)
                yield from lapi.get(owner, nbytes, tgt_addr,
                                    local_addr + loff,
                                    org_cntr=self._reply_cntr)
                replies_expected += 1
            elif self.gcfg.use_vector_rmc:
                # Future-work path: one vector get, runs land directly
                # in the user's buffer.
                runs = []
                for ci, col in enumerate(piece.columns()):
                    dst = local_addr + ((rel.jlo + ci) * section.rows
                                        + rel.ilo) * item
                    runs.append((ga.element_addr(owner, piece.ilo,
                                                 col.jlo),
                                 dst, piece.rows * item))
                yield from lapi.getv(owner, runs,
                                     org_cntr=self._reply_cntr)
                replies_expected += 1
            elif (self.gcfg.get_strided_rmc_threshold is not None
                  and nbytes >= self.gcfg.get_strided_rmc_threshold):
                # The paper's 0.5MB switch: per-column gets into the
                # user buffer (opt-in; see GaConfig for why).
                for ci, col in enumerate(piece.columns()):
                    tgt_addr = ga.element_addr(owner, piece.ilo, col.jlo)
                    dst = local_addr + ((rel.jlo + ci) * section.rows
                                        + rel.ilo) * item
                    yield from lapi.get(owner, piece.rows * item,
                                        tgt_addr, dst,
                                        org_cntr=self._reply_cntr)
                    replies_expected += 1
            else:
                # AM request; the target puts the packed piece back.
                # When the piece occupies one run of the local buffer
                # the reply lands there directly; otherwise it goes via
                # a staging buffer and is scattered (the extra copy).
                if contig_local:
                    reply_addr = local_addr + loff
                else:
                    reply_addr = self.memory.malloc(nbytes)
                    staged.append((piece, reply_addr, nbytes))
                desc = Descriptor(op=GaOp.GET, handle=ga.handle,
                                  section=piece, total=nbytes,
                                  reply_addr=reply_addr,
                                  reply_cntr=self._reply_cntr.id)
                yield from lapi.amsend(owner, self._chunk_hid,
                                       desc.pack(), None, 0)
                replies_expected += 1
        if replies_expected:
            yield from lapi.waitcntr(self._reply_cntr, replies_expected)
        for piece, stage, nbytes in staged:
            yield from thread.execute(cfg.copy_cost(nbytes))
            blob = self.memory.read(stage, nbytes)
            self._insert_local(ga, section, piece, local_addr, blob)
            self.memory.free(stage)

    # ==================================================================
    # scatter / gather / read_inc / locks / sync
    # ==================================================================
    def scatter(self, ga: "GlobalArray", points: list[tuple[int, int]],
                values: np.ndarray) -> Generator:
        lapi = self.lapi
        thread = lapi.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        by_owner: dict[int, list[int]] = {}
        for k, (i, j) in enumerate(points):
            by_owner.setdefault(ga.dist.owner_of(i, j), []).append(k)
        ops = 0
        for owner, idxs in by_owner.items():
            if owner == lapi.rank:
                for k in idxs:
                    i, j = points[k]
                    addr = ga.element_addr(owner, i, j)
                    self.memory.write(
                        addr, np.asarray(values[k],
                                         dtype=ga.dtype).tobytes())
                continue
            step = self.gcfg.scatter_chunk_elems
            for s in range(0, len(idxs), step):
                group = idxs[s:s + step]
                blob = bytearray()
                for k in group:
                    i, j = points[k]
                    v = np.asarray(values[k], dtype=ga.dtype)
                    blob += np.int64(i).tobytes()
                    blob += np.int64(j).tobytes()
                    blob += v.tobytes().ljust(8, b"\0")
                desc = Descriptor(op=GaOp.SCATTER, handle=ga.handle,
                                  section=ga.local_block,
                                  total=len(blob), aux=len(group))
                yield from lapi.amsend(owner, self._chunk_hid,
                                       desc.pack(), bytes(blob),
                                       len(blob),
                                       org_cntr=self._org_cntr,
                                       cmpl_cntr=self.gen[owner].cntr)
                self.gen[owner].record("scatter")
                ops += 1
        if ops:
            yield from lapi.waitcntr(self._org_cntr, ops)

    def gather(self, ga: "GlobalArray",
               points: list[tuple[int, int]]) -> Generator:
        lapi = self.lapi
        cfg = self.config
        thread = lapi.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        out = np.zeros(len(points), dtype=ga.dtype)
        by_owner: dict[int, list[int]] = {}
        for k, (i, j) in enumerate(points):
            by_owner.setdefault(ga.dist.owner_of(i, j), []).append(k)
        pending: list[tuple[list[int], int]] = []
        replies = 0
        for owner, idxs in by_owner.items():
            if owner == lapi.rank:
                for k in idxs:
                    i, j = points[k]
                    addr = ga.element_addr(owner, i, j)
                    out[k] = np.frombuffer(
                        self.memory.read(addr, ga.itemsize),
                        dtype=ga.dtype)[0]
                continue
            step = self.gcfg.scatter_chunk_elems
            for s in range(0, len(idxs), step):
                group = idxs[s:s + step]
                blob = bytearray()
                for k in group:
                    i, j = points[k]
                    blob += np.int64(i).tobytes()
                    blob += np.int64(j).tobytes()
                stage = self.memory.malloc(len(group) * ga.itemsize)
                desc = Descriptor(op=GaOp.GATHER, handle=ga.handle,
                                  section=ga.local_block,
                                  total=len(group) * ga.itemsize,
                                  reply_addr=stage,
                                  reply_cntr=self._reply_cntr.id,
                                  aux=len(group))
                yield from lapi.amsend(owner, self._chunk_hid,
                                       desc.pack(), bytes(blob),
                                       len(blob))
                pending.append((group, stage))
                replies += 1
        if replies:
            yield from lapi.waitcntr(self._reply_cntr, replies)
        for group, stage in pending:
            yield from thread.execute(
                cfg.copy_cost(len(group) * ga.itemsize))
            vals = np.frombuffer(
                self.memory.read(stage, len(group) * ga.itemsize),
                dtype=ga.dtype)
            for k, v in zip(group, vals):
                out[k] = v
            self.memory.free(stage)
        return out

    def read_inc(self, ga: "GlobalArray", point: tuple[int, int],
                 inc: int) -> Generator:
        """Atomic fetch-and-add on an int64 element via LAPI_Rmw."""
        from ..core import RmwOp
        if ga.dtype != np.int64:
            raise GaError("read_inc requires an int64 global array")
        lapi = self.lapi
        thread = lapi.current_thread()
        yield from thread.execute(self.gcfg.ga_call_overhead)
        i, j = point
        owner = ga.dist.owner_of(i, j)
        addr = ga.element_addr(owner, i, j)
        prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD, owner,
                                        addr, inc)
        return prev

    def lock_cas(self, owner: int, addr: int) -> Generator:
        """One compare-and-swap attempt on a remote lock word."""
        from ..core import RmwOp
        prev = yield from self.lapi.rmw_sync(RmwOp.COMPARE_AND_SWAP,
                                             owner, addr, 1, cmp_val=0)
        return prev == 0

    def unlock_swap(self, owner: int, addr: int) -> Generator:
        from ..core import RmwOp
        yield from self.lapi.rmw_sync(RmwOp.SWAP, owner, addr, 0)

    # ------------------------------------------------------------------
    def fence(self, *, ordering_only: bool = False) -> Generator:
        yield from self.gen.wait_all(ordering_only=ordering_only)

    def sync(self) -> Generator:
        yield from self.fence()
        yield from self.lapi.gfence()

    def barrier(self) -> Generator:
        yield from self.lapi.gfence()

    def exchange(self, value) -> Generator:
        """Collective allgather used by create (address exchange)."""
        table = yield from self.lapi.address_init(value)
        return table
