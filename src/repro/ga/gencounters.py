"""Generalized counters: GA's per-target completion bookkeeping.

Section 5.3.2: "an array of generalized counters (one per remote node)
is employed in GA.  A generalized counter structure contains a LAPI
counter (used as completion counter for both LAPI_Amsend and LAPI_Put),
a GA operation code for the most recent operation that used AM, and the
number of requests issued."  GA's fence passes the issued count to
LAPI_Waitcntr; the op code lets commutative operations (accumulate)
skip redundant fencing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import Lapi
    from ..core.counters import LapiCounter

__all__ = ["GeneralizedCounter", "GenCounterArray"]

#: GA operations whose completion order is irrelevant (commutative).
_COMMUTATIVE = frozenset({"acc"})


class GeneralizedCounter:
    """Completion bookkeeping toward one remote node."""

    __slots__ = ("target", "cntr", "last_op", "issued")

    def __init__(self, target: int, cntr: "LapiCounter") -> None:
        self.target = target
        #: LAPI completion counter shared by Amsend and Put requests.
        self.cntr = cntr
        #: GA op code of the most recent operation (for fence skipping).
        self.last_op: Optional[str] = None
        #: Requests issued since the last fence.
        self.issued = 0

    def record(self, op: str, count: int = 1) -> None:
        """Note ``count`` requests of kind ``op`` issued to the target."""
        self.last_op = op
        self.issued += count

    @property
    def needs_ordering_fence(self) -> bool:
        """False when the outstanding tail is commutative (section
        5.3.2's redundant-fence avoidance)."""
        return self.issued > 0 and self.last_op not in _COMMUTATIVE


class GenCounterArray:
    """The per-remote-node array of generalized counters."""

    def __init__(self, lapi: "Lapi") -> None:
        self._lapi = lapi
        self._counters = [
            GeneralizedCounter(t, lapi.counter(name=f"ga.gen{t}"))
            for t in range(lapi.size)]

    def __getitem__(self, target: int) -> GeneralizedCounter:
        return self._counters[target]

    def __iter__(self):
        return iter(self._counters)

    def wait_target(self, target: int, *,
                    ordering_only: bool = False):
        """Wait for outstanding requests toward ``target`` (generator).

        With ``ordering_only`` set, targets whose outstanding tail is
        commutative are skipped -- completion is not needed to preserve
        GA's ordering semantics for accumulate.
        """
        gen = self._counters[target]
        if gen.issued == 0:
            return
        if ordering_only and not gen.needs_ordering_fence:
            return
        count, gen.issued = gen.issued, 0
        gen.last_op = None
        yield from self._lapi.waitcntr(gen.cntr, count)

    def wait_all(self, *, ordering_only: bool = False):
        """Fence every target (generator)."""
        for gen in self._counters:
            yield from self.wait_target(gen.target,
                                        ordering_only=ordering_only)
