"""Tunables of the Global Arrays protocols.

Section 5.3: "The thresholds used for switching between different
protocols are selected empirically to maximize the performance."  They
live here so the ablation benchmarks can sweep them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["GaConfig", "GA_DEFAULTS"]


@dataclass(frozen=True)
class GaConfig:
    """Protocol thresholds and pool sizes for one GA runtime."""

    #: CPU cost of GA's own per-call work (argument checks, locate,
    #: address arithmetic) before any communication is issued.
    ga_call_overhead: float = 5.0
    #: Strided *put* requests at least this large switch from pipelined
    #: active messages to per-column remote memory copies (the 0.5 MB
    #: protocol switch visible in Figure 3).
    strided_rmc_threshold: int = 512 * 1024
    #: The same switch for strided *gets*.  Default None: the AM
    #: request + bulk-put reply protocol stays in force at every size,
    #: because on the simulator's calibrated cost surface the
    #: per-column LAPI_Get switch the paper describes is not
    #: profitable (per-request origin overhead dominates) -- the very
    #: cost that motivates the paper's non-contiguous-interface future
    #: work.  Set a byte threshold to restore the paper's exact
    #: protocol; the noncontig ablation sweeps this.
    get_strided_rmc_threshold: int | None = None
    #: Use the vector (non-contiguous) LAPI_Putv/Getv extension of
    #: section 6's future work for strided transfers instead of the
    #: 1998 hybrid protocols.
    use_vector_rmc: bool = False
    #: Accumulate payloads larger than this stop using single-packet
    #: chunks and ship in large-slot-sized active messages instead.
    acc_large_threshold: int = 16 * 1024
    #: Cap on the AM chunk payload (None = whatever fits one packet,
    #: the ~900-byte choice of section 5.3.1); the chunk-size ablation
    #: sweeps this.
    am_chunk_cap: int | None = None
    #: Receive-pool geometry (section 5.3.1's preallocated buffers).
    pool_small_count: int = 256
    pool_large_count: int = 16
    pool_large_size: int = 256 * 1024
    #: Initial backoff between remote lock retries (doubles per retry).
    lock_backoff: float = 4.0
    #: Elements per scatter/gather chunk message.
    scatter_chunk_elems: int = 32

    def replace(self, **changes) -> "GaConfig":
        """Copy with ``changes`` applied (ablation helper)."""
        return dataclasses.replace(self, **changes)


#: Default thresholds used throughout the reproduction.
GA_DEFAULTS = GaConfig()
