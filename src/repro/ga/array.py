"""Global array handles and local block storage.

Each task stores its block of every global array in its node's simulated
memory, column-major (Fortran layout, as in real GA).  The handle keeps
the distribution and the *remote base addresses* of every task's block
(exchanged collectively at create time via ``LAPI_Address_init`` or an
MPL allgather), which is what lets one-sided protocols compute remote
element addresses locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import GaError
from .distribution import BlockDistribution
from .sections import Section

__all__ = ["GlobalArray"]


@dataclass
class GlobalArray:
    """Per-task view of one global array."""

    handle: int
    name: str
    dims: tuple[int, int]
    dtype: np.dtype
    dist: BlockDistribution
    #: This task's rank (the block we store locally).
    rank: int
    #: Local block base address in this node's memory (0 if empty).
    local_addr: int
    #: Base addresses of every rank's block, indexed by rank.
    base_addrs: list[int] = field(default_factory=list)
    #: Ghost-cell halo width (GA_Create_ghosts); local storage is then
    #: padded to (rows + 2w) x (cols + 2w), uniformly on every rank,
    #: so remote address arithmetic stays locally computable.
    ghost_width: int = 0
    destroyed: bool = False

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def local_block(self) -> Optional[Section]:
        """My block, or None if this rank owns nothing."""
        return self.dist.block(self.rank)

    def check_live(self) -> None:
        if self.destroyed:
            raise GaError(f"array {self.name!r} used after destroy")

    def full_section(self) -> Section:
        return Section(0, self.dims[0] - 1, 0, self.dims[1] - 1)

    def check_section(self, section) -> Section:
        section = Section.of(section)
        if not self.full_section().contains(section):
            raise GaError(
                f"section {section} outside array {self.name!r}"
                f" of dims {self.dims}")
        return section

    # ------------------------------------------------------------------
    # address arithmetic (valid for any rank's block)
    # ------------------------------------------------------------------
    def block_of(self, rank: int) -> Section:
        return self.dist.block(rank)

    def element_addr(self, rank: int, i: int, j: int) -> int:
        """Address of global element (i, j) inside ``rank``'s block.

        With ghost cells the interior sits at offset ``w`` in a padded
        (rows + 2w)-leading-dimension buffer; the arithmetic stays
        locally computable because the width is uniform.
        """
        block = self.dist.block(rank)
        if block is None or not block.contains_point(i, j):
            raise GaError(
                f"element ({i},{j}) not in rank {rank}'s block {block}")
        w = self.ghost_width
        ld = block.rows + 2 * w  # column-major leading dimension
        off = (j - block.jlo + w) * ld + (i - block.ilo + w)
        return self.base_addrs[rank] + off * self.itemsize

    def column_run(self, rank: int, piece: Section,
                   j: int) -> tuple[int, int]:
        """(address, nbytes) of column ``j`` of ``piece`` in ``rank``'s
        block -- one contiguous run."""
        addr = self.element_addr(rank, piece.ilo, j)
        return addr, piece.rows * self.itemsize

    def piece_is_contiguous(self, rank: int, piece: Section) -> bool:
        """True if ``piece`` occupies one contiguous byte range of
        ``rank``'s block: a single column, or full-height columns (the
        latter only without ghost padding between columns)."""
        if piece.is_single_column:
            return True
        if self.ghost_width:
            return False
        block = self.dist.block(rank)
        return piece.ilo == block.ilo and piece.ihi == block.ihi

    def piece_addr_len(self, rank: int, piece: Section) -> tuple[int, int]:
        """(address, nbytes) of a contiguous piece."""
        if not self.piece_is_contiguous(rank, piece):
            raise GaError(f"piece {piece} is strided, not contiguous")
        addr = self.element_addr(rank, piece.ilo, piece.jlo)
        return addr, piece.size * self.itemsize

    # ------------------------------------------------------------------
    # local access
    # ------------------------------------------------------------------
    def padded_shape(self, rank: int) -> tuple[int, int]:
        """Local storage shape of ``rank``'s block, ghosts included."""
        block = self.dist.block(rank)
        if block is None:
            return (0, 0)
        w = self.ghost_width
        return (block.rows + 2 * w, block.cols + 2 * w)

    def ghost_view(self, memory) -> np.ndarray:
        """Zero-copy view of this task's block *including* its halo."""
        self.check_live()
        if self.ghost_width == 0:
            raise GaError(
                f"array {self.name!r} has no ghost cells")
        block = self.local_block
        if block is None:
            raise GaError(
                f"rank {self.rank} owns no block of {self.name!r}")
        shape = self.padded_shape(self.rank)
        nbytes = shape[0] * shape[1] * self.itemsize
        flat = memory.view(self.local_addr, nbytes, dtype=self.dtype)
        return flat.reshape(shape, order="F")

    def local_view(self, memory) -> np.ndarray:
        """Zero-copy 2-D Fortran-order view of this task's block
        (the interior, when the array carries ghost cells)."""
        self.check_live()
        block = self.local_block
        if block is None:
            raise GaError(
                f"rank {self.rank} owns no block of {self.name!r}")
        if self.ghost_width == 0:
            nbytes = block.size * self.itemsize
            flat = memory.view(self.local_addr, nbytes,
                               dtype=self.dtype)
            return flat.reshape(block.shape, order="F")
        w = self.ghost_width
        return self.ghost_view(memory)[w:w + block.rows,
                                       w:w + block.cols]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GlobalArray #{self.handle} {self.name!r}"
                f" {self.dims[0]}x{self.dims[1]} {self.dtype}"
                f" grid={self.dist.pgrid}>")
