"""The public Global Arrays interface.

One :class:`GlobalArrays` object per task provides the shared-memory
-style operations of section 5.1 over either communication backend:

===========================  ========================================
GA operation                 Method here
===========================  ========================================
GA_Create / GA_Destroy       :meth:`create` / :meth:`destroy`
GA_Put / GA_Get              :meth:`put` / :meth:`get` (+ ndarray
                             conveniences :meth:`put_ndarray` /
                             :meth:`get_ndarray`)
GA_Acc (atomic accumulate)   :meth:`acc` / :meth:`acc_ndarray`
GA_Scatter / GA_Gather       :meth:`scatter` / :meth:`gather`
GA_Read_inc                  :meth:`read_inc`
Mutexes (lock/unlock)        :meth:`create_mutexes`, :meth:`lock`,
                             :meth:`unlock`
GA_Sync / GA_Fence           :meth:`sync` / :meth:`fence`
GA_Distribution / GA_Locate  :meth:`distribution` / :meth:`locate`
GA_Access (local block)      :meth:`access`
GA_Zero / GA_Fill            :meth:`zero` / :meth:`fill`
===========================  ========================================

Local transfer buffers are *tightly packed column-major* images of the
section being moved, living in the node's simulated memory
(:meth:`alloc_local` / :meth:`free_local`).  The ndarray conveniences
wrap this for tests and small examples.

Memory-consistency semantics follow section 5.1: store operations
(put/acc) complete locally when the call returns (the local buffer is
reusable) but remotely only after a :meth:`fence`/:meth:`sync`;
operations touching non-overlapping sections may complete in any
order; accumulate is commutative, so its completion order is
unconstrained even for overlapping sections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional, Sequence

import numpy as np

from ..errors import GaError
from .array import GlobalArray
from .config import GA_DEFAULTS, GaConfig
from .distribution import BlockDistribution
from .sections import Section

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cluster import Task

__all__ = ["GlobalArrays"]


class GlobalArrays:
    """Per-task Global Arrays runtime."""

    def __init__(self, task: "Task", backend: str = "lapi",
                 gcfg: GaConfig = GA_DEFAULTS) -> None:
        self.task = task
        self.config = task.node.config
        self.gcfg = gcfg
        self._arrays: dict[int, GlobalArray] = {}
        self._next_handle = 0
        self._mutex_addrs: list[tuple[int, int]] = []  # (owner, addr)
        if backend == "lapi":
            from .lapi_backend import LapiBackend
            self.backend = LapiBackend(self)
        elif backend == "mpl":
            from .mpl_backend import MplBackend
            self.backend = MplBackend(self)
        else:
            raise GaError(f"unknown GA backend {backend!r}")
        self._initialized = False

    # shorthands ---------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.task.rank

    @property
    def size(self) -> int:
        return self.task.size

    @property
    def memory(self):
        return self.task.node.memory

    def array(self, handle: int) -> GlobalArray:
        ga = self._arrays.get(handle)
        if ga is None:
            raise GaError(f"unknown global array handle {handle}")
        ga.check_live()
        return ga

    def _check_live(self) -> None:
        if not self._initialized:
            raise GaError("Global Arrays used before init")

    # ------------------------------------------------------------------
    # lifecycle (collective)
    # ------------------------------------------------------------------
    def init(self) -> Generator:
        yield from self.backend.init()
        self._initialized = True

    def terminate(self) -> Generator:
        if self._initialized:
            yield from self.backend.terminate()
            self._initialized = False

    def create(self, dims: tuple[int, int], dtype=np.float64,
               name: str = "", ghost_width: int = 0) -> Generator:
        """Collective: create a distributed 2-D array; returns handle.

        ``ghost_width > 0`` creates a ghost-cell array
        (GA_Create_ghosts): local storage is padded by a halo of that
        width, filled on demand by :meth:`update_ghosts`.
        """
        self._check_live()
        dt = np.dtype(dtype)
        if dt.itemsize != 8:
            raise GaError(
                f"GA model supports 8-byte element types, got {dt}")
        if ghost_width < 0:
            raise GaError(f"negative ghost width {ghost_width}")
        dist = BlockDistribution.create(dims, self.size)
        handle = self._next_handle
        self._next_handle += 1
        block = dist.block(self.rank)
        if block is not None:
            w = ghost_width
            nbytes = (block.rows + 2 * w) * (block.cols + 2 * w) \
                * dt.itemsize
        else:
            nbytes = 0
        local_addr = self.memory.malloc(max(nbytes, dt.itemsize))
        ga = GlobalArray(handle=handle, name=name or f"ga{handle}",
                         dims=dims, dtype=dt, dist=dist, rank=self.rank,
                         local_addr=local_addr,
                         ghost_width=ghost_width)
        ga.base_addrs = yield from self.backend.exchange(local_addr)
        self._arrays[handle] = ga
        yield from self.backend.barrier()
        return handle

    def duplicate(self, handle: int, name: str = "") -> Generator:
        """GA_Duplicate: create an array with the same shape, type,
        distribution, and ghost width (contents are NOT copied; use
        :meth:`copy_array`)."""
        src = self.array(handle)
        new = yield from self.create(src.dims, dtype=src.dtype,
                                     name=name or f"{src.name}.dup",
                                     ghost_width=src.ghost_width)
        return new

    def destroy(self, handle: int) -> Generator:
        """Collective: release an array."""
        ga = self.array(handle)
        yield from self.backend.barrier()
        self.memory.free(ga.local_addr)
        ga.destroyed = True

    # ------------------------------------------------------------------
    # local buffers
    # ------------------------------------------------------------------
    def alloc_local(self, section) -> int:
        """Allocate a tight local buffer for ``section``'s data."""
        section = Section.of(section)
        return self.memory.malloc(section.size * 8)

    def free_local(self, addr: int) -> None:
        self.memory.free(addr)

    # ------------------------------------------------------------------
    # data movement (addr-based, the performance API)
    # ------------------------------------------------------------------
    def put(self, handle: int, section, local_addr: int) -> Generator:
        """Store ``section`` from a tight local buffer (one-sided)."""
        self._check_live()
        ga = self.array(handle)
        yield from self.backend.put(ga, ga.check_section(section),
                                    local_addr)

    def get(self, handle: int, section, local_addr: int) -> Generator:
        """Fetch ``section`` into a tight local buffer (blocking)."""
        self._check_live()
        ga = self.array(handle)
        yield from self.backend.get(ga, ga.check_section(section),
                                    local_addr)

    def acc(self, handle: int, section, local_addr: int,
            alpha: float = 1.0) -> Generator:
        """Atomic accumulate: ``A[section] += alpha * local``."""
        self._check_live()
        ga = self.array(handle)
        yield from self.backend.acc(ga, ga.check_section(section),
                                    local_addr, alpha)

    # ------------------------------------------------------------------
    # ndarray conveniences (tests, examples)
    # ------------------------------------------------------------------
    def put_ndarray(self, handle: int, section, data) -> Generator:
        ga = self.array(handle)
        section = ga.check_section(section)
        arr = np.asarray(data, dtype=ga.dtype)
        if arr.shape != section.shape:
            raise GaError(
                f"data shape {arr.shape} != section shape"
                f" {section.shape}")
        addr = self.memory.malloc(arr.nbytes)
        self.memory.write(addr, arr.tobytes(order="F"))
        try:
            yield from self.put(handle, section, addr)
        finally:
            self.memory.free(addr)

    def get_ndarray(self, handle: int, section) -> Generator:
        ga = self.array(handle)
        section = ga.check_section(section)
        addr = self.memory.malloc(section.size * ga.itemsize)
        try:
            yield from self.get(handle, section, addr)
            blob = self.memory.read(addr, section.size * ga.itemsize)
        finally:
            self.memory.free(addr)
        return np.frombuffer(blob, dtype=ga.dtype).reshape(
            section.shape, order="F").copy()

    def acc_ndarray(self, handle: int, section, data,
                    alpha: float = 1.0) -> Generator:
        ga = self.array(handle)
        section = ga.check_section(section)
        arr = np.asarray(data, dtype=ga.dtype)
        if arr.shape != section.shape:
            raise GaError(
                f"data shape {arr.shape} != section shape"
                f" {section.shape}")
        addr = self.memory.malloc(arr.nbytes)
        self.memory.write(addr, arr.tobytes(order="F"))
        try:
            yield from self.acc(handle, section, addr, alpha)
        finally:
            self.memory.free(addr)

    # ------------------------------------------------------------------
    # element operations
    # ------------------------------------------------------------------
    def scatter(self, handle: int, points: Sequence[tuple[int, int]],
                values) -> Generator:
        """Write listed elements (irregular access, section 5.1)."""
        self._check_live()
        ga = self.array(handle)
        vals = np.asarray(values, dtype=ga.dtype)
        if len(vals) != len(points):
            raise GaError("scatter points/values length mismatch")
        for i, j in points:
            if not ga.full_section().contains_point(i, j):
                raise GaError(f"scatter point ({i},{j}) out of range")
        yield from self.backend.scatter(ga, list(points), vals)

    def gather(self, handle: int,
               points: Sequence[tuple[int, int]]) -> Generator:
        """Read listed elements; returns a 1-D array of values."""
        self._check_live()
        ga = self.array(handle)
        for i, j in points:
            if not ga.full_section().contains_point(i, j):
                raise GaError(f"gather point ({i},{j}) out of range")
        result = yield from self.backend.gather(ga, list(points))
        return result

    def read_inc(self, handle: int, point: tuple[int, int],
                 inc: int = 1) -> Generator:
        """Atomic read-and-increment of an int64 element."""
        self._check_live()
        ga = self.array(handle)
        if not ga.full_section().contains_point(*point):
            raise GaError(f"read_inc point {point} out of range")
        prev = yield from self.backend.read_inc(ga, point, inc)
        return prev

    # ------------------------------------------------------------------
    # mutexes
    # ------------------------------------------------------------------
    def create_mutexes(self, count: int) -> Generator:
        """Collective: create ``count`` global mutexes."""
        self._check_live()
        if count < 1:
            raise GaError("need at least one mutex")
        mine = [i for i in range(count) if i % self.size == self.rank]
        local = {}
        for i in mine:
            addr = self.memory.malloc(8)
            self.memory.write_i64(addr, 0)
            local[i] = addr
        tables = yield from self.backend.exchange(local)
        self._mutex_addrs = []
        for i in range(count):
            owner = i % self.size
            self._mutex_addrs.append((owner, tables[owner][i]))
        yield from self.backend.barrier()

    def lock(self, mutex: int) -> Generator:
        """Acquire a global mutex (spin with exponential backoff)."""
        self._check_live()
        owner, addr = self._mutex(mutex)
        thread = self.task.node.cpu.current_thread()
        backoff = self.gcfg.lock_backoff
        while True:
            ok = yield from self.backend.lock_cas(owner, addr)
            if ok:
                return
            yield from thread.sleep(backoff)
            backoff = min(backoff * 2, 512.0)

    def unlock(self, mutex: int) -> Generator:
        self._check_live()
        owner, addr = self._mutex(mutex)
        yield from self.backend.unlock_swap(owner, addr)

    def _mutex(self, mutex: int) -> tuple[int, int]:
        if not (0 <= mutex < len(self._mutex_addrs)):
            raise GaError(f"mutex {mutex} does not exist"
                          " (create_mutexes first)")
        return self._mutex_addrs[mutex]

    # ------------------------------------------------------------------
    # synchronization & locality
    # ------------------------------------------------------------------
    def sync(self) -> Generator:
        """Collective barrier + completion of all outstanding stores."""
        self._check_live()
        yield from self.backend.sync()

    def fence(self, *, ordering_only: bool = False) -> Generator:
        """Complete this task's outstanding store operations."""
        self._check_live()
        yield from self.backend.fence(ordering_only=ordering_only)

    def distribution(self, handle: int, rank: Optional[int] = None
                     ) -> Section:
        """The block owned by ``rank`` (default: me)."""
        ga = self.array(handle)
        return ga.dist.block(self.rank if rank is None else rank)

    def locate(self, handle: int, section) -> list[tuple[int, Section]]:
        """Owners of a section: full locality information (5.1)."""
        ga = self.array(handle)
        return ga.dist.locate(ga.check_section(section))

    def access(self, handle: int) -> np.ndarray:
        """Zero-copy Fortran-order view of my local block."""
        return self.array(handle).local_view(self.memory)

    def access_ghosts(self, handle: int) -> np.ndarray:
        """Zero-copy view of my block *including* its ghost halo."""
        return self.array(handle).ghost_view(self.memory)

    def update_ghosts(self, handle: int) -> Generator:
        """GA_Update_ghosts: fill the halo from neighbouring blocks.

        Collective.  Each task fetches the (boundary-clipped) ring
        around its block with one-sided gets -- corners included, since
        the ring rectangles span whatever owners they intersect -- and
        writes it into the padded local storage.  Two barriers bracket
        the exchange so halos reflect a consistent global state.
        """
        self._check_live()
        ga = self.array(handle)
        w = ga.ghost_width
        if w == 0:
            raise GaError(
                f"array {ga.name!r} was created without ghost cells")
        yield from self.backend.barrier()  # writers done before reads
        block = ga.local_block
        if block is not None:
            n, m = ga.dims
            gv = self.access_ghosts(handle)
            thread = self.task.node.cpu.current_thread()
            jlo = max(block.jlo - w, 0)
            jhi = min(block.jhi + w, m - 1)
            regions = []
            if block.ilo > 0:  # top strip (with corners)
                regions.append(Section(max(block.ilo - w, 0),
                                       block.ilo - 1, jlo, jhi))
            if block.ihi < n - 1:  # bottom strip (with corners)
                regions.append(Section(block.ihi + 1,
                                       min(block.ihi + w, n - 1),
                                       jlo, jhi))
            if block.jlo > 0:  # left strip
                regions.append(Section(block.ilo, block.ihi,
                                       max(block.jlo - w, 0),
                                       block.jlo - 1))
            if block.jhi < m - 1:  # right strip
                regions.append(Section(block.ilo, block.ihi,
                                       block.jhi + 1,
                                       min(block.jhi + w, m - 1)))
            base_i = block.ilo - w
            base_j = block.jlo - w
            for sec in regions:
                patch = yield from self.get_ndarray(handle, sec)
                yield from thread.execute(
                    self.config.copy_cost(patch.nbytes))
                oi = sec.ilo - base_i
                oj = sec.jlo - base_j
                gv[oi:oi + sec.rows, oj:oj + sec.cols] = patch
        yield from self.backend.barrier()

    # ------------------------------------------------------------------
    # whole-array collective operations (GA_Scale, GA_Add, ...)
    # ------------------------------------------------------------------
    def scale(self, handle: int, alpha: float) -> Generator:
        """GA_Scale: multiply the whole array by ``alpha``."""
        self._check_live()
        from . import elemops
        yield from elemops.scale(self, handle, alpha)

    def add(self, c_handle: int, a_handle: int, b_handle: int,
            alpha: float = 1.0, beta: float = 1.0) -> Generator:
        """GA_Add: ``C = alpha*A + beta*B`` (aligned arrays)."""
        self._check_live()
        from . import elemops
        yield from elemops.add(self, c_handle, a_handle, b_handle,
                               alpha, beta)

    def copy_array(self, src_handle: int, dst_handle: int) -> Generator:
        """GA_Copy: ``B = A`` (aligned arrays)."""
        self._check_live()
        from . import elemops
        yield from elemops.copy(self, src_handle, dst_handle)

    def dot(self, a_handle: int, b_handle: int) -> Generator:
        """GA_Ddot: global ``sum(A*B)``; same value on every task."""
        self._check_live()
        from . import elemops
        result = yield from elemops.dot(self, a_handle, b_handle)
        return result

    def symmetrize(self, handle: int) -> Generator:
        """GA_Symmetrize: ``A = (A + A^T)/2`` for a square array."""
        self._check_live()
        from . import elemops
        yield from elemops.symmetrize(self, handle)

    # ------------------------------------------------------------------
    # whole-array helpers
    # ------------------------------------------------------------------
    def zero(self, handle: int) -> Generator:
        yield from self.fill(handle, 0)

    def fill(self, handle: int, value) -> Generator:
        """Collective: every task fills its own block."""
        self._check_live()
        ga = self.array(handle)
        if ga.local_block is not None:
            thread = self.task.node.cpu.current_thread()
            view = self.access(handle)
            yield from thread.execute(
                self.config.copy_cost(view.nbytes))
            view[...] = value
        yield from self.backend.barrier()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<GlobalArrays rank={self.rank}/{self.size}"
                f" backend={self.backend.name}"
                f" arrays={len(self._arrays)}>")
