"""2-D array section algebra for Global Arrays.

GA operations address dense 2-D arrays through *sections* written
``A(ilo:ihi, jlo:jhi)`` in the paper's HPF-flavoured notation -- with
**inclusive** bounds, as in Fortran.  :class:`Section` carries that
algebra: shape, containment, intersection, column decomposition.

Arrays are stored column-major (Fortran order, faithful to GA), so a
single-column section is contiguous in memory -- the paper's "1-D"
requests -- while a general 2-D patch is strided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import GaError

__all__ = ["Section"]


@dataclass(frozen=True, order=True)
class Section:
    """An inclusive 2-D index range ``(ilo:ihi, jlo:jhi)``."""

    ilo: int
    ihi: int
    jlo: int
    jhi: int

    def __post_init__(self) -> None:
        if self.ilo > self.ihi or self.jlo > self.jhi:
            raise GaError(f"empty/inverted section {self}")
        if self.ilo < 0 or self.jlo < 0:
            raise GaError(f"negative bounds in section {self}")

    @classmethod
    def of(cls, spec) -> "Section":
        """Coerce a 4-tuple or Section into a Section."""
        if isinstance(spec, Section):
            return spec
        ilo, ihi, jlo, jhi = spec
        return cls(int(ilo), int(ihi), int(jlo), int(jhi))

    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.ihi - self.ilo + 1

    @property
    def cols(self) -> int:
        return self.jhi - self.jlo + 1

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def size(self) -> int:
        """Number of elements."""
        return self.rows * self.cols

    @property
    def is_single_column(self) -> bool:
        """True for the paper's contiguous "1-D" requests."""
        return self.cols == 1

    # ------------------------------------------------------------------
    def contains(self, other: "Section") -> bool:
        return (self.ilo <= other.ilo and other.ihi <= self.ihi
                and self.jlo <= other.jlo and other.jhi <= self.jhi)

    def contains_point(self, i: int, j: int) -> bool:
        return self.ilo <= i <= self.ihi and self.jlo <= j <= self.jhi

    def intersect(self, other: "Section") -> Optional["Section"]:
        """Overlap of two sections, or None if disjoint."""
        ilo = max(self.ilo, other.ilo)
        ihi = min(self.ihi, other.ihi)
        jlo = max(self.jlo, other.jlo)
        jhi = min(self.jhi, other.jhi)
        if ilo > ihi or jlo > jhi:
            return None
        return Section(ilo, ihi, jlo, jhi)

    def overlaps(self, other: "Section") -> bool:
        return self.intersect(other) is not None

    def columns(self) -> Iterator["Section"]:
        """The section split into its single-column strips."""
        for j in range(self.jlo, self.jhi + 1):
            yield Section(self.ilo, self.ihi, j, j)

    def relative_to(self, origin: "Section") -> "Section":
        """This section re-based to ``origin``'s coordinate frame.

        Used to map a global sub-piece into offsets within a local
        buffer that holds ``origin``'s data tightly packed.
        """
        if not origin.contains(self):
            raise GaError(f"{self} not contained in {origin}")
        return Section(self.ilo - origin.ilo, self.ihi - origin.ilo,
                       self.jlo - origin.jlo, self.jhi - origin.jlo)

    def __str__(self) -> str:
        return f"({self.ilo}:{self.ihi},{self.jlo}:{self.jhi})"
