"""Declarative fault scenarios for the simulated SP fabric and nodes.

The paper's reliability machinery exists because the real switch
failed in structured ways: bursty CRC errors on a marginal link, a
whole link going dark while a cable was reseated, an overloaded node
starving its dispatcher.  Section 5.3.1's internal send buffers exist
precisely "since retransmissions might be required in a case of switch
failures".  A single uniform ``loss_rate`` scalar cannot express any
of those regimes, so this module provides a *schedule*: a validated,
immutable list of scenario clauses that a
:class:`~repro.machine.cluster.Cluster` compiles into runtime hooks
(:mod:`repro.faults.runtime`).

Every clause is a frozen dataclass (picklable, hashable, sweepable by
the bench harness) and validates itself at construction; the schedule
additionally rejects overlapping windows that would make a scenario
ambiguous.  Determinism: the schedule itself holds no state -- all
randomness comes from the cluster's seeded ``faults`` RNG stream, so
the same seed reproduces the same fault pattern byte-for-byte,
serially or under ``--jobs N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import MachineError

__all__ = ["FaultClause", "GilbertElliott", "LinkOutage", "AckLoss",
           "Corruption", "CpuPause", "CpuDegrade", "NodeCrash",
           "NodeRestart", "FaultSchedule"]


def _check_window(name: str, start: float, end: float) -> None:
    if not (math.isfinite(start) and start >= 0.0):
        raise MachineError(
            f"{name}: window start must be finite and >= 0, got {start}")
    if math.isnan(end) or end <= start:
        raise MachineError(
            f"{name}: window end {end} must exceed start {start}")


def _check_prob(name: str, field: str, p: float) -> None:
    if not (0.0 <= p <= 1.0) or math.isnan(p):
        raise MachineError(f"{name}: {field} must be in [0, 1], got {p}")


@dataclass(frozen=True)
class FaultClause:
    """Base of all schedule clauses: an optional active time window.

    ``start``/``end`` bound the clause in virtual microseconds;
    ``end=inf`` keeps it active for the whole run.
    """

    start: float = 0.0
    end: float = math.inf

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def validate(self) -> None:
        _check_window(type(self).__name__, self.start, self.end)


@dataclass(frozen=True)
class _LinkClause(FaultClause):
    """A clause selecting a directed node pair (``None`` = wildcard)."""

    src: Optional[int] = None
    dst: Optional[int] = None

    def matches_pair(self, src: int, dst: int) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))

    def pair_key(self) -> tuple:
        return (self.src, self.dst)


@dataclass(frozen=True)
class GilbertElliott(_LinkClause):
    """Bursty per-link loss: the classic two-state Gilbert-Elliott chain.

    A link is either *good* (losing packets with ``loss_good``) or
    *bad* (losing with ``loss_bad``).  Per packet traversal the chain
    first takes a transition draw (good->bad with ``p_good_bad``,
    bad->good with ``p_bad_good``), then a loss draw at the current
    state's rate.  Mean burst length is ``1 / p_bad_good`` packets;
    stationary bad-state occupancy is
    ``p_good_bad / (p_good_bad + p_bad_good)``.  ``p_good_bad=0`` with
    ``loss_good>0`` degenerates to uniform (memoryless) loss.
    """

    p_good_bad: float = 0.0
    p_bad_good: float = 1.0
    loss_good: float = 0.0
    loss_bad: float = 0.0

    def validate(self) -> None:
        super().validate()
        name = "GilbertElliott"
        _check_prob(name, "p_good_bad", self.p_good_bad)
        _check_prob(name, "p_bad_good", self.p_bad_good)
        _check_prob(name, "loss_good", self.loss_good)
        _check_prob(name, "loss_bad", self.loss_bad)
        if self.loss_good == 0.0 and self.loss_bad == 0.0:
            raise MachineError(
                "GilbertElliott: both loss rates are zero -- the clause"
                " can never fire (remove it or raise a rate)")
        if self.loss_good >= 1.0 or self.loss_bad >= 1.0:
            raise MachineError(
                "GilbertElliott: a loss rate of 1.0 silences the link"
                " forever; use LinkOutage for hard outages")


@dataclass(frozen=True)
class LinkOutage(_LinkClause):
    """Hard link outage: every matching packet in the window is lost.

    Models a dark fiber / reseated cable: the fabric drops everything
    on the directed pair between ``start`` and ``end``.  The window
    must be finite -- a permanent outage is a topology change, not a
    fault to recover from.
    """

    def validate(self) -> None:
        super().validate()
        if not math.isfinite(self.end):
            raise MachineError(
                "LinkOutage: the window end must be finite (a permanent"
                " outage cannot be recovered from and would retry until"
                " the peer is declared unreachable)")


@dataclass(frozen=True)
class AckLoss(_LinkClause):
    """Asymmetric loss of transport acknowledgements.

    Drops only ``ack``-kind packets on the directed pair with
    probability ``rate`` -- data flows, acks vanish.  Exercises the
    Karn-ambiguity path: the sender retransmits data the receiver
    already has, and the duplicate filter plus RTT-sample suppression
    must keep both state machines honest.
    """

    rate: float = 0.0

    def validate(self) -> None:
        super().validate()
        _check_prob("AckLoss", "rate", self.rate)
        if self.rate == 0.0:
            raise MachineError("AckLoss: rate must be > 0")
        if self.rate >= 1.0:
            raise MachineError(
                "AckLoss: rate 1.0 permanently silences acks; use"
                " LinkOutage on the reverse pair for a hard outage")


@dataclass(frozen=True)
class Corruption(_LinkClause):
    """Payload corruption detected by CRC at the receiving adapter.

    Unlike fabric loss, a corrupted packet traverses the whole wire
    (consuming link bandwidth and occupancy) and is discarded only at
    the destination adapter's CRC check -- the worst-case waste mode.
    """

    rate: float = 0.0

    def validate(self) -> None:
        super().validate()
        _check_prob("Corruption", "rate", self.rate)
        if not (0.0 < self.rate < 1.0):
            raise MachineError(
                f"Corruption: rate must be in (0, 1), got {self.rate}")


@dataclass(frozen=True)
class _CpuClause(FaultClause):
    """A clause affecting one node's CPU inside a finite window."""

    node: int = 0

    def validate(self) -> None:
        super().validate()
        name = type(self).__name__
        if self.node < 0:
            raise MachineError(f"{name}: node must be >= 0")
        if not math.isfinite(self.end):
            raise MachineError(f"{name}: the window end must be finite")

    def rate(self) -> float:
        """CPU progress rate inside the window (1.0 = full speed)."""
        raise NotImplementedError


@dataclass(frozen=True)
class CpuPause(_CpuClause):
    """Full CPU stall: no thread on ``node`` progresses in the window.

    Models a node descheduled by a paging storm or checkpoint: work
    that overlaps the window simply resumes when it ends.  Peers keep
    timing out and retransmitting into it, which is what the adaptive
    RTO backoff exists to survive.
    """

    def rate(self) -> float:
        return 0.0


@dataclass(frozen=True)
class CpuDegrade(_CpuClause):
    """CPU slowdown: work in the window takes ``factor`` times longer."""

    factor: float = 2.0

    def validate(self) -> None:
        super().validate()
        if not (self.factor > 1.0 and math.isfinite(self.factor)):
            raise MachineError(
                f"CpuDegrade: factor must be finite and > 1, got"
                f" {self.factor} (use CpuPause for a full stall)")

    def rate(self) -> float:
        return 1.0 / self.factor


@dataclass(frozen=True)
class NodeCrash(FaultClause):
    """Fail-stop crash of one node at ``start``.

    At the crash instant every thread on ``node`` is killed at its
    current yield point (fail-stop: no cleanup code runs), the adapter
    drops all in-flight TX/RX traffic and stops acknowledging, and the
    node goes silent.  A finite ``end`` restarts the *machine* at that
    time (adapter alive and answering heartbeats again, protocol state
    cleared); ``end=inf`` keeps the node dead for the rest of the run.
    Restart is machine-level only -- the SPMD task that was running on
    the node stays dead, which is exactly the fail-stop model: the
    survivors' view is "peer died, then its hardware came back".
    """

    node: int = 0

    def validate(self) -> None:
        _check_window("NodeCrash", self.start, self.end)
        if self.node < 0:
            raise MachineError("NodeCrash: node must be >= 0")
        if self.start <= 0.0:
            raise MachineError(
                "NodeCrash: start must be > 0 (a node cannot crash"
                " before the run begins)")

    def dead_window(self) -> tuple:
        return (self.start, self.end)


@dataclass(frozen=True)
class NodeRestart(FaultClause):
    """Close an open-ended :class:`NodeCrash` on the same node.

    Sugar for scenarios that list the crash and the restart as two
    events: ``NodeRestart(node=2, start=t)`` turns a preceding
    ``NodeCrash(node=2, start=s)`` with ``end=inf`` into a crash
    window ``[s, t)``.  The schedule rejects a restart with no
    matching open crash, or one inside a finite crash window.
    """

    node: int = 0

    def validate(self) -> None:
        if not (math.isfinite(self.start) and self.start > 0.0):
            raise MachineError(
                f"NodeRestart: start must be finite and > 0,"
                f" got {self.start}")
        if self.node < 0:
            raise MachineError("NodeRestart: node must be >= 0")


def compile_crash_windows(clauses: Sequence[FaultClause]) -> dict:
    """Resolve NodeCrash/NodeRestart clauses into per-node windows.

    Returns ``{node: [(crash_at, restart_at_or_inf), ...]}`` with the
    windows sorted and validated non-overlapping.  Shared between
    schedule validation and :class:`~repro.faults.runtime.FaultRuntime`
    so both agree on the semantics.
    """
    crashes: dict = {}
    for clause in clauses:
        if isinstance(clause, NodeCrash):
            crashes.setdefault(clause.node, []).append(
                [clause.start, clause.end])
    for clause in clauses:
        if not isinstance(clause, NodeRestart):
            continue
        windows = crashes.get(clause.node)
        match = None
        for win in (windows or ()):
            if win[0] < clause.start and not math.isfinite(win[1]):
                if match is not None:
                    raise MachineError(
                        f"NodeRestart(node={clause.node},"
                        f" start={clause.start}): ambiguous -- several"
                        " open-ended NodeCrash windows precede it")
                match = win
            elif win[0] < clause.start <= win[1]:
                raise MachineError(
                    f"NodeRestart(node={clause.node},"
                    f" start={clause.start}): falls inside the finite"
                    f" crash window [{win[0]}, {win[1]}) -- drop the"
                    " restart or the crash end")
        if match is None:
            raise MachineError(
                f"NodeRestart(node={clause.node}, start={clause.start}):"
                " no preceding open-ended NodeCrash on that node")
        match[1] = clause.start
    out: dict = {}
    for node, windows in sorted(crashes.items()):
        windows = sorted((w[0], w[1]) for w in windows)
        for a, b in zip(windows, windows[1:]):
            if b[0] < a[1]:
                raise MachineError(
                    f"FaultSchedule: overlapping crash windows"
                    f" [{a[0]}, {a[1]}) and [{b[0]}, {b[1]}) for node"
                    f" {node} -- merge or separate them")
        out[node] = windows
    return out


def _reject_overlaps(kind: str, clauses: Sequence[FaultClause],
                     key_fn) -> None:
    """Reject clauses of one family whose windows overlap per key.

    Two outage windows on the same directed pair (or two CPU windows
    on the same node) with overlapping spans would make the scenario's
    semantics order-dependent; the schedule refuses them up front so a
    malformed sweep fails at construction, not mid-run.
    """
    by_key: dict = {}
    for clause in clauses:
        by_key.setdefault(key_fn(clause), []).append(clause)
    for key, group in by_key.items():
        group = sorted(group, key=lambda c: (c.start, c.end))
        for a, b in zip(group, group[1:]):
            if b.start < a.end:
                raise MachineError(
                    f"FaultSchedule: overlapping {kind} windows"
                    f" [{a.start}, {a.end}) and [{b.start}, {b.end})"
                    f" for {key} -- merge or separate them")


class FaultSchedule:
    """An immutable, validated list of fault clauses.

    Install on a cluster at construction time::

        schedule = FaultSchedule([
            GilbertElliott(p_good_bad=0.05, p_bad_good=0.25,
                           loss_bad=0.8),
            LinkOutage(src=0, dst=1, start=3000.0, end=9000.0),
        ])
        cluster = Cluster(nnodes=2, faults=schedule)

    An empty schedule is equivalent to no schedule at all: it compiles
    to nothing and the cluster's hot paths stay untouched.
    """

    def __init__(self, clauses: Sequence[FaultClause] = ()) -> None:
        clauses = tuple(clauses)
        for clause in clauses:
            if not isinstance(clause, FaultClause):
                raise MachineError(
                    f"FaultSchedule: {clause!r} is not a fault clause")
            clause.validate()
        _reject_overlaps(
            "LinkOutage",
            [c for c in clauses if isinstance(c, LinkOutage)],
            lambda c: c.pair_key())
        _reject_overlaps(
            "CPU",
            [c for c in clauses if isinstance(c, _CpuClause)],
            lambda c: c.node)
        # Resolve + validate crash/restart pairing and window overlap.
        self.crash_windows = compile_crash_windows(clauses)
        self.clauses = clauses

    def __len__(self) -> int:
        return len(self.clauses)

    def __bool__(self) -> bool:
        return bool(self.clauses)

    def install(self, cluster) -> Optional[object]:
        """Compile into a :class:`~repro.faults.runtime.FaultRuntime`
        and hook it into ``cluster``'s switch/adapters/CPUs.  Returns
        the runtime, or ``None`` for an empty schedule (no hooks)."""
        if not self.clauses:
            return None
        from .runtime import FaultRuntime
        return FaultRuntime(self, cluster)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = [type(c).__name__ for c in self.clauses]
        return f"<FaultSchedule {len(self.clauses)} clauses: {kinds}>"
