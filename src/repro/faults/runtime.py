"""Compiled fault-injection hooks for one cluster.

:meth:`repro.faults.FaultSchedule.install` builds one
:class:`FaultRuntime` per cluster.  The runtime owns all mutable fault
state -- the Gilbert-Elliott chain states, the per-node CPU window
tables, the fault counters -- and hangs itself off the machine layer's
pre-existing ``faults`` attachment points:

* ``switch.faults``   -- consulted per routed packet (:meth:`judge`);
* ``adapter.faults``  -- consulted when a corrupted packet is discarded
  at the receive-side CRC check;
* ``cpu.faults``      -- a compiled :class:`_CpuFaults` window table
  stretching ``Thread.execute`` costs (only on nodes a CPU clause
  names).

All attachment points default to ``None`` and every hot-path hook is a
single ``is not None`` test, so a cluster without a schedule pays
nothing and its virtual-time trajectory is untouched (the byte-identity
contract).  All randomness is drawn from the cluster's seeded
``faults`` RNG stream in deterministic per-packet clause order, so a
given seed reproduces the same fault pattern serially or under
``--jobs N``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import math

from ..errors import MachineError
from .schedule import (AckLoss, Corruption, FaultSchedule, GilbertElliott,
                       LinkOutage, _CpuClause, _LinkClause)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cluster import Cluster
    from ..machine.packet import Packet

__all__ = ["FaultRuntime"]


class _CpuFaults:
    """Compiled CPU pause/slowdown windows of one node.

    ``windows`` is a sorted, non-overlapping list of
    ``(start, end, rate)`` where ``rate`` is the CPU progress rate
    inside the window (0.0 = full pause, ``1/factor`` for a slowdown).
    :meth:`elapsed` converts a nominal CPU cost starting at ``now``
    into the virtual time it actually takes, walking the windows
    piecewise.
    """

    __slots__ = ("windows", "stall_us")

    def __init__(self, windows: list[tuple[float, float, float]]) -> None:
        self.windows = windows
        #: Total virtual time lost to pause/slowdown (elapsed - work).
        self.stall_us = 0.0

    def elapsed(self, now: float, work: float) -> float:
        """Virtual time a ``work``-us execute burst takes from ``now``."""
        t = now
        remaining = work
        for start, end, rate in self.windows:
            if remaining <= 0.0:
                break
            if end <= t:
                continue
            if t < start:
                gap = start - t
                if remaining <= gap:
                    t += remaining
                    remaining = 0.0
                    break
                t = start
                remaining -= gap
            if rate == 0.0:
                t = end
            else:
                achievable = (end - t) * rate
                if remaining <= achievable:
                    t += remaining / rate
                    remaining = 0.0
                    break
                remaining -= achievable
                t = end
        if remaining > 0.0:
            t += remaining
        stretch = (t - now) - work
        if stretch > 0.0:
            self.stall_us += stretch
        return t - now


class FaultRuntime:
    """Live fault state of one cluster (built by ``FaultSchedule.install``)."""

    def __init__(self, schedule: FaultSchedule,
                 cluster: "Cluster") -> None:
        self.schedule = schedule
        self.sim = cluster.sim
        self.rng = cluster.rng.stream("faults")
        nnodes = cluster.nnodes
        #: Link-affecting clauses in schedule order (first verdict wins);
        #: each paired with its index, the Gilbert-Elliott state key.
        self._link_clauses: list[tuple[int, _LinkClause]] = []
        cpu_windows: dict[int, list[tuple[float, float, float]]] = {}
        for idx, clause in enumerate(schedule.clauses):
            if isinstance(clause, _LinkClause):
                for nid in (clause.src, clause.dst):
                    if nid is not None and not (0 <= nid < nnodes):
                        raise MachineError(
                            f"{type(clause).__name__}: node {nid} outside"
                            f" cluster of {nnodes} nodes")
                self._link_clauses.append((idx, clause))
            elif isinstance(clause, _CpuClause):
                if not (0 <= clause.node < nnodes):
                    raise MachineError(
                        f"{type(clause).__name__}: node {clause.node}"
                        f" outside cluster of {nnodes} nodes")
                cpu_windows.setdefault(clause.node, []).append(
                    (clause.start, clause.end, clause.rate()))
        #: Gilbert-Elliott chain state per (clause index, src, dst):
        #: True while the link is in the bad state.
        self._ge_bad: dict[tuple[int, int, int], bool] = {}
        self._cpu: dict[int, _CpuFaults] = {
            node: _CpuFaults(sorted(windows))
            for node, windows in cpu_windows.items()}
        # Fault counters (surfaced through the "faults" metrics
        # subsystem, which exists only while a schedule is installed).
        self.ge_drops = 0
        self.outage_drops = 0
        self.ack_drops = 0
        self.crc_drops = 0
        #: Virtual time of the first fault that actually engaged (first
        #: drop, CRC discard, or node crash), or None on a clean run.
        #: This is the chaos bench's *detection* timestamp --
        #: deliberately not part of :meth:`metrics` so historical
        #: ``--metrics`` blocks stay byte-identical.
        self.first_fault_us: Optional[float] = None

        # Fail-stop crash windows (resolved + validated by the
        # schedule): {node: [(crash_at, restart_at_or_inf), ...]}.
        self.crash_windows = schedule.crash_windows
        for nid in self.crash_windows:
            if not (0 <= nid < nnodes):
                raise MachineError(
                    f"NodeCrash: node {nid} outside cluster of"
                    f" {nnodes} nodes")
        #: True when the schedule fail-stops at least one node; the
        #: cluster auto-arms the failure detector off this flag.
        self.has_crashes = bool(self.crash_windows)
        self.node_crashes = 0
        self.node_restarts = 0
        self.threads_killed = 0
        #: Crash/restart instants in firing order:
        #: ``(t_us, node, "crash" | "restart")``.
        self.crash_events: list[tuple[float, int, str]] = []
        self.cluster = cluster

        # Hook into the machine layer.
        cluster.switch.faults = self
        for node in cluster.nodes:
            node.adapter.faults = self
            cpu_faults = self._cpu.get(node.node_id)
            if cpu_faults is not None:
                node.cpu.faults = cpu_faults
        cluster.metrics.register_collector("faults", self.metrics)
        # Post the crash/restart instants as bare kernel callbacks now;
        # install runs at sim.now == 0 and crash starts are > 0.
        for nid, windows in self.crash_windows.items():
            for crash_at, restart_at in windows:
                self.sim.call_at(crash_at, self._crash_node, nid)
                if math.isfinite(restart_at):
                    self.sim.call_at(restart_at, self._restart_node, nid)

    # ------------------------------------------------------------------
    # fabric path (called by Switch.route)
    # ------------------------------------------------------------------
    def judge(self, packet: "Packet", now: float) -> Optional[str]:
        """Fate of one routed packet: ``None`` (unharmed) or a verdict.

        Verdicts: ``"ge"`` / ``"outage"`` / ``"ack"`` mean the fabric
        drops the packet; ``"corrupt"`` means it traverses the wire but
        fails the destination adapter's CRC check.  Clauses are
        consulted in schedule order and the first verdict wins; RNG
        draws are taken in that same order, making the fault pattern a
        pure function of the seed and the packet sequence.
        """
        rng = self.rng
        src = packet.src
        dst = packet.dst
        for idx, clause in self._link_clauses:
            if not clause.active(now):
                continue
            if not clause.matches_pair(src, dst):
                continue
            if type(clause) is GilbertElliott:
                key = (idx, src, dst)
                bad = self._ge_bad.get(key, False)
                flip_p = clause.p_bad_good if bad else clause.p_good_bad
                if flip_p > 0.0 and rng.random() < flip_p:
                    bad = not bad
                    self._ge_bad[key] = bad
                loss = clause.loss_bad if bad else clause.loss_good
                if loss > 0.0 and rng.random() < loss:
                    return "ge"
            elif type(clause) is LinkOutage:
                return "outage"
            elif type(clause) is AckLoss:
                if str(packet.kind) != "ack":
                    continue
                if rng.random() < clause.rate:
                    return "ack"
            elif type(clause) is Corruption:
                if rng.random() < clause.rate:
                    return "corrupt"
        return None

    def record_drop(self, verdict: str, packet: "Packet",
                    now: float) -> None:
        """Count a fabric drop and emit its span instant event."""
        if verdict == "ge":
            self.ge_drops += 1
        elif verdict == "outage":
            self.outage_drops += 1
        else:
            self.ack_drops += 1
        if self.first_fault_us is None:
            self.first_fault_us = now
        sp = self.sim.spans
        if sp is not None:
            sp.emit(packet.src, "faults", verdict, "fault", now, now,
                    uid=packet.uid, dst=packet.dst)
        flight = self.sim.flight
        if flight is not None:
            flight.note(packet.src, "faults", f"drop.{verdict}",
                        dst=packet.dst, uid=packet.uid,
                        kind=str(packet.kind))
            # One black-box dump per distinct engaged fault verdict:
            # the first drop of each kind captures the lead-up, the
            # storm after it stays in the (bounded) rings.
            flight.trigger("fault-engaged", key=("fault", verdict),
                           verdict=verdict, src=packet.src,
                           dst=packet.dst)

    # ------------------------------------------------------------------
    # receive path (called by Adapter on CRC discard)
    # ------------------------------------------------------------------
    def record_crc(self, packet: "Packet", now: float) -> None:
        """Count a corruption discard and emit its span instant event."""
        self.crc_drops += 1
        if self.first_fault_us is None:
            self.first_fault_us = now
        sp = self.sim.spans
        if sp is not None:
            sp.emit(packet.dst, "faults", "corrupt", "fault", now, now,
                    uid=packet.uid, src=packet.src)
        flight = self.sim.flight
        if flight is not None:
            flight.note(packet.dst, "faults", "drop.corrupt",
                        src=packet.src, uid=packet.uid,
                        kind=str(packet.kind))
            flight.trigger("fault-engaged", key=("fault", "corrupt"),
                           verdict="corrupt", src=packet.src,
                           dst=packet.dst)

    # ------------------------------------------------------------------
    # fail-stop crash hooks (bare kernel callbacks posted at install)
    # ------------------------------------------------------------------
    def _crash_node(self, node_id: int) -> None:
        """Fail-stop ``node_id`` at the scheduled instant."""
        now = self.sim.now
        node = self.cluster.nodes[node_id]
        killed = node.crash()
        self.node_crashes += 1
        self.threads_killed += killed
        self.crash_events.append((now, node_id, "crash"))
        if self.first_fault_us is None:
            self.first_fault_us = now
        sp = self.sim.spans
        if sp is not None:
            sp.emit(node_id, "faults", "crash", "fault", now, now)
        flight = self.sim.flight
        if flight is not None:
            flight.note(node_id, "faults", "node.crash",
                        threads_killed=killed)
            flight.trigger("fault-engaged", key=("crash", node_id),
                           verdict="crash", node=node_id,
                           threads_killed=killed)
        res = self.cluster.resilience
        if res is not None:
            res.node_crashed(node_id, now)

    def _restart_node(self, node_id: int) -> None:
        """Machine-level restart of ``node_id`` at the scheduled instant."""
        now = self.sim.now
        self.cluster.nodes[node_id].restart()
        self.node_restarts += 1
        self.crash_events.append((now, node_id, "restart"))
        sp = self.sim.spans
        if sp is not None:
            sp.emit(node_id, "faults", "restart", "fault", now, now)
        flight = self.sim.flight
        if flight is not None:
            flight.note(node_id, "faults", "node.restart")
        res = self.cluster.resilience
        if res is not None:
            res.node_restarted(node_id, now)

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Counter block for the observability registry (collector)."""
        out = {
            "ge_drops": self.ge_drops,
            "outage_drops": self.outage_drops,
            "ack_drops": self.ack_drops,
            "crc_drops": self.crc_drops,
            "fault_drops": (self.ge_drops + self.outage_drops
                            + self.ack_drops + self.crc_drops),
        }
        stall = sum(cf.stall_us for cf in self._cpu.values())
        out["cpu_stall_us"] = round(stall, 6)
        # Crash counters appear only for schedules that fail-stop a
        # node, keeping non-crash fault metrics blocks byte-identical
        # to their historical output.
        if self.node_crashes:
            out["node_crashes"] = self.node_crashes
            out["node_restarts"] = self.node_restarts
            out["threads_killed"] = self.threads_killed
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<FaultRuntime {len(self.schedule)} clauses"
                f" drops={self.ge_drops + self.outage_drops}"
                f" ack={self.ack_drops} crc={self.crc_drops}>")
