"""Deterministic seeded fault injection (``repro.faults``).

Declarative fault scenarios for the simulated SP: bursty per-link loss
(Gilbert-Elliott), timed link outages, asymmetric ack loss, payload
corruption caught by the receive-side CRC check, per-node CPU
pause/slowdown windows, and fail-stop node crashes with optional
restart.  Build a :class:`FaultSchedule` from clauses and hand it to
``Cluster(..., faults=schedule)``; see ``docs/reliability.md`` for the
model and the adaptive retransmission machinery that survives it.
"""

from .runtime import FaultRuntime
from .schedule import (AckLoss, Corruption, CpuDegrade, CpuPause,
                       FaultClause, FaultSchedule, GilbertElliott,
                       LinkOutage, NodeCrash, NodeRestart)

__all__ = ["FaultSchedule", "FaultClause", "GilbertElliott",
           "LinkOutage", "AckLoss", "Corruption", "CpuPause",
           "CpuDegrade", "NodeCrash", "NodeRestart", "FaultRuntime"]
