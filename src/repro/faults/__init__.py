"""Deterministic seeded fault injection (``repro.faults``).

Declarative fault scenarios for the simulated SP: bursty per-link loss
(Gilbert-Elliott), timed link outages, asymmetric ack loss, payload
corruption caught by the receive-side CRC check, and per-node CPU
pause/slowdown windows.  Build a :class:`FaultSchedule` from clauses
and hand it to ``Cluster(..., faults=schedule)``; see
``docs/reliability.md`` for the model and the adaptive retransmission
machinery that survives it.
"""

from .runtime import FaultRuntime
from .schedule import (AckLoss, Corruption, CpuDegrade, CpuPause,
                       FaultClause, FaultSchedule, GilbertElliott,
                       LinkOutage)

__all__ = ["FaultSchedule", "FaultClause", "GilbertElliott",
           "LinkOutage", "AckLoss", "Corruption", "CpuPause",
           "CpuDegrade", "FaultRuntime"]
