"""Per-node simulated memory.

Each node owns a :class:`Memory`: a set of live allocations addressed by
flat integers.  An *address* packs ``(allocation id, offset)`` into one
int, so pointer arithmetic works within an allocation (what remote-memory
-copy semantics need) while any access that strays outside a live
allocation faults loudly -- the simulated analogue of a segfault, which
has caught real protocol bugs in this code base.

Data is stored in :class:`numpy.ndarray` buffers, so Global Arrays can
obtain zero-copy typed views of its local blocks, while LAPI moves raw
bytes.  Timing is *not* modelled here: CPU copy costs are charged by the
caller via :meth:`repro.machine.config.MachineConfig.copy_cost`, keeping
data movement and time accounting independently testable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AllocationError, MemoryFault

__all__ = ["Memory", "OFFSET_BITS"]

#: Bits reserved for the within-allocation offset (1 TiB per allocation).
OFFSET_BITS = 40
_OFFSET_MASK = (1 << OFFSET_BITS) - 1


class Memory:
    """Address space of one simulated node."""

    def __init__(self, node_id: int,
                 max_allocation: int = 512 * 1024 * 1024) -> None:
        self.node_id = node_id
        self.max_allocation = max_allocation
        self._allocs: dict[int, np.ndarray] = {}
        self._next_id = 1
        #: Total live bytes, for resource accounting in tests.
        self.live_bytes = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def malloc(self, nbytes: int, fill: int = 0) -> int:
        """Allocate ``nbytes`` and return the base address."""
        if nbytes <= 0:
            raise AllocationError(f"malloc({nbytes}) is not positive")
        if nbytes > self.max_allocation:
            raise AllocationError(
                f"malloc({nbytes}) exceeds the {self.max_allocation}-byte"
                " single-allocation cap")
        buf = np.full(nbytes, fill, dtype=np.uint8)
        aid = self._next_id
        self._next_id += 1
        self._allocs[aid] = buf
        self.live_bytes += nbytes
        return aid << OFFSET_BITS

    def free(self, addr: int) -> None:
        """Release the allocation whose *base* address is ``addr``."""
        aid, off = addr >> OFFSET_BITS, addr & _OFFSET_MASK
        if off != 0:
            raise MemoryFault(
                f"free() of interior pointer {addr:#x} (offset {off})")
        buf = self._allocs.pop(aid, None)
        if buf is None:
            raise MemoryFault(f"free() of unknown address {addr:#x}")
        self.live_bytes -= buf.nbytes

    def size_of(self, addr: int) -> int:
        """Bytes from ``addr`` to the end of its allocation."""
        buf, off = self._resolve(addr, 0)
        return buf.nbytes - off

    # ------------------------------------------------------------------
    # raw byte access
    # ------------------------------------------------------------------
    def _resolve(self, addr: int, nbytes: int) -> tuple[np.ndarray, int]:
        aid, off = addr >> OFFSET_BITS, addr & _OFFSET_MASK
        buf = self._allocs.get(aid)
        if buf is None:
            raise MemoryFault(
                f"node {self.node_id}: access to unmapped address"
                f" {addr:#x}")
        if nbytes < 0 or off + nbytes > buf.nbytes:
            raise MemoryFault(
                f"node {self.node_id}: access [{off}:{off + nbytes}] past"
                f" end of {buf.nbytes}-byte allocation")
        return buf, off

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``addr``."""
        buf, off = self._resolve(addr, nbytes)
        return buf[off:off + nbytes].tobytes()

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr``."""
        buf, off = self._resolve(addr, len(data))
        buf[off:off + len(data)] = np.frombuffer(data, dtype=np.uint8)

    def view(self, addr: int, nbytes: int,
             dtype: Optional[np.dtype] = None) -> np.ndarray:
        """Zero-copy ndarray view of ``nbytes`` at ``addr``.

        The view aliases simulated memory: mutations through it are
        visible to subsequent reads, which is exactly how Global Arrays
        owns its local blocks.
        """
        buf, off = self._resolve(addr, nbytes)
        raw = buf[off:off + nbytes]
        if dtype is None:
            return raw
        dt = np.dtype(dtype)
        if nbytes % dt.itemsize:
            raise MemoryFault(
                f"{nbytes}-byte view is not a multiple of {dt} itemsize")
        return raw.view(dt)

    # ------------------------------------------------------------------
    # word access (for LAPI_Rmw and counters in memory)
    # ------------------------------------------------------------------
    def read_i64(self, addr: int) -> int:
        """Read one little-endian signed 64-bit word."""
        buf, off = self._resolve(addr, 8)
        return int(buf[off:off + 8].view(np.int64)[0])

    def write_i64(self, addr: int, value: int) -> None:
        """Write one little-endian signed 64-bit word."""
        buf, off = self._resolve(addr, 8)
        buf[off:off + 8].view(np.int64)[0] = value

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Memory node={self.node_id} allocs={len(self._allocs)}"
                f" live={self.live_bytes}B>")
