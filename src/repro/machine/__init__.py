"""The simulated IBM RS/6000 SP machine.

Hardware model used by every protocol stack in the reproduction:

* :class:`MachineConfig` / :data:`SP_1998` -- the calibration table.
* :class:`Node` -- CPU (:class:`Cpu`, :class:`Thread`), :class:`Memory`,
  and switch :class:`Adapter`.
* :class:`Switch` + :class:`Topology` -- the multistage packet fabric
  with multipath (out-of-order) routing and optional loss.
* :class:`Cluster` / :class:`Task` -- SPMD job assembly and execution.
"""

from .adapter import Adapter, AdapterClient
from .cluster import Cluster, Task
from .config import SP_1998, MachineConfig
from .cpu import HANDLER, INTERRUPT, NORMAL, TASK_CRASHED, Cpu, Thread
from .memory import Memory
from .node import Node
from .packet import Packet
from .routing import Route, SerialResource, Topology
from .stats import ClusterStats, snapshot
from .switch import Switch

__all__ = [
    "Adapter",
    "AdapterClient",
    "Cluster",
    "ClusterStats",
    "Cpu",
    "HANDLER",
    "INTERRUPT",
    "Memory",
    "MachineConfig",
    "NORMAL",
    "Node",
    "Packet",
    "Route",
    "SP_1998",
    "SerialResource",
    "snapshot",
    "Switch",
    "TASK_CRASHED",
    "Task",
    "Thread",
    "Topology",
]
