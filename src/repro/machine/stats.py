"""Cluster-wide hardware statistics snapshots.

Collects the counters every component of the machine model keeps
(adapter send/receive/drop counts, switch routing and loss totals, the
busiest links) into one report -- the observability surface operators
of the real SP had through its monitoring tools, and what the examples
print after a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Cluster

__all__ = ["ClusterStats", "snapshot"]


@dataclass
class ClusterStats:
    """One point-in-time view of the machine's counters."""

    virtual_time_us: float
    packets_routed: int
    packets_lost: int
    bytes_routed: int
    adapter_sent: dict[int, int] = field(default_factory=dict)
    adapter_received: dict[int, int] = field(default_factory=dict)
    adapter_dropped: dict[int, int] = field(default_factory=dict)
    #: (link name, utilization in [0, 1]) for the busiest links.
    busiest_links: list[tuple[str, float]] = field(default_factory=list)

    @property
    def total_sent(self) -> int:
        return sum(self.adapter_sent.values())

    @property
    def effective_bandwidth_mbs(self) -> float:
        """Aggregate bytes over elapsed virtual time (MB/s)."""
        if self.virtual_time_us <= 0:
            return 0.0
        return self.bytes_routed / self.virtual_time_us

    def render(self) -> str:
        lines = [
            f"cluster stats @ {self.virtual_time_us:,.1f} virtual us",
            f"  switch: {self.packets_routed:,} packets routed,"
            f" {self.packets_lost:,} lost,"
            f" {self.bytes_routed:,} bytes"
            f" ({self.effective_bandwidth_mbs:.1f} MB/s aggregate)",
        ]
        for node in sorted(self.adapter_sent):
            lines.append(
                f"  node {node}: sent {self.adapter_sent[node]:,},"
                f" received {self.adapter_received[node]:,},"
                f" rx-dropped {self.adapter_dropped[node]:,}")
        if self.busiest_links:
            links = ", ".join(f"{name} {util:.0%}"
                              for name, util in self.busiest_links)
            lines.append(f"  busiest links: {links}")
        return "\n".join(lines)


def snapshot(cluster: "Cluster", top_links: int = 5) -> ClusterStats:
    """Capture the current counters of every machine component."""
    sw = cluster.switch
    stats = ClusterStats(
        virtual_time_us=cluster.sim.now,
        packets_routed=sw.packets_routed,
        packets_lost=sw.packets_lost,
        bytes_routed=sw.bytes_routed)
    for node in cluster.nodes:
        ad = node.adapter
        stats.adapter_sent[node.node_id] = ad.packets_sent
        stats.adapter_received[node.node_id] = ad.packets_received
        stats.adapter_dropped[node.node_id] = ad.rx_dropped
    # Streamed top-k (O(top_links) extra space): at --scale node counts
    # the full utilization dict would dominate the snapshot's cost.
    # ``busiest_links`` matches the historical full-sort ordering
    # exactly, ties included.
    stats.busiest_links = sw.busiest_links(top_links)
    return stats
