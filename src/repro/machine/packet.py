"""Network packets exchanged through the simulated SP switch.

A :class:`Packet` is what the adapter injects and the switch routes.  The
protocol stacks (LAPI, MPL) put their wire-header *size* in
``header_bytes`` -- it occupies link bandwidth -- while the decoded header
*fields* travel in ``info`` (a real implementation would pack them into
those bytes; carrying them decoded keeps the model inspectable without
changing any timing).

``Packet`` is a ``__slots__`` class, not a dataclass: packets are the
single most-allocated model object (one per wire packet plus one per
acknowledgement), and the per-instance ``__dict__`` plus generated
``__init__``/``__post_init__`` chain of the dataclass it used to be were
measurable on the hot path.  Construction semantics are unchanged; uids
still come from the per-cluster counter.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..errors import NetworkError

__all__ = ["Packet", "reset_packet_ids"]

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart uid numbering (called per cluster, so uids are a
    function of the cluster's own history, not of whatever ran earlier
    in the process — a requirement for serial/parallel trace parity)."""
    global _packet_ids
    _packet_ids = itertools.count()


def next_packet_id() -> int:
    """Draw the next uid from the per-cluster stream.

    The pool's reset-on-acquire path uses this so a recycled packet's
    uid is exactly the one a fresh construction at the same point would
    have drawn -- uid streams are byte-identical with pooling on or off,
    and uid-keyed side tables (span tracks) can never alias a stale
    entry.
    """
    return next(_packet_ids)


class Packet:
    """One wire packet.

    Attributes
    ----------
    src, dst:
        Node ids of origin and target.
    proto:
        Owning protocol stack, e.g. ``"lapi"`` or ``"mpl"``; the adapter
        demultiplexes arriving packets to the matching client.
    kind:
        Packet type within the protocol (``"data"``, ``"ack"``,
        ``"rts"``...).
    seq:
        Transport-level sequence number assigned by the reliability
        layer; ``-1`` for packets outside any reliable flow.
    header_bytes:
        Wire header size; charged against link bandwidth.
    payload:
        The data bytes carried (may be empty for control packets).
    info:
        Decoded protocol header fields (message id, offsets, handler
        ids...).  Conceptually part of ``header_bytes``.
    uid:
        Unique id for tracing/debugging; not part of the wire format.
    size:
        Total bytes on the wire.  Precomputed: ``header_bytes`` and
        ``payload`` are fixed at construction, and ``size`` is read for
        every serialization/occupancy charge on the TX and route paths.
    pooled:
        True for instances owned by a :class:`repro.machine.pool`
        free list; only those may be released back to it.
    """

    __slots__ = ("src", "dst", "proto", "kind", "header_bytes", "payload",
                 "seq", "info", "uid", "size", "pooled")

    def __init__(self, src: int, dst: int, proto: str, kind: str,
                 header_bytes: int, payload: bytes = b"", seq: int = -1,
                 info: Optional[dict[str, Any]] = None,
                 uid: Optional[int] = None) -> None:
        self.src = src
        self.dst = dst
        self.proto = proto
        self.kind = kind
        self.header_bytes = header_bytes
        self.payload = payload
        self.seq = seq
        self.info = {} if info is None else info
        self.uid = next(_packet_ids) if uid is None else uid
        self.size = header_bytes + len(payload)
        self.pooled = False

    def validate(self, max_size: int) -> None:
        """Check wire-format invariants against the machine config."""
        if self.src == self.dst:
            raise NetworkError(f"packet {self.uid} loops to its source")
        if self.src < 0 or self.dst < 0:
            raise NetworkError(f"packet {self.uid} has a negative node id")
        if self.header_bytes <= 0:
            raise NetworkError(f"packet {self.uid} has no header")
        if self.size > max_size:
            raise NetworkError(
                f"packet {self.uid} oversize: {self.size} > {max_size}")

    def trace_fields(self) -> dict:
        """Structured identity for trace records (JSONL export)."""
        return {"uid": self.uid, "proto": self.proto,
                "kind": str(self.kind), "src": self.src, "dst": self.dst,
                "seq": self.seq, "bytes": self.size}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Packet#{self.uid} {self.proto}.{self.kind} "
                f"{self.src}->{self.dst} seq={self.seq} "
                f"{len(self.payload)}B+{self.header_bytes}B>")
