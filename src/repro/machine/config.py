"""Machine calibration tables for the simulated IBM RS/6000 SP.

Every scalar cost in the machine model lives here, in one frozen
dataclass, so that (a) experiments are reproducible from a single config
object, (b) ablation benchmarks can sweep a constant without touching
model code, and (c) the calibration story is auditable: the comments on
each field say what 1998-era quantity it stands for.

Calibration philosophy
----------------------
The reproduction targets the paper's *mechanisms* (protocol structure,
copies, interrupts, header arithmetic).  The scalars below were chosen
once so that the simulated Table 2 and the latency/pipeline numbers in
section 4 land close to the paper's measurements on 120 MHz P2SC nodes,
and are then held fixed for every other experiment; Figures 2-4 and the
application results are *predictions* of the model, not fits.

Units: time in microseconds, sizes in bytes, bandwidth in bytes/us
(numerically equal to MB/s).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["MachineConfig", "SP_1998"]


@dataclass(frozen=True)
class MachineConfig:
    """All tunable constants of the simulated SP system."""

    # ------------------------------------------------------------------
    # Switch fabric and adapter ("SP switch", TB3 adapter)
    # ------------------------------------------------------------------
    #: Raw link signalling rate.  The SP switch delivered up to 110 MB/s
    #: bi-directional per node pair; sustained user-space payload peaked
    #: near 100 MB/s.  Raw rate feeding the header/payload arithmetic.
    link_bandwidth: float = 112.5
    #: Maximum packet size on the wire, header included (SP switch: 1 KiB).
    packet_size: int = 1024
    #: Per-hop propagation/cut-through delay inside the switch fabric.
    hop_latency: float = 0.2
    #: Node-to-edge-switch wire latency (each direction).
    wire_latency: float = 0.1
    #: Nodes attached to one edge switch (SP switch boards served small
    #: groups of node ports; also controls when traffic crosses the
    #: multistage core and can be reordered by multipath routing).
    switch_group_size: int = 4
    #: Number of middle-stage switches == disjoint paths between groups.
    #: The SP switch provided 4 independent routes between node pairs.
    switch_mid_count: int = 4
    #: Uniform random extra delay per middle-stage traversal, modelling
    #: route-length/queueing variation; this is what makes concurrent
    #: packets arrive out of order (a property LAPI must tolerate).
    route_jitter: float = 0.15
    #: Probability a packet is lost in the fabric (CRC error, link fault).
    #: Zero by default; fault-injection tests and the reliability layer
    #: benches raise it.
    loss_rate: float = 0.0
    #: Adapter FIFO depths, in packets.
    adapter_tx_fifo: int = 64
    adapter_rx_fifo: int = 512
    #: DMA/injection engine cost per packet on the send side (descriptor
    #: setup + FIFO write), paid by the adapter, pipelined with the CPU.
    adapter_send_dma: float = 0.8
    #: Same on the receive side (FIFO read + DMA to host memory).
    adapter_recv_dma: float = 0.8
    #: Extra per-packet gap on the wire (framing, CRC, flow control).
    packet_gap: float = 0.15
    # ------------------------------------------------------------------
    # Fabric topology (the ``--scale`` bench; "sp" is the paper machine)
    # ------------------------------------------------------------------
    #: Fabric shape: ``"sp"`` (the paper's multistage switch),
    #: ``"fattree"`` (three-tier leaf/agg/core), or ``"dragonfly"``
    #: (router groups with global links).  See
    #: :mod:`repro.machine.routing`.
    topology: str = "sp"
    #: Fat tree: nodes per leaf switch.
    fattree_leaf_size: int = 16
    #: Fat tree: leaf switches per pod.
    fattree_pod_leaves: int = 8
    #: Fat tree: aggregation switches per pod (intra-pod multipath).
    fattree_agg_count: int = 8
    #: Fat tree: core switches (cross-pod multipath width).
    fattree_core_count: int = 16
    #: Dragonfly: nodes per router.
    dragonfly_router_nodes: int = 4
    #: Dragonfly: routers per group (all-to-all local links).
    dragonfly_group_routers: int = 8
    #: Dragonfly: extra flight time of a global (inter-group) link,
    #: on top of the per-hop latency -- global links are physically
    #: long.
    dragonfly_global_latency: float = 0.5
    #: Bound on the switch's per-pair route cache, in (src, dst)
    #: entries; ``None`` (default) caches every pair ever routed, the
    #: historical behaviour.  Large clusters set a bound so cache
    #: memory stays O(bound) instead of O(nodes^2) under all-to-all
    #: traffic; eviction is oldest-entry-first.
    route_cache_entries: Optional[int] = None
    #: Simulator (not machine) switch: let the adapter TX engine
    #: serialize the interior of a contiguous multi-packet train
    #: analytically -- one precomputed schedule instead of generator
    #: round-trips per packet.  Pure performance: engages only when
    #: per-packet timing is provably deterministic (no loss, no jitter,
    #: single candidate route, contiguous same-message packets) and the
    #: resulting virtual times are bit-identical to the packet-by-packet
    #: path, which equivalence tests assert.  Off = always packet-by-
    #: packet (debugging aid).
    fast_trains: bool = True
    #: Simulator switch layered on ``fast_trains``: represent a peeled
    #: train's interior as one struct-of-arrays :class:`PacketTrain`
    #: record (``repro.machine.train``) instead of per-packet callback
    #: items.  Same kernel events at the same instants; only the
    #: per-event Python work shrinks.  Engages only when ``fast_trains``
    #: peeled a train AND nothing observes interior packet identity
    #: (no span recorder, no tracer); otherwise the object-path train
    #: scheduler runs.  Off = always the object path (debugging aid).
    soa_trains: bool = True

    # ------------------------------------------------------------------
    # Node: 120 MHz P2SC CPU, AIX 4.2.1
    # ------------------------------------------------------------------
    #: Sustained memcpy bandwidth of a P2SC node (bytes/us == MB/s).
    cpu_copy_bandwidth: float = 380.0
    #: Fixed cost of starting any memory copy (function call, alignment).
    copy_setup: float = 0.3
    #: Sustained DAXPY-style bandwidth for accumulate operations.
    daxpy_bandwidth: float = 210.0
    #: Cost of taking a hardware interrupt and dispatching to the
    #: communication subsystem (first-level handler + mode switch).  This
    #: is the per-side premium interrupt mode pays over polling.
    interrupt_latency: float = 14.0
    #: Cost of one poll of the adapter status (doorbell read).
    poll_check_cost: float = 0.7
    #: After draining, the interrupt-mode dispatcher lingers this long
    #: (off-CPU) for further arrivals before re-arming the interrupt:
    #: back-to-back packets of a bulk stream are then serviced by one
    #: interrupt (the coalescing section 5.3.1 alludes to), while
    #: isolated messages still pay the full interrupt cost.
    interrupt_linger: float = 15.0
    #: Thread context switch cost (used when handler threads hand off).
    context_switch: float = 1.5
    #: Pthread mutex lock/unlock pair, uncontended.
    mutex_cost: float = 0.4
    #: Sustained double-precision rate of a P2SC node (flops per us ==
    #: MFLOPS); used by the application kernels to charge compute time.
    flops_per_us: float = 220.0

    # ------------------------------------------------------------------
    # LAPI protocol constants
    # ------------------------------------------------------------------
    #: LAPI packet header (section 4: 48 bytes -- the origin must carry
    #: target-side parameters in every packet).
    lapi_header: int = 48
    #: User-space library call overhead for any LAPI entry point.
    lapi_call_overhead: float = 9.0
    #: CPU cost to build + stage one outgoing packet (header formatting,
    #: FIFO slot claim), excluding the data copy itself.
    lapi_pkt_send_cost: float = 6.3
    #: CPU cost to demultiplex the first packet of a dispatch batch
    #: (interrupt/poll wake-up path; dominates small-message latency).
    lapi_pkt_recv_cost: float = 10.5
    #: CPU cost per additional packet processed in the same dispatch
    #: batch -- bulk streaming amortizes the wake-up work, which is how
    #: the real stack sustains ~97 MB/s despite a ~10 us first-packet
    #: cost.
    lapi_pkt_recv_amortized: float = 4.0
    #: Cost of invoking a user header handler (call + uhdr delivery).
    lapi_hdr_handler_cost: float = 2.5
    #: Cost of scheduling a completion handler onto its thread.
    lapi_cmpl_handler_cost: float = 2.0
    #: Cost of updating one completion counter (and waking waiters).
    lapi_counter_update: float = 0.4
    #: Extra origin-side cost of a Get over a Put (request marshalling).
    lapi_get_extra: float = 3.0
    #: Maximum user header (uhdr) bytes in LAPI_Amsend.
    lapi_uhdr_max: int = 128
    #: Messages no larger than this are copied into LAPI's internal send
    #: buffers (for possible retransmission) so the call returns
    #: immediately (section 5.3.1); larger messages transmit from the
    #: user buffer and the origin counter fires when the last packet has
    #: been handed to the adapter.
    lapi_retrans_copy_limit: int = 4096
    #: Go-back-N retransmission window per destination, in packets.
    lapi_window: int = 64
    #: Retransmission timeout.  Must comfortably exceed the time a
    #: full send window spends queued at the adapter (~64 packets x
    #: ~10 us) or spurious retransmission storms ensue.
    lapi_retrans_timeout: float = 2000.0
    #: Cost for the target side to emit a protocol ACK.
    lapi_ack_cost: float = 1.0

    # ------------------------------------------------------------------
    # Adaptive retransmission (Jacobson/Karels RTO; see
    # docs/reliability.md).  ``adaptive_rto=None`` means *auto*: the
    # transports adapt exactly when a ``FaultSchedule`` is installed on
    # the cluster, so fault-free runs keep the fixed-timeout arithmetic
    # (and its virtual-time trajectory) bit-for-bit.  ``True``/``False``
    # force the choice either way (ablations).
    # ------------------------------------------------------------------
    adaptive_rto: Optional[bool] = None
    #: Lower clamp on the estimated RTO: below this, jitter in the RTT
    #: samples would cause spurious retransmission storms.
    rto_min: float = 200.0
    #: Upper clamp on the backed-off RTO: keeps recovery probes flowing
    #: through long outages instead of backing off into silence.
    rto_max: float = 30000.0
    #: Exponential backoff multiplier applied per retransmission round
    #: while a packet stays unacknowledged (Karn's backoff).
    rto_backoff: float = 2.0
    #: Retransmission attempts for one packet before the transport marks
    #: the peer *degraded* (health state machine; the peer returns to
    #: *healthy* on the next fresh acknowledgement).
    peer_degraded_after: int = 3
    #: Retransmission attempts for one packet before the transport gives
    #: up and declares the peer unreachable (the retry budget; the
    #: historical hardwired cap was 50).
    retry_budget: int = 50

    # ------------------------------------------------------------------
    # Failure detection (repro.resilience; see docs/reliability.md).
    # ``failure_detector=None`` means *auto*: the heartbeat detector is
    # armed exactly when the installed fault schedule fail-stops a node
    # (NodeCrash clauses), so every other run -- including non-crash
    # fault scenarios -- keeps its virtual-time trajectory bit-for-bit.
    # ``True``/``False`` force the choice either way.
    # ------------------------------------------------------------------
    failure_detector: Optional[bool] = None
    #: Heartbeat period: every node pings every peer this often
    #: (virtual us) through an adapter-assisted responder.
    heartbeat_period: float = 400.0
    #: Silence threshold: a peer not heard from for this long is
    #: *convicted* (declared fail-stop dead) and every primitive blocked
    #: on it resolves with ``PeerUnreachableError``.  Worst-case
    #: detection latency is ``conviction_threshold + heartbeat_period``.
    conviction_threshold: float = 2000.0

    # ------------------------------------------------------------------
    # MPL / MPI protocol constants (the baseline stack)
    # ------------------------------------------------------------------
    #: MPI packet header (section 4: 16 bytes).
    mpl_header: int = 16
    #: Library call overhead for MPI/MPL entry points (thicker API layer:
    #: communicators, datatypes, request objects).
    mpl_call_overhead: float = 10.0
    mpl_pkt_send_cost: float = 6.5
    mpl_pkt_recv_cost: float = 13.5
    #: Amortized per-packet cost within one dispatch batch.  Higher
    #: than LAPI's: every two-sided packet touches per-message matching
    #: state, the very "ordering, matching, grouping and buffering"
    #: overhead section 4 blames for MPI's slower rise.
    mpl_pkt_recv_amortized: float = 6.5
    #: Cost of matching an arriving message against the posted-receive
    #: queue (or filing it on the unexpected queue).
    mpl_match_cost: float = 7.5
    #: Cost of posting a receive (descriptor + queue insert).
    mpl_post_recv_cost: float = 2.5
    #: Default MP_EAGER_LIMIT: above this, MPI switches from the eager to
    #: the rendezvous protocol (section 4: kink at 4 KB).
    mpl_eager_limit: int = 4096
    #: Maximum value MP_EAGER_LIMIT accepts (64 KiB).
    mpl_eager_limit_max: int = 65536
    #: Per-control-message cost of the rendezvous handshake (RTS/CTS).
    mpl_rendezvous_ctrl_cost: float = 4.0
    #: Send-side internal buffering limit: a non-blocking send whose
    #: message fits is copied and returns immediately (the "much larger
    #: buffer space in MPL/MPI" of section 5.4, visible in Figure 3's
    #: 1 KB - 20 KB band).
    mpl_send_buffer_limit: int = 20480
    #: Receive-side early-arrival buffer per message (eager messages that
    #: arrive before the receive is posted are copied here, then copied
    #: again when the receive posts: the "extra copy" of section 4).
    mpl_early_arrival_limit: int = 65536
    #: Go-back-N window per destination for the MPL transport.
    mpl_window: int = 64
    #: MPL retransmission timeout (same sizing rule as LAPI's).
    mpl_retrans_timeout: float = 2000.0
    #: AIX cost to create the handler context for an MPL rcvncall
    #: (section 5.2 blames this for the >300 us gets on the SP-1/2; on
    #: the measured system the interrupt round-trip was 200 us).
    rcvncall_context_cost: float = 93.0

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    #: Per-node simulated memory is allocated lazily; this caps a single
    #: allocation to catch runaway models.
    max_allocation: int = 512 * 1024 * 1024

    def replace(self, **changes) -> "MachineConfig":
        """Return a copy with ``changes`` applied (ablation helper)."""
        return dataclasses.replace(self, **changes)

    # Derived quantities -------------------------------------------------
    @property
    def lapi_payload(self) -> int:
        """Data bytes one LAPI packet carries."""
        return self.packet_size - self.lapi_header

    @property
    def mpl_payload(self) -> int:
        """Data bytes one MPL/MPI packet carries."""
        return self.packet_size - self.mpl_header

    @property
    def am_uhdr_payload(self) -> int:
        """Data bytes available in a single-packet active message after
        transport header and a maximal user header -- the "around 900
        bytes to the application" of section 5.3.1 that Global Arrays
        exploits for its pipelined medium-message protocol."""
        return self.packet_size - self.lapi_header - self.lapi_uhdr_max

    def copy_cost(self, nbytes: int) -> float:
        """CPU time to memcpy ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.copy_setup + nbytes / self.cpu_copy_bandwidth

    def daxpy_cost(self, nbytes: int) -> float:
        """CPU time to accumulate (read-modify-write) ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.copy_setup + nbytes / self.daxpy_bandwidth

    def flop_cost(self, nflops: float) -> float:
        """CPU time for ``nflops`` double-precision operations."""
        if nflops <= 0:
            return 0.0
        return nflops / self.flops_per_us

    def validate(self) -> None:
        """Raise ``ValueError`` on physically meaningless settings."""
        if self.packet_size <= max(self.lapi_header, self.mpl_header):
            raise ValueError("packet_size must exceed protocol headers")
        if self.lapi_uhdr_max >= self.lapi_payload:
            raise ValueError("lapi_uhdr_max must fit in a packet payload")
        if not (0.0 <= self.loss_rate < 1.0):
            raise ValueError("loss_rate must be in [0, 1)")
        if self.link_bandwidth <= 0 or self.cpu_copy_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.switch_group_size < 1 or self.switch_mid_count < 1:
            raise ValueError("switch topology parameters must be >= 1")
        from .routing import TOPOLOGIES
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from"
                f" {TOPOLOGIES}")
        for name in ("fattree_leaf_size", "fattree_pod_leaves",
                     "fattree_agg_count", "fattree_core_count",
                     "dragonfly_router_nodes",
                     "dragonfly_group_routers"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.dragonfly_global_latency < 0:
            raise ValueError("dragonfly_global_latency must be >= 0")
        if (self.route_cache_entries is not None
                and self.route_cache_entries < 1):
            raise ValueError("route_cache_entries must be None or >= 1")
        if self.mpl_eager_limit > self.mpl_eager_limit_max:
            raise ValueError("eager limit exceeds its maximum")
        for name in ("lapi_retrans_timeout", "mpl_retrans_timeout"):
            timeout = getattr(self, name)
            if not (timeout > 0 and math.isfinite(timeout)):
                raise ValueError(
                    f"{name} must be positive and finite, got {timeout}")
        for name in ("lapi_window", "mpl_window"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if not (0 < self.rto_min <= self.rto_max
                and math.isfinite(self.rto_max)):
            raise ValueError(
                "need 0 < rto_min <= rto_max, both finite"
                f" (got {self.rto_min}, {self.rto_max})")
        if not (self.rto_backoff >= 1.0
                and math.isfinite(self.rto_backoff)):
            raise ValueError(
                f"rto_backoff must be finite and >= 1,"
                f" got {self.rto_backoff}")
        if self.peer_degraded_after < 1:
            raise ValueError("peer_degraded_after must be >= 1")
        if self.retry_budget < 1:
            raise ValueError(
                f"retry_budget must be >= 1, got {self.retry_budget}")
        if not (self.heartbeat_period > 0
                and math.isfinite(self.heartbeat_period)):
            raise ValueError(
                f"heartbeat_period must be positive and finite,"
                f" got {self.heartbeat_period}")
        if not math.isfinite(self.conviction_threshold):
            raise ValueError("conviction_threshold must be finite")
        if self.heartbeat_period >= self.conviction_threshold:
            raise ValueError(
                f"heartbeat_period ({self.heartbeat_period}) must be"
                f" below conviction_threshold"
                f" ({self.conviction_threshold}): a peer must get at"
                " least one heartbeat per conviction window or every"
                " healthy peer is convicted")
        if self.conviction_threshold <= self.rto_min:
            raise ValueError(
                f"conviction_threshold ({self.conviction_threshold})"
                f" must exceed the RTO floor ({self.rto_min}): a"
                " conviction faster than one retransmission round"
                " declares live peers dead on ordinary jitter")


#: The calibration used throughout the reproduction: a 1998 SP with
#: 120 MHz P2SC "thin" nodes, the SP switch, and PSSP 2.3 software.
SP_1998 = MachineConfig()
SP_1998.validate()
