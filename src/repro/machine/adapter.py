"""The SP switch adapter (NIC) of one node.

The adapter sits between the node's protocol stacks (LAPI, MPL) and the
switch fabric.  Responsibilities:

* **Transmit**: a DMA engine drains a bounded TX FIFO, pacing packets at
  DMA-setup + wire-serialization + inter-packet-gap rate, then hands each
  to the switch.  Stacks obtain FIFO credits before injecting, so a
  saturated adapter back-pressures the sending thread (in virtual time).
* **Receive**: arriving packets pass a receive-DMA engine and are
  demultiplexed by protocol into per-client bounded RX FIFOs.  A full RX
  FIFO *drops* the packet, exactly the overload behaviour whose recovery
  the reliability layer's retransmission exists for.
* **Interrupts**: each client chooses interrupt or polling mode.  In
  interrupt mode an arrival notifies the client through ``on_arrival``
  exactly once per burst (interrupts are coalesced while the client has
  not re-armed, mirroring section 5.3.1's observation that back-to-back
  messages avoid extra interrupts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..errors import NetworkError
from ..sim import Channel, Semaphore
from .routing import SerialResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator, Tracer
    from .config import MachineConfig
    from .cpu import Thread
    from .packet import Packet
    from .switch import Switch

__all__ = ["Adapter", "AdapterClient"]


class AdapterClient:
    """One protocol stack's attachment to the adapter.

    Attributes
    ----------
    rx:
        Bounded FIFO of arrived packets awaiting the stack's dispatcher.
    interrupts_enabled:
        When True, ``on_arrival`` fires for packet arrivals (subject to
        coalescing via :meth:`arm_interrupt`).
    on_arrival:
        Callback invoked in simulation context (not on a CPU thread) when
        a packet arrives and the interrupt is armed.  The stack typically
        spawns its interrupt-priority dispatcher thread here.
    """

    def __init__(self, adapter: "Adapter", proto: str) -> None:
        self.adapter = adapter
        self.proto = proto
        self.rx = Channel(adapter.sim, name=f"rx{adapter.node_id}.{proto}",
                          capacity=adapter.config.adapter_rx_fifo,
                          drop_on_overflow=True)
        self.interrupts_enabled = True
        self.on_arrival: Optional[Callable[[], None]] = None
        #: Optional fast-path filter run at delivery time, before the
        #: RX FIFO.  Returns True when it consumed the packet.  Protocol
        #: stacks install their transport-ACK handler here: window
        #: bookkeeping is adapter-assisted and must neither occupy the
        #: FIFO nor raise interrupts.
        self.delivery_filter: Optional[Callable[..., bool]] = None
        self._armed = True

    # -- interrupt coalescing -------------------------------------------
    def arm_interrupt(self) -> None:
        """Re-enable arrival notification (dispatcher has gone idle).

        If packets are already queued, the notification fires
        immediately -- the check-then-arm race is closed on behalf of
        the stack.
        """
        self._armed = True
        if len(self.rx) > 0:
            self._fire()

    def _fire(self) -> None:
        if (self._armed and self.interrupts_enabled
                and self.on_arrival is not None):
            self._armed = False
            self.on_arrival()

    def _notify_arrival(self) -> None:
        self._fire()

    @property
    def pending(self) -> int:
        """Packets waiting in this client's RX FIFO."""
        return len(self.rx)


class Adapter:
    """Switch adapter of one node."""

    def __init__(self, sim: "Simulator", node_id: int,
                 config: "MachineConfig",
                 trace: Optional["Tracer"] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.trace = trace
        self.switch: Optional["Switch"] = None
        self.clients: dict[str, AdapterClient] = {}
        # TX path: credits bound the FIFO; a sim process drains it.
        self._tx_queue = Channel(sim, name=f"tx{node_id}")
        self._tx_credits = Semaphore(sim, value=config.adapter_tx_fifo,
                                     name=f"txcred{node_id}")
        self._rx_dma = SerialResource(f"rxdma{node_id}")
        sim.process(self._tx_engine(), name=f"adapter{node_id}.tx")
        #: Optional :class:`repro.faults.FaultRuntime`; set when a fault
        #: schedule is installed on the cluster.  Disables the analytic
        #: train fast path and accounts CRC discards.
        self.faults = None
        #: True while the node is fail-stop dead: every arriving or
        #: queued packet is dropped, nothing is acknowledged, and
        #: injection is refused.  Cleared by :meth:`restart`.
        self.crashed = False
        # Statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.rx_dropped = 0
        #: Packets discarded by the receive-side CRC check (payload
        #: corruption injected by a fault schedule).
        self.rx_crc_dropped = 0
        #: Packets dropped because this node was crashed: arrivals
        #: (and in-flight receive DMA) on the RX side, queued or
        #: serializing packets on the TX side.
        self.rx_crash_dropped = 0
        self.tx_crash_dropped = 0
        #: Fast-path diagnostics (kept out of :meth:`metrics` so the
        #: observability snapshot is independent of ``fast_trains``):
        #: trains collapsed by the TX engine and interior packets they
        #: carried.
        self.trains_collapsed = 0
        self.train_packets = 0
        #: SoA-lane diagnostics (also out of :meth:`metrics`): trains
        #: serialized through a struct-of-arrays record, interior
        #: packets they carried, and peeled trains that fell back to
        #: the object path because something observes interior packet
        #: identity (spans/trace) or ``soa_trains`` is off.
        self.soa_trains = 0
        self.soa_packets = 0
        self.soa_fallbacks = 0

    # ------------------------------------------------------------------
    def connect(self, switch: "Switch") -> None:
        """Attach this adapter to the fabric."""
        if self.switch is not None:
            raise NetworkError(f"adapter {self.node_id} already connected")
        self.switch = switch
        switch.attach(self)

    def attach_client(self, proto: str) -> AdapterClient:
        """Register a protocol stack; ``proto`` keys demultiplexing."""
        if proto in self.clients:
            raise NetworkError(
                f"protocol {proto!r} already attached at node"
                f" {self.node_id}")
        client = AdapterClient(self, proto)
        self.clients[proto] = client
        client.rx.on_drop = lambda pkt: self._count_drop(pkt)
        return client

    def _count_drop(self, packet: "Packet") -> None:
        self.rx_dropped += 1
        if self.trace is not None and self.trace.wants("rxdrop"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "rxdrop", repr(packet),
                           **packet.trace_fields())
        sp = self.sim.spans
        if sp is not None:
            sp.packet_dropped(packet, self.sim.now)

    def metrics(self) -> dict:
        """Counter block for the observability registry (collector).

        ``rx_crc_dropped`` appears only once nonzero (it can only fire
        under an installed fault schedule), keeping fault-free metrics
        blocks byte-identical to historical output.
        """
        out = {
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
            "rx_dropped": self.rx_dropped,
        }
        if self.rx_crc_dropped:
            out["rx_crc_dropped"] = self.rx_crc_dropped
        if self.rx_crash_dropped:
            out["rx_crash_dropped"] = self.rx_crash_dropped
        if self.tx_crash_dropped:
            out["tx_crash_dropped"] = self.tx_crash_dropped
        return out

    # ------------------------------------------------------------------
    # fail-stop crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: go dark on both paths.

        Queued TX packets are dropped (their FIFO credits returned so
        the semaphore's accounting survives a later restart), every
        client's RX FIFO is flushed, and the ``crashed`` gates in the
        deliver/enqueue/inject paths drop everything that arrives while
        dead -- including receive-DMA completions already in flight.
        The TX engine process stays parked on its empty queue, which is
        what lets :meth:`restart` resume control-packet service without
        respawning anything.
        """
        self.crashed = True
        while True:
            ok, item = self._tx_queue.try_get()
            if not ok:
                break
            self.tx_crash_dropped += 1
            if item[1]:
                self._tx_credits.post()
        for client in self.clients.values():
            while client.rx.try_get()[0]:
                self.rx_crash_dropped += 1
            # The stacks these hooks belong to are dead: no interrupt
            # may spawn a dispatcher on the crashed CPU, and no
            # delivery filter may touch dead transport state.  The
            # resilience runtime re-installs its own responder filter
            # on restart; stack hooks stay dead (fail-stop).
            client.on_arrival = None
            client.delivery_filter = None
            client._armed = True

    def restart(self) -> None:
        """Bring the machine back after a fail-stop crash.

        Machine-level only: the adapter accepts and acknowledges
        traffic again (heartbeat responders run through delivery
        filters, no CPU thread needed), but threads killed by the
        crash stay dead.  Protocol-stack state is cleared by the
        resilience runtime, not here.
        """
        self.crashed = False

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def inject(self, thread: "Thread", packet: "Packet") -> Generator:
        """Hand ``packet`` to the adapter from a CPU thread.

        Blocks the thread (releasing the CPU) while the TX FIFO is full;
        this is the virtual-time backpressure a saturated adapter exerts
        on the communication library.
        """
        if self.switch is None:
            raise NetworkError(f"adapter {self.node_id} not connected")
        packet.validate(self.config.packet_size)
        credit = self._tx_credits.wait()
        if not credit.triggered:
            yield from thread.wait(credit)
        self._tx_queue.put((packet, True))
        sp = self.sim.spans
        if sp is not None:
            sp.packet_submitted(packet, self.sim.now)

    def inject_async(self, packet: "Packet") -> bool:
        """Best-effort injection from non-thread context.

        Returns False if no credit was immediately available; callers
        treat this as a (recoverable) dropped packet.
        """
        if self.switch is None:
            raise NetworkError(f"adapter {self.node_id} not connected")
        packet.validate(self.config.packet_size)
        if self.crashed:
            self.tx_crash_dropped += 1
            return False
        if not self._tx_credits.try_wait():
            return False
        self._tx_queue.put((packet, True))
        sp = self.sim.spans
        if sp is not None:
            sp.packet_submitted(packet, self.sim.now)
        return True

    def inject_control(self, packet: "Packet") -> None:
        """Inject a protocol control packet (ACK, completion, RMW reply).

        Control packets use reserved adapter slots and never fail or
        block: this is what lets a protocol dispatcher always respond to
        traffic without taking a lock on the data path (deadlock
        freedom).  They still serialize through the TX engine, so they
        consume wire bandwidth like any other packet.
        """
        if self.switch is None:
            raise NetworkError(f"adapter {self.node_id} not connected")
        packet.validate(self.config.packet_size)
        if self.crashed:  # dead nodes do not acknowledge
            self.tx_crash_dropped += 1
            return
        self._tx_queue.put((packet, False))
        sp = self.sim.spans
        if sp is not None:
            sp.packet_submitted(packet, self.sim.now)

    def _tx_engine(self) -> Generator:
        """DMA engine: serializes packets onto the injection link.

        Each packet pays DMA setup plus wire serialization plus the
        inter-packet gap, strictly in FIFO order.  When the FIFO holds
        the interior of a contiguous packet train whose timing is
        provably deterministic (see :meth:`_peel_train`), the engine
        serializes that interior analytically: the whole per-packet
        schedule is computed in one pass and posted as bare kernel
        callbacks, then the engine sleeps to the end of the interior.
        Virtual times are bit-identical to the packet-by-packet path;
        only the host-level event machinery is cheaper.
        """
        cfg = self.config
        sim = self.sim
        while True:
            packet, took_credit = yield self._tx_queue.get()
            # Bare-float yields: pooled kernel sleeps, no Timeout
            # allocation per packet, identical timing.
            yield cfg.adapter_send_dma
            yield (packet.size / cfg.link_bandwidth
                   + cfg.packet_gap)
            self._tx_complete(packet, took_credit)
            interior = self._peel_train(packet)
            if interior:
                # The SoA lane needs interior packets to stay
                # identity-free mid-flight; span recording and tracing
                # observe every hop, so they force the object path
                # (fault schedules and multipath never reach here --
                # _peel_train already refused the train).
                if (cfg.soa_trains and sim.spans is None
                        and self.trace is None):
                    end = self._schedule_train_soa(interior)
                else:
                    self.soa_fallbacks += 1
                    end = self._schedule_train(interior)
                # The train's last packet stays in the FIFO and goes
                # through the normal path, so message boundaries (final
                # delivery, counters, interrupt re-arm) are produced by
                # exactly the same code as without the fast path.
                yield sim.timeout_at(end)

    def _tx_complete(self, packet: "Packet", took_credit: bool) -> None:
        """TX bookkeeping at a packet's serialization-complete instant."""
        if self.crashed:
            # The node died while this packet was on the DMA engine:
            # it never reaches the wire.
            self.tx_crash_dropped += 1
            if took_credit:
                self._tx_credits.post()
            return
        self.packets_sent += 1
        if self.trace is not None and self.trace.wants("tx"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "tx", repr(packet),
                           **packet.trace_fields())
        sp = self.sim.spans
        if sp is not None:
            sp.packet_tx_done(packet, self.sim.now)
        self.switch.route(packet)
        if took_credit:
            self._tx_credits.post()

    def _tx_train_step(self, item: tuple) -> None:
        """One interior train packet completes TX (kernel callback)."""
        self._tx_complete(item[0], item[1])

    def _peel_train(self, head: "Packet") -> Optional[list]:
        """Pop the interior of a deterministic packet train off the FIFO.

        A train is a FIFO prefix of packets that continue ``head``: same
        protocol/kind/destination, same message, contiguous offsets.
        The interior (everything but the train's last packet, which is
        left queued) may be serialized analytically only when nothing
        can perturb per-packet timing:

        * ``fast_trains`` enabled (``MachineConfig``),
        * no fabric loss (a loss draw would consume RNG per packet),
        * a single candidate route (multipath picks routes randomly),
        * no route jitter on that route,
        * contiguous same-message data packets (vector/scattered
          transfers fall back to packet-by-packet).

        Returns the popped ``(packet, took_credit)`` interior items, or
        ``None`` when the fast path must not engage.
        """
        cfg = self.config
        if (not cfg.fast_trains or cfg.loss_rate > 0.0
                or self.faults is not None):
            return None
        hinfo = head.info
        msg_key = hinfo.get("msg_id", hinfo.get("msg_seq"))
        if msg_key is None or "offset" not in hinfo or not head.payload:
            return None
        candidates = self.switch.route_candidates(self.node_id, head.dst)
        if len(candidates) != 1:
            return None
        if candidates[0].crosses_core and cfg.route_jitter > 0.0:
            return None
        run = []
        prev = head
        for item in self._tx_queue.iter_items():
            pkt = item[0]
            if (pkt.dst != head.dst or pkt.proto != head.proto
                    or pkt.kind != head.kind or not pkt.payload):
                break
            pinfo = pkt.info
            if (pinfo.get("msg_id", pinfo.get("msg_seq")) != msg_key
                    or pinfo.get("offset") !=
                    prev.info["offset"] + len(prev.payload)):
                break
            run.append(item)
            prev = pkt
        if len(run) < 2:
            return None
        interior = run[:-1]
        for _ in interior:
            self._tx_queue.try_get()
        return interior

    def _schedule_train(self, interior: list) -> float:
        """Post the interior's per-packet TX completions; returns the
        virtual time at which the interior has fully serialized.

        The accumulation mirrors the two timeouts of the normal path
        operation-for-operation so every completion lands on the same
        float the packet-by-packet engine would produce.
        """
        cfg = self.config
        sim = self.sim
        dma = cfg.adapter_send_dma
        bw = cfg.link_bandwidth
        gap = cfg.packet_gap
        t = sim.now
        for item in interior:
            t = t + dma
            t = t + (item[0].size / bw + gap)
            sim.call_at(t, self._tx_train_step, item)
        self.trains_collapsed += 1
        self.train_packets += len(interior)
        return t

    def _schedule_train_soa(self, interior: list) -> float:
        """Serialize the interior through a struct-of-arrays record.

        Same schedule as :meth:`_schedule_train` -- every interior
        packet's TX completion is posted here, at peel time, with the
        identical float accumulation, so the kernel's sequence stream
        and all instants are byte-identical.  What changes is the work
        *per firing*: stage callbacks index the train's columns (see
        :mod:`repro.machine.train`) instead of routing each packet
        through the generic per-packet code.
        """
        cfg = self.config
        sim = self.sim
        head = interior[0][0]
        switch = self.switch
        route = switch.route_candidates(self.node_id, head.dst)[0]
        dst_adapter = switch._adapters[head.dst]
        client = (dst_adapter.clients.get(head.proto)
                  if dst_adapter is not None else None)
        if (client is None or dst_adapter.trace is not None
                or switch.trace is not None):
            # Destination-side observers (or a missing client, which
            # the object path reports as the proper NetworkError).
            self.soa_fallbacks += 1
            return self._schedule_train(interior)
        pools = sim.pools
        if pools is not None:
            train = pools.trains.acquire()
        else:
            from .train import PacketTrain
            train = PacketTrain()
        train.begin(self, route, dst_adapter, client)
        dma = cfg.adapter_send_dma
        bw = cfg.link_bandwidth
        gap = cfg.packet_gap
        when = train.when
        transfers = train.transfers
        seqs = train.seqs
        sizes = train.sizes
        credits = train.credits
        tx_step = train._tx_step
        call_at = sim.call_at
        nbytes = 0
        t = sim.now
        for pkt, took_credit in interior:
            size = pkt.size
            # Mirrors _schedule_train operation-for-operation.
            t = t + dma
            t = t + (size / bw + gap)
            call_at(t, tx_step, None)
            when.append(t)
            transfers.append(size / bw)
            seqs.append(pkt.seq)
            sizes.append(size)
            credits.append(1 if took_credit else 0)
            nbytes += size
        train.pkts = tuple(item[0] for item in interior)
        train.n = len(interior)
        train.bytes_total = nbytes
        self.trains_collapsed += 1
        self.train_packets += train.n
        self.soa_trains += 1
        self.soa_packets += train.n
        return t

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def deliver(self, packet: "Packet") -> None:
        """Called by the switch when a packet arrives at this node."""
        if self.crashed:
            self._crash_drop_rx(packet)
            return
        now = self.sim.now
        sp = self.sim.spans
        if sp is not None:
            sp.packet_delivered(packet, now)
        finish = self._rx_dma.occupy(now, self.config.adapter_recv_dma)
        # Bare-callback completion (no Timeout/name/closure); the
        # now + (finish - now) form matches the Timeout it replaced so
        # completion times stay bit-identical.
        self.sim.call_at(now + (finish - now), self._enqueue, packet)

    def deliver_corrupt(self, packet: "Packet") -> None:
        """A packet that arrived with its payload corrupted in flight.

        It consumed wire bandwidth and receive-DMA like any arrival but
        fails the CRC check at DMA completion and is discarded before
        demultiplexing -- the reliability layer's retransmission
        recovers it, exactly as for a fabric drop, except the waste is
        maximal (the whole wire path was paid for nothing).
        """
        if self.crashed:
            self._crash_drop_rx(packet)
            return
        now = self.sim.now
        sp = self.sim.spans
        if sp is not None:
            sp.packet_delivered(packet, now)
        finish = self._rx_dma.occupy(now, self.config.adapter_recv_dma)
        self.sim.call_at(now + (finish - now), self._discard_corrupt,
                         packet)

    def _discard_corrupt(self, packet: "Packet") -> None:
        """CRC check failed at receive-DMA completion: drop the packet."""
        self.rx_crc_dropped += 1
        if self.faults is not None:
            self.faults.record_crc(packet, self.sim.now)
        if self.trace is not None and self.trace.wants("rxdrop"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "rxdrop", f"{packet!r} [crc]", crc=True,
                           **packet.trace_fields())
        sp = self.sim.spans
        if sp is not None:
            sp.packet_corrupted(packet, self.sim.now)

    def _crash_drop_rx(self, packet: "Packet") -> None:
        """Drop an arrival (or in-flight receive DMA) on a dead node."""
        self.rx_crash_dropped += 1
        if self.trace is not None and self.trace.wants("rxdrop"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "rxdrop", f"{packet!r} [crashed]",
                           crashed=True, **packet.trace_fields())
        sp = self.sim.spans
        if sp is not None:
            sp.packet_dropped(packet, self.sim.now)

    def _enqueue(self, packet: "Packet") -> None:
        if self.crashed:
            # Receive DMA was in flight when the node died.
            self._crash_drop_rx(packet)
            return
        client = self.clients.get(packet.proto)
        if client is None:
            raise NetworkError(
                f"node {self.node_id}: packet for unattached protocol"
                f" {packet.proto!r}")
        self.packets_received += 1
        if self.trace is not None and self.trace.wants("rx"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "rx", repr(packet), **packet.trace_fields())
        sp = self.sim.spans
        if sp is not None:
            sp.packet_enqueued(packet, self.sim.now)
        if (client.delivery_filter is not None
                and client.delivery_filter(packet)):
            return
        if client.rx.put(packet):
            client._notify_arrival()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Adapter node={self.node_id} sent={self.packets_sent}"
                f" recv={self.packets_received} dropped={self.rx_dropped}>")
