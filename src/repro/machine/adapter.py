"""The SP switch adapter (NIC) of one node.

The adapter sits between the node's protocol stacks (LAPI, MPL) and the
switch fabric.  Responsibilities:

* **Transmit**: a DMA engine drains a bounded TX FIFO, pacing packets at
  DMA-setup + wire-serialization + inter-packet-gap rate, then hands each
  to the switch.  Stacks obtain FIFO credits before injecting, so a
  saturated adapter back-pressures the sending thread (in virtual time).
* **Receive**: arriving packets pass a receive-DMA engine and are
  demultiplexed by protocol into per-client bounded RX FIFOs.  A full RX
  FIFO *drops* the packet, exactly the overload behaviour whose recovery
  the reliability layer's retransmission exists for.
* **Interrupts**: each client chooses interrupt or polling mode.  In
  interrupt mode an arrival notifies the client through ``on_arrival``
  exactly once per burst (interrupts are coalesced while the client has
  not re-armed, mirroring section 5.3.1's observation that back-to-back
  messages avoid extra interrupts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..errors import NetworkError
from ..sim import Channel, Semaphore
from .routing import SerialResource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator, Tracer
    from .config import MachineConfig
    from .cpu import Thread
    from .packet import Packet
    from .switch import Switch

__all__ = ["Adapter", "AdapterClient"]


class AdapterClient:
    """One protocol stack's attachment to the adapter.

    Attributes
    ----------
    rx:
        Bounded FIFO of arrived packets awaiting the stack's dispatcher.
    interrupts_enabled:
        When True, ``on_arrival`` fires for packet arrivals (subject to
        coalescing via :meth:`arm_interrupt`).
    on_arrival:
        Callback invoked in simulation context (not on a CPU thread) when
        a packet arrives and the interrupt is armed.  The stack typically
        spawns its interrupt-priority dispatcher thread here.
    """

    def __init__(self, adapter: "Adapter", proto: str) -> None:
        self.adapter = adapter
        self.proto = proto
        self.rx = Channel(adapter.sim, name=f"rx{adapter.node_id}.{proto}",
                          capacity=adapter.config.adapter_rx_fifo,
                          drop_on_overflow=True)
        self.interrupts_enabled = True
        self.on_arrival: Optional[Callable[[], None]] = None
        #: Optional fast-path filter run at delivery time, before the
        #: RX FIFO.  Returns True when it consumed the packet.  Protocol
        #: stacks install their transport-ACK handler here: window
        #: bookkeeping is adapter-assisted and must neither occupy the
        #: FIFO nor raise interrupts.
        self.delivery_filter: Optional[Callable[..., bool]] = None
        self._armed = True

    # -- interrupt coalescing -------------------------------------------
    def arm_interrupt(self) -> None:
        """Re-enable arrival notification (dispatcher has gone idle).

        If packets are already queued, the notification fires
        immediately -- the check-then-arm race is closed on behalf of
        the stack.
        """
        self._armed = True
        if len(self.rx) > 0:
            self._fire()

    def _fire(self) -> None:
        if (self._armed and self.interrupts_enabled
                and self.on_arrival is not None):
            self._armed = False
            self.on_arrival()

    def _notify_arrival(self) -> None:
        self._fire()

    @property
    def pending(self) -> int:
        """Packets waiting in this client's RX FIFO."""
        return len(self.rx)


class Adapter:
    """Switch adapter of one node."""

    def __init__(self, sim: "Simulator", node_id: int,
                 config: "MachineConfig",
                 trace: Optional["Tracer"] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.trace = trace
        self.switch: Optional["Switch"] = None
        self.clients: dict[str, AdapterClient] = {}
        # TX path: credits bound the FIFO; a sim process drains it.
        self._tx_queue = Channel(sim, name=f"tx{node_id}")
        self._tx_credits = Semaphore(sim, value=config.adapter_tx_fifo,
                                     name=f"txcred{node_id}")
        self._rx_dma = SerialResource(f"rxdma{node_id}")
        sim.process(self._tx_engine(), name=f"adapter{node_id}.tx")
        # Statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.rx_dropped = 0

    # ------------------------------------------------------------------
    def connect(self, switch: "Switch") -> None:
        """Attach this adapter to the fabric."""
        if self.switch is not None:
            raise NetworkError(f"adapter {self.node_id} already connected")
        self.switch = switch
        switch.attach(self)

    def attach_client(self, proto: str) -> AdapterClient:
        """Register a protocol stack; ``proto`` keys demultiplexing."""
        if proto in self.clients:
            raise NetworkError(
                f"protocol {proto!r} already attached at node"
                f" {self.node_id}")
        client = AdapterClient(self, proto)
        self.clients[proto] = client
        client.rx.on_drop = lambda pkt: self._count_drop(pkt)
        return client

    def _count_drop(self, packet: "Packet") -> None:
        self.rx_dropped += 1
        if self.trace is not None and self.trace.wants("rxdrop"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "rxdrop", repr(packet),
                           **packet.trace_fields())

    def metrics(self) -> dict:
        """Counter block for the observability registry (collector)."""
        return {
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
            "rx_dropped": self.rx_dropped,
        }

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def inject(self, thread: "Thread", packet: "Packet") -> Generator:
        """Hand ``packet`` to the adapter from a CPU thread.

        Blocks the thread (releasing the CPU) while the TX FIFO is full;
        this is the virtual-time backpressure a saturated adapter exerts
        on the communication library.
        """
        if self.switch is None:
            raise NetworkError(f"adapter {self.node_id} not connected")
        packet.validate(self.config.packet_size)
        credit = self._tx_credits.wait()
        if not credit.triggered:
            yield from thread.wait(credit)
        self._tx_queue.put((packet, True))

    def inject_async(self, packet: "Packet") -> bool:
        """Best-effort injection from non-thread context.

        Returns False if no credit was immediately available; callers
        treat this as a (recoverable) dropped packet.
        """
        if self.switch is None:
            raise NetworkError(f"adapter {self.node_id} not connected")
        packet.validate(self.config.packet_size)
        if not self._tx_credits.try_wait():
            return False
        self._tx_queue.put((packet, True))
        return True

    def inject_control(self, packet: "Packet") -> None:
        """Inject a protocol control packet (ACK, completion, RMW reply).

        Control packets use reserved adapter slots and never fail or
        block: this is what lets a protocol dispatcher always respond to
        traffic without taking a lock on the data path (deadlock
        freedom).  They still serialize through the TX engine, so they
        consume wire bandwidth like any other packet.
        """
        if self.switch is None:
            raise NetworkError(f"adapter {self.node_id} not connected")
        packet.validate(self.config.packet_size)
        self._tx_queue.put((packet, False))

    def _tx_engine(self) -> Generator:
        """DMA engine: serializes packets onto the injection link."""
        cfg = self.config
        while True:
            packet, took_credit = yield self._tx_queue.get()
            yield self.sim.timeout(cfg.adapter_send_dma)
            yield self.sim.timeout(packet.size / cfg.link_bandwidth
                                   + cfg.packet_gap)
            self.packets_sent += 1
            if self.trace is not None and self.trace.wants("tx"):
                self.trace.log(self.sim.now, f"adapter{self.node_id}",
                               "tx", repr(packet),
                               **packet.trace_fields())
            self.switch.route(packet)
            if took_credit:
                self._tx_credits.post()

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def deliver(self, packet: "Packet") -> None:
        """Called by the switch when a packet arrives at this node."""
        finish = self._rx_dma.occupy(self.sim.now,
                                     self.config.adapter_recv_dma)
        ev = self.sim.timeout(finish - self.sim.now,
                              name=f"rxdma:{packet.uid}")
        ev.callbacks.append(lambda _ev, p=packet: self._enqueue(p))

    def _enqueue(self, packet: "Packet") -> None:
        client = self.clients.get(packet.proto)
        if client is None:
            raise NetworkError(
                f"node {self.node_id}: packet for unattached protocol"
                f" {packet.proto!r}")
        self.packets_received += 1
        if self.trace is not None and self.trace.wants("rx"):
            self.trace.log(self.sim.now, f"adapter{self.node_id}",
                           "rx", repr(packet), **packet.trace_fields())
        if (client.delivery_filter is not None
                and client.delivery_filter(packet)):
            return
        if client.rx.put(packet):
            client._notify_arrival()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Adapter node={self.node_id} sent={self.packets_sent}"
                f" recv={self.packets_received} dropped={self.rx_dropped}>")
