"""Struct-of-arrays packet trains: the adapter's bulk TX fast lane.

PR 2's ``fast_trains`` collapsed a deterministic train's *timer
machinery* (one analytic schedule instead of generator round trips per
packet); this module additionally collapses its *per-packet object
work*.  A peeled train interior becomes one :class:`PacketTrain` record
holding parallel ``array``-module columns (seq, size, wire/occupy
times, credit flags) plus the identity column -- the tuple of real
:class:`~repro.machine.packet.Packet` objects, which already exist
because the reliability layer registered them for retransmission.  The
three per-packet pipeline stages (TX-complete -> fabric arrival ->
receive-DMA completion) fire as bound-method kernel callbacks advancing
per-stage cursors into the columns, instead of three generic
callback/closure hops through ``Adapter._tx_complete``,
``Switch.route`` and ``Adapter._enqueue``.

The contract is the same as every fast path in this repo: **kernel
events are neither added, removed, nor moved**.  Each interior packet
still produces exactly three firings at bit-identical instants (the
float accumulations mirror the object path operation-for-operation),
link and receive-DMA occupancy is charged at fire time against the live
watermarks (never precomputed -- cross traffic on shared links must
interleave identically), and the RX FIFO sees the same real ``Packet``
at the same instant.  Real packets are the *identity boundary*: span
tracing, tracing, fault draws, and multipath all need per-packet
identity mid-flight, so the adapter falls back to the object path
whenever any of them is active (see ``Adapter._tx_engine``).

Train records are recycled through a per-cluster
:class:`~repro.machine.pool.TrainPool` (reached as ``sim.pools``), so
the steady state of a bulk transfer allocates nothing per train.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator
    from .adapter import Adapter, AdapterClient
    from .routing import Route

__all__ = ["PacketTrain"]


class PacketTrain:
    """Columns and stage cursors of one in-flight train interior.

    Built by ``Adapter._schedule_train_soa``; the three stage methods
    are kernel callbacks.  Stage cursors are plain running indices:
    within one train, TX completions fire in schedule order, arrivals
    inherit that order (serial link occupancy produces strictly
    increasing finish times), and so do receive-DMA completions, so no
    per-firing identity lookup is ever needed.
    """

    __slots__ = ("sim", "adapter", "dst_adapter", "pkts", "when",
                 "transfers", "seqs", "sizes", "credits", "n", "links",
                 "fixed_latency", "tx_credits", "rx_dma", "recv_dma",
                 "client", "bytes_total", "_tx_i", "_dma_i", "pooled")

    def __init__(self) -> None:
        # Parallel columns (filled by ``begin``; reused across trains).
        self.when = array("d")        # scheduled TX-complete instants
        self.transfers = array("d")   # per-packet link occupy durations
        self.seqs = array("q")        # transport sequence numbers
        self.sizes = array("q")       # wire sizes in bytes
        self.credits = array("b")     # 1 = TX credit to return
        self.pkts: tuple = ()         # identity column (real Packets)
        self.n = 0
        self.bytes_total = 0
        # Route/destination constants (identical for every packet of a
        # deterministic train -- that is what made it peelable).
        self.sim: Optional["Simulator"] = None
        self.adapter: Optional["Adapter"] = None
        self.dst_adapter: Optional["Adapter"] = None
        self.links: tuple = ()
        self.fixed_latency = 0.0
        self.tx_credits = None
        self.rx_dma = None
        self.recv_dma = 0.0
        self.client: Optional["AdapterClient"] = None
        # Stage cursors.
        self._tx_i = 0
        self._dma_i = 0
        #: True when this record came from (and returns to) a TrainPool.
        self.pooled = False

    # ------------------------------------------------------------------
    def begin(self, adapter: "Adapter", route: "Route",
              dst_adapter: "Adapter", client: "AdapterClient") -> None:
        """Reset cursors and bind the train's per-run constants."""
        self.sim = adapter.sim
        self.adapter = adapter
        self.dst_adapter = dst_adapter
        self.links = route.links
        self.fixed_latency = route.fixed_latency
        self.tx_credits = adapter._tx_credits
        self.rx_dma = dst_adapter._rx_dma
        self.recv_dma = dst_adapter.config.adapter_recv_dma
        self.client = client
        del self.when[:]
        del self.transfers[:]
        del self.seqs[:]
        del self.sizes[:]
        del self.credits[:]
        self.pkts = ()
        self.n = 0
        self.bytes_total = 0
        self._tx_i = 0
        self._dma_i = 0

    # ------------------------------------------------------------------
    # stage 1: TX serialization complete (mirrors Adapter._tx_complete
    # + Switch.route fast branch)
    # ------------------------------------------------------------------
    def _tx_step(self, _arg=None) -> None:
        i = self._tx_i
        self._tx_i = i + 1
        sim = self.sim
        now = sim._now
        transfer = self.transfers[i]
        t = now
        for link in self.links:
            t = link.occupy(t, transfer)
        t += self.fixed_latency
        # now + (t - now) mirrors the object path's float round trip.
        delay = t - now
        sim.call_at(now + delay, self._arrive_step, None)
        if self.credits[i]:
            self.tx_credits.post()

    # ------------------------------------------------------------------
    # stage 2: fabric arrival (mirrors Adapter.deliver)
    # ------------------------------------------------------------------
    def _arrive_step(self, _arg=None) -> None:
        sim = self.sim
        now = sim._now
        finish = self.rx_dma.occupy(now, self.recv_dma)
        sim.call_at(now + (finish - now), self._dma_step, None)

    # ------------------------------------------------------------------
    # stage 3: receive-DMA complete (mirrors Adapter._enqueue); the
    # identity boundary -- the real Packet enters the RX FIFO here.
    # ------------------------------------------------------------------
    def _dma_step(self, _arg=None) -> None:
        i = self._dma_i
        self._dma_i = i + 1
        pkt = self.pkts[i]
        client = self.client
        filt = client.delivery_filter
        if filt is None or not filt(pkt):
            if client.rx.put(pkt):
                client._notify_arrival()
        if self._dma_i == self.n:
            self._finish()

    def _finish(self) -> None:
        """Last receive-DMA completion: flush batched counters and
        recycle the record.  Counter totals land exactly where the
        object path would have left them; nothing observes them between
        the interior's first firing and its last."""
        adapter = self.adapter
        n = self.n
        adapter.packets_sent += n
        self.dst_adapter.packets_received += n
        switch = adapter.switch
        switch.packets_routed += n
        switch.bytes_routed += self.bytes_total
        pools = self.sim.pools
        if pools is not None and self.pooled:
            pools.trains.release(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PacketTrain n={self.n} tx={self._tx_i}"
                f" dma={self._dma_i}>")
