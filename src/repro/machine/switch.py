"""The SP switch: routes packets between adapters.

The switch owns the :class:`~repro.machine.routing.Topology`, selects a
route per packet (randomly among the disjoint middle-stage routes for
cross-group traffic -- the source of out-of-order delivery), charges link
occupancy along the route, injects optional jitter and loss, and hands
the packet to the destination adapter at its computed arrival time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from heapq import nlargest
from operator import itemgetter

from ..errors import NetworkError
from .routing import Route, build_topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import RngRegistry, Simulator, Tracer
    from .adapter import Adapter
    from .config import MachineConfig
    from .packet import Packet

__all__ = ["Switch"]


class Switch:
    """Multistage packet switch connecting all node adapters."""

    def __init__(self, sim: "Simulator", nnodes: int,
                 config: "MachineConfig", rng: "RngRegistry",
                 trace: Optional["Tracer"] = None) -> None:
        self.sim = sim
        self.config = config
        self.topology = build_topology(nnodes, config)
        self._adapters: list[Optional["Adapter"]] = [None] * nnodes
        self._route_rng = rng.stream("switch.route")
        self._loss_rng = rng.stream("switch.loss")
        self.trace = trace
        #: Optional :class:`repro.faults.FaultRuntime` consulted per
        #: routed packet.  None (the default) keeps the hot path at a
        #: single attribute test.
        self.faults = None
        # Config and topology are immutable per run, so candidate routes
        # per (src, dst) pair are computed once; the per-packet path is
        # a dict hit instead of Route/list construction.  With
        # ``route_cache_entries`` set the cache is bounded: the oldest
        # pair is evicted on overflow (dict preserves insertion order),
        # capping memory at O(bound) instead of O(nodes^2) under
        # all-to-all traffic at --scale node counts.
        self._route_cache: dict[tuple[int, int], tuple["Route", ...]] = {}
        self._route_cache_limit = config.route_cache_entries
        #: When set, :meth:`metrics` emits only the ``top_links``
        #: busiest per-link utilization gauges instead of all of them
        #: (None, the default, keeps the full historical block).  Large
        #: clusters set this so a metrics snapshot stays O(top_links)
        #: instead of O(links).
        self.metrics_top_links: Optional[int] = None
        # Statistics
        self.packets_routed = 0
        self.packets_lost = 0
        self.bytes_routed = 0

    # ------------------------------------------------------------------
    def attach(self, adapter: "Adapter") -> None:
        """Register ``adapter`` at its node's port."""
        nid = adapter.node_id
        if not (0 <= nid < len(self._adapters)):
            raise NetworkError(f"node id {nid} outside switch")
        if self._adapters[nid] is not None:
            raise NetworkError(f"node {nid} already attached")
        self._adapters[nid] = adapter

    def route_candidates(self, src: int, dst: int) -> tuple["Route", ...]:
        """Candidate routes for a node pair, from the lazy cache."""
        cache = self._route_cache
        key = (src, dst)
        routes = cache.get(key)
        if routes is None:
            routes = tuple(self.topology.routes(src, dst, self.config))
            limit = self._route_cache_limit
            if limit is not None and len(cache) >= limit:
                del cache[next(iter(cache))]
            cache[key] = routes
        return routes

    def route(self, packet: "Packet") -> None:
        """Send ``packet`` through the fabric (called at injection time).

        Link occupancy is charged immediately along the chosen route
        (cut-through with implicit FIFO queueing per link); delivery to
        the destination adapter is scheduled at the computed arrival
        time.  Lost packets simply never arrive -- recovering them is the
        reliability layer's job.

        Wire-format validation happens once, at adapter injection
        (``inject`` / ``inject_async`` / ``inject_control``); the switch
        trusts what the adapters hand it.
        """
        dst_adapter = self._adapters[packet.dst]
        if dst_adapter is None:
            raise NetworkError(f"packet to unattached node {packet.dst}")

        cfg = self.config
        if cfg.loss_rate > 0.0 and self._loss_rng.random() < cfg.loss_rate:
            self.packets_lost += 1
            if self.trace is not None and self.trace.wants("loss"):
                self.trace.log(self.sim.now, "switch", "loss",
                               repr(packet), **packet.trace_fields())
            sp = self.sim.spans
            if sp is not None:
                sp.packet_lost(packet, self.sim.now)
            return

        corrupt = False
        if self.faults is not None:
            verdict = self.faults.judge(packet, self.sim.now)
            if verdict == "corrupt":
                # Corrupted packets traverse the whole wire (consuming
                # link occupancy below) and die at the destination
                # adapter's CRC check -- the worst-case waste mode.
                corrupt = True
            elif verdict is not None:
                self.packets_lost += 1
                self.faults.record_drop(verdict, packet, self.sim.now)
                if self.trace is not None and self.trace.wants("loss"):
                    self.trace.log(self.sim.now, "switch", "loss",
                                   f"{packet!r} [{verdict}]",
                                   fault=verdict,
                                   **packet.trace_fields())
                sp = self.sim.spans
                if sp is not None:
                    sp.packet_lost(packet, self.sim.now)
                return

        candidates = self.route_candidates(packet.src, packet.dst)
        if len(candidates) == 1:
            # Same-group fast path: single deterministic route, no RNG
            # draw, no allocation beyond the delivery heap entry.
            route = candidates[0]
        else:
            route = candidates[int(self._route_rng.integers(
                0, len(candidates)))]

        transfer = packet.size / cfg.link_bandwidth
        sim = self.sim
        now = sim._now
        t = now
        for link in route.links:
            t = link.occupy(t, transfer)
        t += route.fixed_latency
        if route.crosses_core and cfg.route_jitter > 0.0:
            t += float(self._route_rng.random()) * cfg.route_jitter

        self.packets_routed += 1
        self.bytes_routed += packet.size
        if self.trace is not None and self.trace.wants("route"):
            self.trace.log(now, "switch", "route",
                           f"{packet!r} arrives t={t:.3f}",
                           arrival_us=round(t, 6),
                           **packet.trace_fields())
        # Bare-callback delivery: no Timeout, no name, no closure.  The
        # now + (t - now) round trip mirrors the Timeout it replaced so
        # delivery times stay bit-identical to the historical path.
        delay = t - now
        deliver = (dst_adapter.deliver_corrupt if corrupt
                   else dst_adapter.deliver)
        sim.call_at(now + delay, deliver, packet)

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Counter block for the observability registry (collector).

        Includes per-link utilization gauges (``util.<link>``), the
        fabric-level view Figures 2-4 ultimately derive from.  With
        :attr:`metrics_top_links` set, only the busiest ``k`` links are
        emitted (sorted by name within the sample so the block stays
        deterministic); the default emits every link, byte-identical to
        the historical output.
        """
        out = {
            "packets_routed": self.packets_routed,
            "packets_lost": self.packets_lost,
            "bytes_routed": self.bytes_routed,
        }
        k = self.metrics_top_links
        if k is None:
            for name, util in sorted(self.link_utilization().items()):
                out[f"util.{name}"] = round(util, 6)
        else:
            for name, util in sorted(self.busiest_links(k)):
                out[f"util.{name}"] = round(util, 6)
        return out

    # ------------------------------------------------------------------
    def link_utilization(self, horizon: Optional[float] = None) -> dict:
        """Utilization snapshot of every link (diagnostics)."""
        h = horizon if horizon is not None else self.sim.now
        return {ln.name: ln.utilization(h)
                for ln in self.topology.iter_links()}

    def busiest_links(self, k: int,
                      horizon: Optional[float] = None
                      ) -> list[tuple[str, float]]:
        """The ``k`` busiest links as ``(name, utilization)`` pairs.

        Streams over the links (O(links) time, O(k) extra space --
        never materializes the full utilization dict) and matches a
        descending stable sort of the full snapshot exactly:
        ``heapq.nlargest`` keeps earlier-yielded links ahead on ties,
        as the stable sort does.
        """
        h = horizon if horizon is not None else self.sim.now
        return nlargest(k, ((ln.name, ln.utilization(h))
                            for ln in self.topology.iter_links()),
                        key=itemgetter(1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Switch nodes={len(self._adapters)}"
                f" routed={self.packets_routed} lost={self.packets_lost}>")
