"""Link occupancy and path construction for the SP switch fabric.

The switch is cut-through: a packet's head moves hop to hop with a small
per-hop latency while each traversed link stays busy for the packet's
serialization time.  :class:`SerialResource` captures exactly that with
O(1) bookkeeping -- a ``busy_until`` watermark -- instead of a simulation
process per link, which keeps multi-megabyte transfers (thousands of
packets) cheap to simulate.

Topology
--------
The model follows the SP switch structurally: nodes attach in groups to
an *edge* switch; edge switches interconnect through ``mid_count``
independent *middle* switches.  Traffic within a group crosses only its
edge switch (single path, therefore in-order); traffic between groups
picks one of ``mid_count`` disjoint routes per packet, which is what
makes concurrent multi-packet messages arrive out of order -- the
property LAPI's two-part handlers exist to tolerate (section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import MachineConfig

__all__ = ["SerialResource", "Route", "Topology"]


class SerialResource:
    """A FIFO resource serving one item at a time (a link, a DMA engine).

    :meth:`occupy` returns the completion time of a request arriving at
    ``now`` needing ``duration`` of service; requests queue implicitly by
    pushing the ``busy_until`` watermark.
    """

    __slots__ = ("name", "busy_until", "total_busy", "served")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_until = 0.0
        #: Aggregate service time, for utilization accounting.
        self.total_busy = 0.0
        self.served = 0

    def occupy(self, now: float, duration: float) -> float:
        """Reserve the resource; returns when service completes."""
        if duration < 0:
            raise NetworkError(f"negative service time on {self.name}")
        start = now if now > self.busy_until else self.busy_until
        finish = start + duration
        self.busy_until = finish
        self.total_busy += duration
        self.served += 1
        return finish

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource was busy.

        Service already charged past the horizon (``busy_until`` beyond
        it -- the backlog is contiguous and ends there) has not elapsed
        yet and must not count against ``[0, horizon]``; without the
        subtraction the over-report would hide behind the 1.0 clamp.
        """
        if horizon <= 0:
            return 0.0
        elapsed_busy = self.total_busy
        if self.busy_until > horizon:
            elapsed_busy -= self.busy_until - horizon
        if elapsed_busy <= 0.0:
            return 0.0
        return min(1.0, elapsed_busy / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SerialResource {self.name} busy_until={self.busy_until:.3f}>"


@dataclass(frozen=True)
class Route:
    """An ordered list of links a packet traverses, plus fixed latency."""

    links: tuple[SerialResource, ...]
    #: Sum of per-hop and wire latencies along the route.
    fixed_latency: float
    #: True if the route crosses the middle stage (eligible for jitter).
    crosses_core: bool


@dataclass
class Topology:
    """Edge/middle switch topology for ``nnodes`` nodes.

    Attributes
    ----------
    up, down:
        Per-node injection (node to edge switch) and delivery (edge
        switch to node) links.
    edge_to_mid, mid_to_edge:
        ``[edge][mid]`` link matrices for the core stage.
    """

    nnodes: int
    group_size: int
    mid_count: int
    up: list[SerialResource] = field(default_factory=list)
    down: list[SerialResource] = field(default_factory=list)
    edge_to_mid: list[list[SerialResource]] = field(default_factory=list)
    mid_to_edge: list[list[SerialResource]] = field(default_factory=list)

    @classmethod
    def build(cls, nnodes: int, config: "MachineConfig") -> "Topology":
        """Construct the link graph for ``nnodes`` nodes."""
        if nnodes < 1:
            raise NetworkError("topology needs at least one node")
        topo = cls(nnodes=nnodes, group_size=config.switch_group_size,
                   mid_count=config.switch_mid_count)
        ngroups = (nnodes + topo.group_size - 1) // topo.group_size
        for n in range(nnodes):
            topo.up.append(SerialResource(f"up{n}"))
            topo.down.append(SerialResource(f"down{n}"))
        for e in range(ngroups):
            topo.edge_to_mid.append(
                [SerialResource(f"e{e}m{m}") for m in range(topo.mid_count)])
            topo.mid_to_edge.append(
                [SerialResource(f"m{m}e{e}") for m in range(topo.mid_count)])
        return topo

    @property
    def ngroups(self) -> int:
        return len(self.edge_to_mid)

    def group_of(self, node: int) -> int:
        """Edge switch a node attaches to."""
        if not (0 <= node < self.nnodes):
            raise NetworkError(f"node {node} outside topology")
        return node // self.group_size

    def routes(self, src: int, dst: int,
               config: "MachineConfig") -> list[Route]:
        """All candidate routes from ``src`` to ``dst``.

        Same-group pairs have a single route through their edge switch;
        cross-group pairs have ``mid_count`` disjoint routes.
        """
        if src == dst:
            raise NetworkError("no route from a node to itself")
        gs, gd = self.group_of(src), self.group_of(dst)
        wire2 = 2 * config.wire_latency
        if gs == gd:
            # node -> edge switch -> node: one switch traversal.
            return [Route(links=(self.up[src], self.down[dst]),
                          fixed_latency=wire2 + config.hop_latency,
                          crosses_core=False)]
        routes = []
        for m in range(self.mid_count):
            links = (self.up[src], self.edge_to_mid[gs][m],
                     self.mid_to_edge[gd][m], self.down[dst])
            routes.append(Route(
                links=links,
                fixed_latency=wire2 + 3 * config.hop_latency,
                crosses_core=True))
        return routes
