"""Link occupancy and path construction for the SP switch fabric.

The switch is cut-through: a packet's head moves hop to hop with a small
per-hop latency while each traversed link stays busy for the packet's
serialization time.  :class:`SerialResource` captures exactly that with
O(1) bookkeeping -- a ``busy_until`` watermark -- instead of a simulation
process per link, which keeps multi-megabyte transfers (thousands of
packets) cheap to simulate.

Topology
--------
The model follows the SP switch structurally: nodes attach in groups to
an *edge* switch; edge switches interconnect through ``mid_count``
independent *middle* switches.  Traffic within a group crosses only its
edge switch (single path, therefore in-order); traffic between groups
picks one of ``mid_count`` disjoint routes per packet, which is what
makes concurrent multi-packet messages arrive out of order -- the
property LAPI's two-part handlers exist to tolerate (section 2.1).

Beyond the paper's machine, two further fabrics let the ``--scale``
bench push the same protocol stacks to 512-4096 nodes on network
shapes a larger SP successor might have used:

* :class:`FatTreeTopology` -- a three-tier leaf/aggregation/core fat
  tree with ECMP-style multipath at both the pod and core stages;
* :class:`DragonflyTopology` -- groups of routers, all-to-all local
  links inside a group and one global link per ordered group pair,
  minimally routed.

All topologies share one duck-typed surface -- ``routes(src, dst,
config)``, ``iter_links()``, ``nnodes`` -- which is everything
:class:`repro.machine.switch.Switch` touches; :func:`build_topology`
dispatches on ``MachineConfig.topology``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import MachineConfig

__all__ = ["SerialResource", "Route", "Topology", "FatTreeTopology",
           "DragonflyTopology", "build_topology", "TOPOLOGIES"]


class SerialResource:
    """A FIFO resource serving one item at a time (a link, a DMA engine).

    :meth:`occupy` returns the completion time of a request arriving at
    ``now`` needing ``duration`` of service; requests queue implicitly by
    pushing the ``busy_until`` watermark.
    """

    __slots__ = ("name", "busy_until", "total_busy", "served")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_until = 0.0
        #: Aggregate service time, for utilization accounting.
        self.total_busy = 0.0
        self.served = 0

    def occupy(self, now: float, duration: float) -> float:
        """Reserve the resource; returns when service completes."""
        if duration < 0:
            raise NetworkError(f"negative service time on {self.name}")
        start = now if now > self.busy_until else self.busy_until
        finish = start + duration
        self.busy_until = finish
        self.total_busy += duration
        self.served += 1
        return finish

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this resource was busy.

        Service already charged past the horizon (``busy_until`` beyond
        it -- the backlog is contiguous and ends there) has not elapsed
        yet and must not count against ``[0, horizon]``; without the
        subtraction the over-report would hide behind the 1.0 clamp.
        """
        if horizon <= 0:
            return 0.0
        elapsed_busy = self.total_busy
        if self.busy_until > horizon:
            elapsed_busy -= self.busy_until - horizon
        if elapsed_busy <= 0.0:
            return 0.0
        return min(1.0, elapsed_busy / horizon)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SerialResource {self.name} busy_until={self.busy_until:.3f}>"


@dataclass(frozen=True)
class Route:
    """An ordered list of links a packet traverses, plus fixed latency."""

    links: tuple[SerialResource, ...]
    #: Sum of per-hop and wire latencies along the route.
    fixed_latency: float
    #: True if the route crosses the middle stage (eligible for jitter).
    crosses_core: bool


@dataclass
class Topology:
    """Edge/middle switch topology for ``nnodes`` nodes.

    Attributes
    ----------
    up, down:
        Per-node injection (node to edge switch) and delivery (edge
        switch to node) links.
    edge_to_mid, mid_to_edge:
        ``[edge][mid]`` link matrices for the core stage.
    """

    nnodes: int
    group_size: int
    mid_count: int
    up: list[SerialResource] = field(default_factory=list)
    down: list[SerialResource] = field(default_factory=list)
    edge_to_mid: list[list[SerialResource]] = field(default_factory=list)
    mid_to_edge: list[list[SerialResource]] = field(default_factory=list)

    @classmethod
    def build(cls, nnodes: int, config: "MachineConfig") -> "Topology":
        """Construct the link graph for ``nnodes`` nodes."""
        if nnodes < 1:
            raise NetworkError("topology needs at least one node")
        topo = cls(nnodes=nnodes, group_size=config.switch_group_size,
                   mid_count=config.switch_mid_count)
        ngroups = (nnodes + topo.group_size - 1) // topo.group_size
        for n in range(nnodes):
            topo.up.append(SerialResource(f"up{n}"))
            topo.down.append(SerialResource(f"down{n}"))
        for e in range(ngroups):
            topo.edge_to_mid.append(
                [SerialResource(f"e{e}m{m}") for m in range(topo.mid_count)])
            topo.mid_to_edge.append(
                [SerialResource(f"m{m}e{e}") for m in range(topo.mid_count)])
        return topo

    @property
    def ngroups(self) -> int:
        return len(self.edge_to_mid)

    def iter_links(self):
        """Yield every link once, in a fixed deterministic order.

        The order (injection/delivery links first, then the core
        matrices) matches the historical ``Switch.link_utilization``
        walk, so utilization snapshots keep their tie-break order.
        """
        yield from self.up
        yield from self.down
        for row in self.edge_to_mid:
            yield from row
        for row in self.mid_to_edge:
            yield from row

    def group_of(self, node: int) -> int:
        """Edge switch a node attaches to."""
        if not (0 <= node < self.nnodes):
            raise NetworkError(f"node {node} outside topology")
        return node // self.group_size

    def routes(self, src: int, dst: int,
               config: "MachineConfig") -> list[Route]:
        """All candidate routes from ``src`` to ``dst``.

        Same-group pairs have a single route through their edge switch;
        cross-group pairs have ``mid_count`` disjoint routes.
        """
        if src == dst:
            raise NetworkError("no route from a node to itself")
        gs, gd = self.group_of(src), self.group_of(dst)
        wire2 = 2 * config.wire_latency
        if gs == gd:
            # node -> edge switch -> node: one switch traversal.
            return [Route(links=(self.up[src], self.down[dst]),
                          fixed_latency=wire2 + config.hop_latency,
                          crosses_core=False)]
        routes = []
        for m in range(self.mid_count):
            links = (self.up[src], self.edge_to_mid[gs][m],
                     self.mid_to_edge[gd][m], self.down[dst])
            routes.append(Route(
                links=links,
                fixed_latency=wire2 + 3 * config.hop_latency,
                crosses_core=True))
        return routes


def _check_pair(nnodes: int, src: int, dst: int) -> None:
    """Shared endpoint validation for route construction."""
    if src == dst:
        raise NetworkError("no route from a node to itself")
    if not (0 <= src < nnodes and 0 <= dst < nnodes):
        raise NetworkError(
            f"route endpoints ({src}, {dst}) outside {nnodes} nodes")


@dataclass
class FatTreeTopology:
    """Three-tier fat tree: leaf / aggregation / core.

    Nodes attach in runs of ``fattree_leaf_size`` to *leaf* switches;
    ``fattree_pod_leaves`` leaves form a *pod* served by
    ``fattree_agg_count`` aggregation switches; every aggregation
    switch of every pod connects to all ``fattree_core_count`` core
    switches.

    Routing is ECMP-style multipath:

    * same leaf -- single route through the leaf switch (in-order);
    * same pod -- one candidate per aggregation switch;
    * cross pod -- one candidate per core switch, the aggregation
      switch on both sides derived from the core index (``core %
      agg_count``), so candidates are disjoint in the core stage.

    Link counts grow linearly with nodes (per-node injection/delivery
    links) plus small per-pod and per-core matrices -- the flat-memory
    property the 4096-node ``--scale`` runs rely on.
    """

    nnodes: int
    leaf_size: int
    pod_leaves: int
    agg_count: int
    core_count: int
    up: list[SerialResource] = field(default_factory=list)
    down: list[SerialResource] = field(default_factory=list)
    #: ``[leaf][agg]`` links between a leaf and its pod's aggregation
    #: switches (leaf index is global; agg index is pod-local).
    leaf_up: list[list[SerialResource]] = field(default_factory=list)
    leaf_down: list[list[SerialResource]] = field(default_factory=list)
    #: ``[pod][agg][core]`` matrices for the core stage.
    agg_up: list[list[list[SerialResource]]] = field(default_factory=list)
    agg_down: list[list[list[SerialResource]]] = field(default_factory=list)

    @classmethod
    def build(cls, nnodes: int,
              config: "MachineConfig") -> "FatTreeTopology":
        if nnodes < 1:
            raise NetworkError("topology needs at least one node")
        topo = cls(nnodes=nnodes, leaf_size=config.fattree_leaf_size,
                   pod_leaves=config.fattree_pod_leaves,
                   agg_count=config.fattree_agg_count,
                   core_count=config.fattree_core_count)
        nleaves = (nnodes + topo.leaf_size - 1) // topo.leaf_size
        npods = (nleaves + topo.pod_leaves - 1) // topo.pod_leaves
        for n in range(nnodes):
            topo.up.append(SerialResource(f"up{n}"))
            topo.down.append(SerialResource(f"down{n}"))
        for lf in range(nleaves):
            topo.leaf_up.append(
                [SerialResource(f"l{lf}a{a}")
                 for a in range(topo.agg_count)])
            topo.leaf_down.append(
                [SerialResource(f"a{a}l{lf}")
                 for a in range(topo.agg_count)])
        for p in range(npods):
            topo.agg_up.append(
                [[SerialResource(f"p{p}a{a}c{c}")
                  for c in range(topo.core_count)]
                 for a in range(topo.agg_count)])
            topo.agg_down.append(
                [[SerialResource(f"c{c}p{p}a{a}")
                  for c in range(topo.core_count)]
                 for a in range(topo.agg_count)])
        return topo

    @property
    def nleaves(self) -> int:
        return len(self.leaf_up)

    @property
    def npods(self) -> int:
        return len(self.agg_up)

    def leaf_of(self, node: int) -> int:
        if not (0 <= node < self.nnodes):
            raise NetworkError(f"node {node} outside topology")
        return node // self.leaf_size

    def pod_of(self, leaf: int) -> int:
        return leaf // self.pod_leaves

    def routes(self, src: int, dst: int,
               config: "MachineConfig") -> list[Route]:
        """Candidate routes (see the class docstring for the shapes)."""
        _check_pair(self.nnodes, src, dst)
        hop = config.hop_latency
        wire2 = 2 * config.wire_latency
        ls, ld = self.leaf_of(src), self.leaf_of(dst)
        if ls == ld:
            return [Route(links=(self.up[src], self.down[dst]),
                          fixed_latency=wire2 + hop,
                          crosses_core=False)]
        ps, pd = self.pod_of(ls), self.pod_of(ld)
        if ps == pd:
            return [Route(links=(self.up[src], self.leaf_up[ls][a],
                                 self.leaf_down[ld][a], self.down[dst]),
                          fixed_latency=wire2 + 3 * hop,
                          crosses_core=False)
                    for a in range(self.agg_count)]
        routes = []
        for c in range(self.core_count):
            a = c % self.agg_count
            links = (self.up[src], self.leaf_up[ls][a],
                     self.agg_up[ps][a][c], self.agg_down[pd][a][c],
                     self.leaf_down[ld][a], self.down[dst])
            routes.append(Route(links=links,
                                fixed_latency=wire2 + 5 * hop,
                                crosses_core=True))
        return routes

    def iter_links(self):
        """Yield every link once: node links, leaf stage, core stage."""
        yield from self.up
        yield from self.down
        for row in self.leaf_up:
            yield from row
        for row in self.leaf_down:
            yield from row
        for pod in self.agg_up:
            for row in pod:
                yield from row
        for pod in self.agg_down:
            for row in pod:
                yield from row


@dataclass
class DragonflyTopology:
    """Dragonfly: router groups with all-to-all local and global links.

    ``dragonfly_router_nodes`` nodes attach to each router;
    ``dragonfly_group_routers`` routers form a group with a directed
    local link between every ordered router pair; every ordered group
    pair is joined by one directed global link, terminating at a
    deterministic gateway router on each side (``other_group %
    routers_per_group``).

    Routing is minimal and single-path (the canonical dragonfly
    minimal route): up to the router, at most one local hop to the
    gateway, the global link, at most one local hop to the destination
    router, down.  Cross-group routes carry ``crosses_core=True`` (the
    global link is the long, jitter-eligible stage); in-order delivery
    within a group mirrors the SP's same-group behaviour.
    """

    nnodes: int
    router_nodes: int
    group_routers: int
    up: list[SerialResource] = field(default_factory=list)
    down: list[SerialResource] = field(default_factory=list)
    #: ``local[g][i][j]`` -- directed link router ``i`` -> ``j`` (both
    #: group-local indices) inside group ``g``; ``None`` on the
    #: diagonal.
    local: list[list[list[Optional[SerialResource]]]] = field(
        default_factory=list)
    #: Directed global link per ordered group pair.
    global_links: dict[tuple[int, int], SerialResource] = field(
        default_factory=dict)

    @classmethod
    def build(cls, nnodes: int,
              config: "MachineConfig") -> "DragonflyTopology":
        if nnodes < 1:
            raise NetworkError("topology needs at least one node")
        topo = cls(nnodes=nnodes,
                   router_nodes=config.dragonfly_router_nodes,
                   group_routers=config.dragonfly_group_routers)
        nrouters = (nnodes + topo.router_nodes - 1) // topo.router_nodes
        ngroups = (nrouters + topo.group_routers - 1) // topo.group_routers
        for n in range(nnodes):
            topo.up.append(SerialResource(f"up{n}"))
            topo.down.append(SerialResource(f"down{n}"))
        rpg = topo.group_routers
        for g in range(ngroups):
            grid: list[list[Optional[SerialResource]]] = []
            for i in range(rpg):
                grid.append([None if i == j
                             else SerialResource(f"g{g}r{i}r{j}")
                             for j in range(rpg)])
            topo.local.append(grid)
        for g1 in range(ngroups):
            for g2 in range(ngroups):
                if g1 != g2:
                    topo.global_links[(g1, g2)] = SerialResource(
                        f"G{g1}G{g2}")
        return topo

    @property
    def ngroups(self) -> int:
        return len(self.local)

    def router_of(self, node: int) -> int:
        if not (0 <= node < self.nnodes):
            raise NetworkError(f"node {node} outside topology")
        return node // self.router_nodes

    def group_of(self, node: int) -> int:
        return self.router_of(node) // self.group_routers

    def routes(self, src: int, dst: int,
               config: "MachineConfig") -> list[Route]:
        """The single minimal route between ``src`` and ``dst``."""
        _check_pair(self.nnodes, src, dst)
        hop = config.hop_latency
        wire2 = 2 * config.wire_latency
        rs, rd = self.router_of(src), self.router_of(dst)
        if rs == rd:
            return [Route(links=(self.up[src], self.down[dst]),
                          fixed_latency=wire2 + hop,
                          crosses_core=False)]
        rpg = self.group_routers
        gs, gd = rs // rpg, rd // rpg
        if gs == gd:
            links = (self.up[src], self.local[gs][rs % rpg][rd % rpg],
                     self.down[dst])
            return [Route(links=links, fixed_latency=wire2 + 2 * hop,
                          crosses_core=False)]
        gw_out = gd % rpg   # gateway router in gs toward gd
        gw_in = gs % rpg    # entry router in gd from gs
        links: list[SerialResource] = [self.up[src]]
        if rs % rpg != gw_out:
            links.append(self.local[gs][rs % rpg][gw_out])
        links.append(self.global_links[(gs, gd)])
        if gw_in != rd % rpg:
            links.append(self.local[gd][gw_in][rd % rpg])
        links.append(self.down[dst])
        # One switch traversal per link boundary, plus the global
        # link's extra flight time.
        latency = (wire2 + (len(links) - 1) * hop
                   + config.dragonfly_global_latency)
        return [Route(links=tuple(links), fixed_latency=latency,
                      crosses_core=True)]

    def iter_links(self):
        """Yield every link once: node links, local grids, global."""
        yield from self.up
        yield from self.down
        for grid in self.local:
            for row in grid:
                for ln in row:
                    if ln is not None:
                        yield ln
        yield from self.global_links.values()


#: Topology names accepted by ``MachineConfig.topology``.
TOPOLOGIES = ("sp", "fattree", "dragonfly")


def build_topology(nnodes: int, config: "MachineConfig"):
    """Construct the fabric selected by ``config.topology``."""
    kind = config.topology
    if kind == "sp":
        return Topology.build(nnodes, config)
    if kind == "fattree":
        return FatTreeTopology.build(nnodes, config)
    if kind == "dragonfly":
        return DragonflyTopology.build(nnodes, config)
    raise NetworkError(
        f"unknown topology {kind!r}; choose from {TOPOLOGIES}")
