"""Free-list pools for hot-path model objects.

The steady state of a busy cluster allocates one :class:`Packet` per
wire packet plus one per acknowledgement, and the acknowledgement's
lifecycle is short and single-owner: built by the reliability layer at
the receiver, consumed by the transport-ACK fast path at the sender,
then garbage.  :class:`PacketPool` recycles those objects through an
explicit free list with **reset-on-acquire**: every mutable field --
addressing, kind, payload, ``seq``, the ``info`` dict, and crucially the
``uid`` -- is reinitialised before the object is handed out.

The uid is *redrawn from the per-cluster id stream* on every acquire
(:func:`repro.machine.packet.next_packet_id`), which gives two
guarantees at once:

* uid streams are byte-identical with pooling on or off (each acquire
  corresponds 1:1 to the construction the unpooled path would have
  performed), so traces, span streams, and ``--jobs N`` merges are
  unaffected;
* uid-keyed side tables (the span recorder's per-packet tracks) can
  never alias a recycled packet to a stale entry -- a fresh uid has, by
  construction, never been seen by any table.

Pools are **per cluster** (owned by the cluster, reachable as
``sim.pools``), never process-global, so ``--jobs N`` workers keep the
determinism contract: a worker's pool state is a function of its own
cluster's history only.

Pool occupancy/leak counters are exported through ``repro.obs``
(:func:`repro.obs.pool_stats`) and stamped into ``BENCH_PERF.json``
``pools`` metadata by the perf harness.  They are deliberately *not*
part of the default ``--metrics`` blocks: hit counts differ between
fast-lane-on and fast-lane-off runs of the same scenario, and the
equivalence contract requires those blocks byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .packet import Packet, next_packet_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["PacketPool", "TrainPool", "HotPools"]

#: Free-list bound: enough to absorb a cluster's steady state (one ack
#: in flight per window slot per peer) without pinning burst memory.
_PACKET_POOL_CAP = 2048

#: Train records are large-ish (five array columns); a handful covers
#: the realistic number of trains simultaneously in flight per cluster.
_TRAIN_POOL_CAP = 64


class PacketPool:
    """Recycles :class:`Packet` objects through a bounded free list."""

    __slots__ = ("_free", "cap", "acquires", "hits", "releases")

    def __init__(self, cap: int = _PACKET_POOL_CAP) -> None:
        self._free: list[Packet] = []
        self.cap = cap
        #: Total acquires served (hits + fresh constructions).
        self.acquires = 0
        #: Acquires served from the free list.
        self.hits = 0
        #: Packets returned to the pool (capped appends count too).
        self.releases = 0

    def acquire(self, src: int, dst: int, proto: str, kind: str,
                header_bytes: int, payload: bytes = b"") -> Packet:
        """A reset packet with a fresh uid and an empty ``info`` dict.

        Reset covers *every* mutable field: a recycled packet carries
        nothing of its previous life -- no stale ``seq``, no leftover
        ``info`` keys, and never a previously-seen uid (so uid-keyed
        span bindings cannot alias a stale parent).
        """
        self.acquires += 1
        free = self._free
        if free:
            self.hits += 1
            pkt = free.pop()
            pkt.src = src
            pkt.dst = dst
            pkt.proto = proto
            pkt.kind = kind
            pkt.header_bytes = header_bytes
            pkt.payload = payload
            pkt.seq = -1
            pkt.info.clear()
            pkt.uid = next_packet_id()
            pkt.size = header_bytes + len(payload)
            return pkt
        pkt = Packet(src=src, dst=dst, proto=proto, kind=kind,
                     header_bytes=header_bytes, payload=payload)
        pkt.pooled = True
        return pkt

    def release(self, pkt: Packet) -> None:
        """Return a pool-owned packet to the free list.

        Only packets acquired from a pool are accepted (``pkt.pooled``);
        foreign packets -- test fixtures, protocol-constructed data
        packets whose lifetime the transport still owns -- are ignored,
        so a release at a consumption point is always safe to call.
        """
        if not pkt.pooled:
            return
        self.releases += 1
        free = self._free
        if len(free) < self.cap:
            free.append(pkt)

    @property
    def outstanding(self) -> int:
        """Acquired-but-unreleased packets (leak/occupancy gauge).

        Nonzero at quiesce means acquired packets left the release path
        -- e.g. acknowledgements lost by a faulty fabric, which are
        collected by the host GC but never return to the free list.
        """
        return self.acquires - self.releases

    def stats(self) -> dict:
        """Snapshot for BENCH_PERF ``pools`` metadata."""
        return {
            "acquires": self.acquires,
            "hits": self.hits,
            "hit_rate": round(self.hits / self.acquires, 4)
            if self.acquires else 0.0,
            "releases": self.releases,
            "outstanding": self.outstanding,
            "free": len(self._free),
        }


class TrainPool:
    """Recycles :class:`~repro.machine.train.PacketTrain` records.

    A record is acquired by ``Adapter._schedule_train_soa`` and returns
    to the free list from its own last receive-DMA completion, so
    ``outstanding`` is also an in-flight-trains gauge.
    """

    __slots__ = ("_free", "cap", "acquires", "hits", "releases")

    def __init__(self, cap: int = _TRAIN_POOL_CAP) -> None:
        self._free: list = []
        self.cap = cap
        self.acquires = 0
        self.hits = 0
        self.releases = 0

    def acquire(self):
        """A train record with cleared columns and cursors.

        Column/cursor reset happens in ``PacketTrain.begin`` (the
        caller binds route constants in the same pass); the pool only
        tracks ownership.
        """
        self.acquires += 1
        free = self._free
        if free:
            self.hits += 1
            return free.pop()
        from .train import PacketTrain
        train = PacketTrain()
        train.pooled = True
        return train

    def release(self, train) -> None:
        if not train.pooled:
            return
        self.releases += 1
        free = self._free
        if len(free) < self.cap:
            free.append(train)

    @property
    def outstanding(self) -> int:
        """Acquired-but-unreleased train records (in-flight trains)."""
        return self.acquires - self.releases

    def stats(self) -> dict:
        """Snapshot for BENCH_PERF ``pools`` metadata."""
        return {
            "acquires": self.acquires,
            "hits": self.hits,
            "hit_rate": round(self.hits / self.acquires, 4)
            if self.acquires else 0.0,
            "releases": self.releases,
            "outstanding": self.outstanding,
            "free": len(self._free),
        }


class HotPools:
    """All per-cluster hot-path pools, reachable as ``sim.pools``.

    Currently: the shared :class:`PacketPool` (transport
    acknowledgements and SoA-train expansion packets) and the
    :class:`TrainPool` of struct-of-arrays train records.  The kernel's
    fast-timer free list and the span recorder's track free list live
    with their owners but report through the same
    :func:`repro.obs.pool_stats` snapshot.
    """

    __slots__ = ("packets", "trains")

    def __init__(self) -> None:
        self.packets = PacketPool()
        self.trains = TrainPool()

    def stats(self) -> dict:
        return {"packets": self.packets.stats(),
                "trains": self.trains.stats()}
