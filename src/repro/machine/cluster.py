"""Cluster assembly and SPMD job execution.

:class:`Cluster` builds a complete simulated SP -- nodes, adapters, the
switch -- and runs SPMD jobs on it: one :class:`Task` per node, each
executing the same generator function on its node's main thread, with the
requested communication stacks (LAPI and/or MPL, optionally Global
Arrays) instantiated and initialized.

This is the single entry point examples, tests, and benchmarks use::

    cluster = Cluster(nnodes=4)
    results = cluster.run_job(my_task_fn, stacks=("lapi",))

Bootstrap note: real SP systems carried job setup over the service
Ethernet, separate from the switch.  The model mirrors this with an
out-of-band barrier used *only* inside ``LAPI_Init``-time setup
(:meth:`Cluster.oob_allgather`); all steady-state communication goes
through the simulated switch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Sequence

from ..errors import MachineError
from ..obs import MetricsRegistry
from ..sim import PENDING, RngRegistry, Simulator, Tracer
from .config import SP_1998, MachineConfig
from .node import Node
from .packet import reset_packet_ids
from .pool import HotPools
from .switch import Switch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import Lapi
    from ..ga.api import GlobalArrays
    from ..mpl.api import Mpl
    from .cpu import Thread

__all__ = ["Cluster", "Task"]


class Task:
    """One SPMD task (process) of a parallel job.

    Attributes
    ----------
    rank, size:
        Task id and job width.
    node:
        The :class:`~repro.machine.node.Node` this task runs on.
    thread:
        The task's main CPU thread (valid once the job starts).
    lapi, mpl, ga:
        Communication stacks, present according to the job's ``stacks``
        and ``ga_backend`` arguments.
    """

    def __init__(self, cluster: "Cluster", rank: int, size: int,
                 node: Node) -> None:
        self.cluster = cluster
        self.rank = rank
        self.size = size
        self.node = node
        self.thread: Optional["Thread"] = None
        self.lapi: Optional["Lapi"] = None
        self.mpl: Optional["Mpl"] = None
        self.ga: Optional["GlobalArrays"] = None

    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self.cluster.sim.now

    @property
    def memory(self):
        """This task's node memory."""
        return self.node.memory

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.rank}/{self.size} on node {self.node.node_id}>"


class Cluster:
    """A simulated SP system ready to run SPMD jobs."""

    def __init__(self, nnodes: int, config: MachineConfig = SP_1998,
                 seed: int = 0xC0FFEE,
                 trace: Optional[Tracer] = None,
                 spans: Optional[Any] = None,
                 faults: Optional[Any] = None,
                 scheduler: Optional[str] = None,
                 telemetry: Optional[Any] = None) -> None:
        if nnodes < 1:
            raise MachineError("cluster needs at least one node")
        config.validate()
        reset_packet_ids()
        self.config = config
        self.trace = trace
        #: Optional :class:`repro.obs.SpanRecorder` collecting causal
        #: phase spans for this cluster.  Packet uids restart per
        #: cluster (``reset_packet_ids`` above), so span streams are a
        #: function of the cluster's own history -- the serial/parallel
        #: parity requirement.  Exposed to every component as
        #: ``sim.spans``; purely observational (never perturbs time).
        self.spans = spans
        #: ``scheduler`` selects the kernel's pending-queue backend
        #: ("calendar"/"heap"); None keeps the kernel default.  The
        #: scheduler-equivalence tests use this to run one workload
        #: under both backends and diff every observable.
        self.sim = Simulator(scheduler=scheduler)
        self.sim.spans = spans
        #: Per-cluster hot-path object pools (``repro.machine.pool``).
        #: Owned here -- never process-global -- so a ``--jobs N``
        #: worker's pool state is a function of its own cluster's
        #: history only (the determinism contract).  Reachable by the
        #: protocol stacks as ``sim.pools``.
        self.pools = HotPools()
        self.sim.pools = self.pools
        self.rng = RngRegistry(seed=seed)
        self.nodes = [Node(self.sim, i, config, trace=trace)
                      for i in range(nnodes)]
        self.switch = Switch(self.sim, nnodes, config, self.rng,
                             trace=trace)
        for node in self.nodes:
            node.adapter.connect(self.switch)
        self._oob_state: dict[str, dict[int, Any]] = {}
        #: Cluster-wide observability registry (``repro.obs``).  The
        #: machine layer registers itself here; the LAPI/MPL/GA stacks
        #: wire their subsystems in at init time.
        self.metrics = MetricsRegistry()
        for node in self.nodes:
            self.metrics.register_collector(
                "machine.adapter", node.adapter.metrics,
                node=node.node_id)
        self.metrics.register_collector("machine.switch",
                                        self.switch.metrics)
        #: Armed virtual-time telemetry (``repro.obs.timeline``), or
        #: None.  Passing a :class:`repro.obs.TelemetryConfig` builds
        #: the windowed timeline over this registry, hangs the flight
        #: recorder off ``sim.flight``, and -- when the config carries
        #: SLO rules -- arms burn-rate alerting.  Purely observational:
        #: snapshots, renders, virtual time, and event counts are
        #: identical armed or disarmed.
        self.telemetry = None
        if telemetry is not None:
            from ..obs.timeline import TelemetryRuntime
            self.telemetry = TelemetryRuntime.install(
                telemetry, self.sim, self.metrics)
        #: Terminal error recorded by :meth:`fail_run`; checked by the
        #: :meth:`run_job` event loop after every kernel step.
        self._fatal: Optional[BaseException] = None
        #: Survivor policy for convicted peers; set per job by
        #: :meth:`run_job` (``on_peer_failure``).  "fail" terminates the
        #: run with the conviction error, "continue" lets survivors keep
        #: running against the reduced peer set.
        self.on_peer_failure = "fail"
        #: Heartbeat failure detector (:mod:`repro.resilience`), or
        #: None.  Armed below, after faults install, because the auto
        #: rule depends on whether the schedule carries node crashes.
        self.resilience = None
        #: Compiled fault runtime (:mod:`repro.faults`), or None.  An
        #: installed schedule hooks the switch/adapters/CPUs above and
        #: flips the reliable transports into adaptive-RTO mode; no
        #: schedule (or an empty one) leaves every hot path untouched.
        self.faults = faults.install(self) if faults is not None else None
        # Auto rule mirrors adaptive-RTO's: the detector arms exactly
        # when the fault schedule can kill a node.  Fault-free runs (and
        # fault runs without crashes) carry zero heartbeat traffic, so
        # their event streams stay byte-identical to pre-detector trees.
        detector = config.failure_detector
        if detector is None:
            detector = self.faults is not None and self.faults.has_crashes
        if detector:
            from ..resilience import ResilienceRuntime
            self.resilience = ResilienceRuntime(self)

    def fail_run(self, err: BaseException) -> None:
        """Terminate the running job cleanly with ``err``.

        Structured failure path for errors detected in bare kernel
        callbacks (retransmission exhaustion fires on a timer with no
        thread or run context): the error is parked here and raised
        from :meth:`run_job`'s event loop at the next step boundary,
        so callers see it with the full job context instead of a
        traceback out of ``Simulator.step``.  The first error wins;
        later ones (cascading failures of an already-dying run) are
        dropped.
        """
        if self._fatal is None:
            self._fatal = err

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # out-of-band bootstrap exchange (service-Ethernet analogue)
    # ------------------------------------------------------------------
    def oob_allgather(self, key: str, rank: int, value: Any,
                      size: int) -> dict[int, Any]:
        """Instantaneous setup-time allgather over the service network.

        Each participant contributes ``value`` under ``key``; once all
        ``size`` contributions are in, every caller sees the full map.
        Used only by ``*_Init``-time setup (address exchange); anything
        measured by the benchmarks travels through the switch.
        """
        slot = self._oob_state.setdefault(key, {})
        slot[rank] = value
        if len(slot) > size:
            raise MachineError(f"oob key {key!r} over-subscribed")
        return slot

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def run_job(self, fn: Callable[[Task], Generator], *,
                ntasks: Optional[int] = None,
                stacks: Sequence[str] = ("lapi",),
                ga_backend: Optional[str] = None,
                ga_config: Optional[Any] = None,
                interrupt_mode: bool = True,
                eager_limit: Optional[int] = None,
                max_events: Optional[int] = None,
                until: Optional[float] = None,
                error_handler: Optional[Callable] = None,
                on_peer_failure: str = "fail") -> list[Any]:
        """Run ``fn`` as an SPMD job; returns per-rank return values.

        Parameters
        ----------
        fn:
            Generator function ``fn(task)`` run on every task's main
            thread.
        ntasks:
            Job width; defaults to the cluster size (one task per node).
        stacks:
            Which communication libraries to initialize: any of
            ``"lapi"``, ``"mpl"``.
        ga_backend:
            If set (``"lapi"`` or ``"mpl"``), initialize Global Arrays
            on that stack (the stack is added implicitly).
        ga_config:
            Optional :class:`repro.ga.GaConfig` overriding the GA
            protocol thresholds (ablations).
        interrupt_mode:
            Initial progress mode for LAPI and MPL rcvncall.
        eager_limit:
            Override MP_EAGER_LIMIT for the MPL stack.
        max_events:
            Kernel safety valve.
        until:
            Abort the job if virtual time exceeds this (test hangs).
        error_handler:
            LAPI error handler registered at ``LAPI_Init`` time on
            every task (``fn(err) -> bool``); see
            :meth:`repro.core.api.Lapi.register_error_handler`.
        on_peer_failure:
            Survivor policy when the failure detector convicts a peer:
            ``"fail"`` (default) terminates the job with a structured
            :class:`~repro.errors.PeerUnreachableError`; ``"continue"``
            degrades gracefully -- blocked primitives involving the dead
            peer resolve and the survivors keep running.
        """
        if on_peer_failure not in ("fail", "continue"):
            raise MachineError(
                f"unknown on_peer_failure policy {on_peer_failure!r}"
                " (expected 'fail' or 'continue')")
        self.on_peer_failure = on_peer_failure
        size = ntasks if ntasks is not None else self.nnodes
        if size > self.nnodes:
            raise MachineError(
                f"ntasks={size} exceeds cluster of {self.nnodes} nodes")
        stack_set = set(stacks)
        if ga_backend is not None:
            if ga_backend not in ("lapi", "mpl"):
                raise MachineError(f"unknown GA backend {ga_backend!r}")
            stack_set.add(ga_backend)
            # The GA-on-LAPI implementation uses MPL-free bootstrap, but
            # GA collectives (broker-less create) piggyback on its own
            # stack, so nothing further is needed here.
        unknown = stack_set - {"lapi", "mpl"}
        if unknown:
            raise MachineError(f"unknown stacks: {sorted(unknown)}")

        tasks = [Task(self, rank, size, self.nodes[rank])
                 for rank in range(size)]

        if "lapi" in stack_set:
            from ..core.api import Lapi
            for task in tasks:
                task.lapi = Lapi(task, interrupt_mode=interrupt_mode,
                                 error_handler=error_handler)
        if "mpl" in stack_set:
            from ..mpl.api import Mpl
            for task in tasks:
                task.mpl = Mpl(task, interrupt_mode=interrupt_mode,
                               eager_limit=eager_limit)
        if ga_backend is not None:
            from ..ga.api import GlobalArrays
            from ..ga.config import GA_DEFAULTS
            gcfg = ga_config if ga_config is not None else GA_DEFAULTS
            for task in tasks:
                task.ga = GlobalArrays(task, backend=ga_backend,
                                       gcfg=gcfg)

        def main_body(task: Task):
            def body(thread):
                task.thread = thread
                if task.lapi is not None:
                    yield from task.lapi.init()
                if task.mpl is not None:
                    yield from task.mpl.init()
                if task.ga is not None:
                    yield from task.ga.init()
                result = yield from fn(task)
                if task.ga is not None:
                    yield from task.ga.terminate()
                if task.lapi is not None:
                    yield from task.lapi.term()
                if task.mpl is not None:
                    yield from task.mpl.term()
                return result
            return body

        threads = [task.node.cpu.spawn(main_body(task),
                                       name=f"task{task.rank}.main")
                   for task in tasks]
        self._fatal = None
        sim = self.sim
        step = sim.step
        done = sim.all_of([t.process for t in threads])
        # The driving loop runs once per kernel event and dominates
        # benchmark wall time, so the common case (no budgets) is kept
        # to the bare minimum of work per iteration.  ``max_events`` is
        # a per-call budget relative to the counter at entry -- a second
        # job on the same simulator gets the full allowance instead of
        # inheriting the first run's event count.
        event_ceiling = (sim.events_processed + max_events
                         if max_events is not None else None)
        cal = sim._cal
        heap = sim._heap
        if until is None and event_ceiling is None and cal is not None:
            # Inlined CalendarQueue.pop + fast-timer fire, dispatch
            # table for everything else -- the same inner loop as
            # Simulator.run_until_complete (see repro.sim.kernel), with
            # the per-event fatal check this driver needs.  Semantics
            # identical to ``while pending: sim.step()``.
            from ..sim.kernel import _DISPATCH, _TIMER_POOL_CAP
            dispatch = _DISPATCH
            timer_pool = sim._timer_pool
            while done._value is PENDING:
                if self._fatal is not None:
                    raise self._fatal
                clen = cal._len
                if not clen:
                    alive = [t.process.name for t in threads
                             if t.process.is_alive]
                    raise MachineError(
                        f"job deadlocked; unfinished tasks: {alive}")
                nq = cal._nowq
                if nq:
                    entry = None
                    if len(nq) != clen:
                        b = cal._active
                        pos = cal._pos
                        if b is None or pos >= len(b):
                            b = cal._seek()
                            pos = cal._pos
                        if b is not None:
                            entry = b[pos]
                            if entry[0] <= cal._now_stamp:
                                cal._pos = pos + 1
                            else:
                                entry = None
                    cal._len = clen - 1
                    if entry is not None:
                        when = entry[0]
                        ev = entry[2]
                    else:
                        when = cal._now_stamp
                        ev = nq.popleft()
                else:
                    b = cal._active
                    pos = cal._pos
                    if b is None or pos >= len(b):
                        b = cal._seek()
                        pos = cal._pos
                    cal._pos = pos + 1
                    cal._len = clen - 1
                    entry = b[pos]
                    when = entry[0]
                    ev = entry[2]
                sim._now = when
                if ev._qk == 0:
                    sim.events_processed += 1
                    if sim.trace is not None:
                        sim.trace.kernel_event(when, ev)
                    ev.fn(ev.arg)
                    if len(timer_pool) < _TIMER_POOL_CAP:
                        ev.fn = ev.arg = None
                        timer_pool.append(ev)
                else:
                    dispatch[ev._qk](sim, when, ev)
        elif until is None and event_ceiling is None:
            while done._value is PENDING:
                if self._fatal is not None:
                    raise self._fatal
                if not heap:
                    alive = [t.process.name for t in threads
                             if t.process.is_alive]
                    raise MachineError(
                        f"job deadlocked; unfinished tasks: {alive}")
                step()
        else:
            while done._value is PENDING:
                if self._fatal is not None:
                    raise self._fatal
                # An empty queue peeks as inf, so a set ``until`` budget
                # reports before the deadlock check -- the historical
                # precedence.
                if until is not None and sim.peek() > until:
                    raise MachineError(
                        f"job exceeded virtual-time budget of {until}us")
                if event_ceiling is not None and (
                        sim.events_processed >= event_ceiling):
                    raise MachineError(
                        f"job exceeded max_events={max_events}")
                if not (cal._len if cal is not None else heap):
                    alive = [t.process.name for t in threads
                             if t.process.is_alive]
                    raise MachineError(
                        f"job deadlocked; unfinished tasks: {alive}")
                step()
        if self._fatal is not None:
            raise self._fatal
        for t in threads:
            if t.process.triggered and not t.process.ok:
                raise t.process.value
        return [t.process.value for t in threads]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster {self.nnodes} nodes, t={self.sim.now:.1f}us>"
