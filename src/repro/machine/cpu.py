"""The node CPU: cooperative threads over the simulation kernel.

A 1998 SP "thin" node has a single P2SC processor, so at most one thread
makes progress at a time.  :class:`Cpu` models this with a priority
mutex: a :class:`Thread` must hold the CPU to consume time
(:meth:`Thread.execute`), releases it whenever it blocks
(:meth:`Thread.wait`, :meth:`Thread.sleep`), and re-acquires it before
resuming.  Priorities let interrupt handlers run ahead of user threads
the next time the CPU is released -- the model is non-preemptive at the
granularity of a single ``execute`` segment, which matches the real
system closely because communication-path code runs in short bursts, and
long application compute phases use :meth:`Thread.compute`, which yields
between quanta.

Thread priorities (lower runs first)::

    INTERRUPT (0) < HANDLER (5) < NORMAL (10)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..errors import MachineError
from ..sim import Event, Process, SimLock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator
    from .config import MachineConfig

__all__ = ["Cpu", "Thread", "TASK_CRASHED", "INTERRUPT", "HANDLER",
           "NORMAL"]

#: Priority for first-level interrupt handler threads.
INTERRUPT = 0
#: Priority for completion-handler / protocol-service threads.
HANDLER = 5
#: Priority for ordinary application threads.
NORMAL = 10


class _TaskCrashed:
    """Singleton sentinel a killed process completes with.

    Killed processes *succeed* with this value (so ``AllOf`` aggregates
    see completion, not failure); ``run_job`` surfaces it as the result
    slot of a crashed rank.  Falsy, and pickles back to the singleton,
    so ``result is TASK_CRASHED`` works across ``--jobs N`` workers.
    """

    __slots__ = ()
    _instance = None

    def __new__(cls) -> "_TaskCrashed":
        inst = cls._instance
        if inst is None:
            inst = cls._instance = super().__new__(cls)
        return inst

    def __repr__(self) -> str:
        return "TASK_CRASHED"

    def __reduce__(self):
        return (_TaskCrashed, ())

    def __bool__(self) -> bool:
        return False


#: Result sentinel for ranks whose node suffered a fail-stop crash.
TASK_CRASHED = _TaskCrashed()


class Thread:
    """A simulated thread of execution on one node's CPU.

    Created through :meth:`Cpu.spawn`.  The ``body`` is a generator
    function receiving the thread handle; it expresses computation with
    ``yield from thread.execute(cost)`` and blocking with
    ``yield from thread.wait(event)``.
    """

    def __init__(self, cpu: "Cpu", body: Callable[["Thread"], Generator],
                 name: str, priority: int) -> None:
        self.cpu = cpu
        self.name = name
        self.priority = priority
        #: Wall... virtual time this thread has spent holding the CPU.
        self.cpu_time = 0.0
        self._holding = False
        self._body = body
        self.process: Process = cpu.sim.process(self._main(), name=name)
        cpu._by_process[self.process] = self

    # ------------------------------------------------------------------
    @property
    def sim(self) -> "Simulator":
        return self.cpu.sim

    @property
    def holding_cpu(self) -> bool:
        return self._holding

    def _main(self) -> Generator:
        yield from self._acquire()
        try:
            result = yield from self._body(self)
            return result
        finally:
            if self._holding:
                self._release()
            self.cpu._by_process.pop(self.process, None)

    def _acquire(self) -> Generator:
        if self._holding:
            raise MachineError(f"thread {self.name} double-acquired CPU")
        yield self.cpu._lock.acquire(owner=self, priority=self.priority)
        self._holding = True

    def _release(self) -> None:
        if not self._holding:
            raise MachineError(f"thread {self.name} released idle CPU")
        self._holding = False
        self.cpu._lock.release()

    # ------------------------------------------------------------------
    # the three verbs of a simulated thread
    # ------------------------------------------------------------------
    def execute(self, cost: float) -> Generator:
        """Consume ``cost`` us of CPU, non-preemptibly.

        Under an installed fault schedule with CPU pause/slowdown
        windows on this node, the *virtual* duration of the burst is
        stretched by the window table while ``cpu_time`` still accounts
        the nominal work -- the node got slower, not busier.
        """
        if cost < 0:
            raise MachineError(f"negative execute cost {cost}")
        if not self._holding:
            yield from self._acquire()
        if cost > 0:
            # Bare-float yields take the kernel's pooled sleep path --
            # no Timeout allocation per CPU burst, identical timing.
            faults = self.cpu.faults
            if faults is not None:
                yield faults.elapsed(self.sim.now, cost)
            else:
                yield cost
            self.cpu_time += cost

    def compute(self, cost: float, quantum: float = 50.0) -> Generator:
        """Consume ``cost`` us of CPU, yielding between ``quantum`` slices.

        Use for long application compute phases so interrupts and
        handler threads are not starved for the whole duration.
        """
        remaining = float(cost)
        while remaining > 0:
            step = min(quantum, remaining)
            yield from self.execute(step)
            remaining -= step
            if remaining > 0 and self.cpu._lock._waiters:
                yield from self.yield_cpu()

    def wait(self, event: Event) -> Generator:
        """Release the CPU, wait for ``event``, re-acquire; returns value."""
        # _release/_acquire inlined: wait() runs once per blocking
        # progress step, and the extra generator frame per call is
        # measurable on the perf harness.
        if self._holding:
            self._holding = False
            self.cpu._lock.release()
        value = yield event
        if self._holding:
            raise MachineError(f"thread {self.name} double-acquired CPU")
        yield self.cpu._lock.acquire(owner=self, priority=self.priority)
        self._holding = True
        return value

    def sleep(self, delay: float) -> Generator:
        """Release the CPU for ``delay`` us of virtual time."""
        yield from self.wait(self.sim.timeout(delay))

    def yield_cpu(self) -> Generator:
        """Release and immediately re-queue for the CPU (scheduling point)."""
        if self._holding:
            self._release()
        # A zero sleep lets same-time higher-priority acquirers slot in.
        yield 0.0
        yield from self._acquire()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self._holding else "blocked"
        return f"<Thread {self.name} prio={self.priority} {state}>"


class Cpu:
    """Priority-scheduled single processor of one node."""

    def __init__(self, sim: "Simulator", node_id: int,
                 config: "MachineConfig") -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self._lock = SimLock(sim, name=f"cpu{node_id}")
        self._by_process: dict[Process, Thread] = {}
        self._spawned = 0
        #: Optional compiled CPU fault windows
        #: (:class:`repro.faults.runtime._CpuFaults`) stretching
        #: ``Thread.execute`` bursts; None = full speed (default).
        self.faults = None
        #: True after a fail-stop crash killed every thread.  Restart
        #: does *not* clear it: the machine comes back but the task
        #: that was running stays dead (fail-stop semantics).
        self.crashed = False

    def crash(self) -> int:
        """Fail-stop: kill every live thread at its current yield point.

        Returns the number of threads killed.  Each killed process
        completes with :data:`TASK_CRASHED` (success, not failure, so
        ``run_job``'s ``AllOf`` still resolves once survivors finish).
        The CPU lock is left as-is -- nothing will ever acquire it
        again because :meth:`spawn` refuses on a crashed CPU.
        """
        self.crashed = True
        killed = 0
        for process in list(self._by_process):
            if process.is_alive:
                process.kill(TASK_CRASHED)
                killed += 1
        self._by_process.clear()
        return killed

    def spawn(self, body: Callable[[Thread], Generator], *,
              name: Optional[str] = None,
              priority: int = NORMAL) -> Thread:
        """Create and start a thread running ``body``."""
        if self.crashed:
            raise MachineError(
                f"cpu{self.node_id} has crashed; cannot spawn threads"
                " on a dead node")
        self._spawned += 1
        label = name or f"cpu{self.node_id}.t{self._spawned}"
        return Thread(self, body, label, priority)

    def current_thread(self) -> Thread:
        """The thread whose body is currently executing.

        Lets library layers (LAPI, GA) charge CPU to whichever thread
        called them without threading a handle through every signature.
        """
        proc = self.sim.active_process
        thread = self._by_process.get(proc) if proc is not None else None
        if thread is None:
            raise MachineError(
                f"no current thread on cpu{self.node_id}; communication"
                " calls must run inside a Thread body")
        return thread

    @property
    def busy(self) -> bool:
        return self._lock.locked

    @property
    def running(self) -> Optional[Thread]:
        """The thread currently holding the CPU, if any."""
        owner = self._lock.owner
        return owner if isinstance(owner, Thread) else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cpu node={self.node_id} busy={self.busy}>"
