"""One SP node: CPU + memory + switch adapter.

A 1998 "thin" node is a uniprocessor P2SC with its own AIX image; in the
model a :class:`Node` aggregates the three hardware resources every
protocol stack needs and nothing else -- stacks attach themselves on top
(see :class:`repro.machine.cluster.Cluster`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .adapter import Adapter
from .cpu import Cpu
from .memory import Memory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Simulator, Tracer
    from .config import MachineConfig

__all__ = ["Node"]


class Node:
    """Hardware of a single SP node."""

    def __init__(self, sim: "Simulator", node_id: int,
                 config: "MachineConfig",
                 trace: Optional["Tracer"] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config
        self.cpu = Cpu(sim, node_id, config)
        self.memory = Memory(node_id, max_allocation=config.max_allocation)
        self.adapter = Adapter(sim, node_id, config, trace=trace)

    # ------------------------------------------------------------------
    @property
    def crashed(self) -> bool:
        """True while the node is fail-stop dead."""
        return self.adapter.crashed

    def crash(self) -> int:
        """Fail-stop the whole node: kill threads, silence the adapter.

        Returns the number of threads killed.  Order matters: the
        adapter goes dark first so nothing a dying thread already
        scheduled can still reach the wire at this instant.
        """
        self.adapter.crash()
        return self.cpu.crash()

    def restart(self) -> None:
        """Machine-level restart: the adapter answers traffic again.

        The killed threads stay dead (fail-stop -- the task does not
        come back); protocol state is cleared by the resilience
        runtime's restart hook.
        """
        self.adapter.restart()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id}>"
