"""Fail-stop failure detection for simulated SP clusters.

LAPI's reliability layer (section 4.3 of the paper) recovers from
*packet* loss; it has no answer for a *node* that stops executing.
This package adds the cluster-level complement: an adapter-assisted
heartbeat failure detector in the style of group-services daemons on
real SP systems, living entirely outside the protocol stacks' hot
paths.

The runtime attaches a tiny ``"resil"`` protocol client to every
adapter and exchanges ping/pong control packets on the switch.  A peer
silent past ``MachineConfig.conviction_threshold`` is *convicted*
(declared fail-stop dead): every registered stack on the observing
node is told, blocked primitives involving the dead peer resolve with
a structured :class:`~repro.errors.PeerUnreachableError`, and the
survivor policy (:meth:`repro.machine.Cluster.run_job`'s
``on_peer_failure``) decides whether the job fails or degrades
gracefully.

Arming is automatic and zero-cost when off: the cluster builds a
runtime exactly when its fault schedule carries
:class:`~repro.faults.NodeCrash` clauses (or when
``MachineConfig.failure_detector`` forces it), so fault-free runs and
non-crash fault runs keep their virtual-time trajectories bit-for-bit.
"""

from .runtime import ResilienceRuntime

__all__ = ["ResilienceRuntime"]
