"""Heartbeat failure detector and crash-recovery coordinator.

One :class:`ResilienceRuntime` per cluster.  Every node gets a
``"resil"`` adapter client whose delivery filter answers pings with
pongs *at the adapter level* -- no CPU thread is involved, which is
exactly what makes the detector useful for restart detection: a
machine whose task threads died in a fail-stop crash still answers
heartbeats once the adapter is back (``NodeRestart``), the same way a
rebooted SP node rejoins group services before any application
process exists on it.

Detection model (phi-accrual flavoured, SRTT-style arithmetic):

* every ``heartbeat_period`` us each live node pings every peer;
* any packet from a peer (ping or pong) refreshes ``last_heard`` and
  feeds an EWMA of inter-arrival gaps (gain 1/8, as the transports'
  SRTT estimator);
* :meth:`suspicion` is the current silence divided by the smoothed
  gap -- a dimensionless phi analogue tests and benches can inspect;
* a peer silent for ``conviction_threshold`` us is *convicted* at the
  next tick, so worst-case detection latency is
  ``conviction_threshold + heartbeat_period``.

Conviction fans out to the registered protocol stacks
(:meth:`attach_stack`) as ``stack.peer_unreachable(peer, err)`` with a
fully-attributed :class:`~repro.errors.PeerUnreachableError`; a later
packet from a convicted peer *absolves* it
(``stack.peer_absolved(peer)`` -- circuit breakers close, but the
stacks keep the peer in their dead sets: reachability of a restarted
machine is not resurrection of the task that died on it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import PeerUnreachableError
from ..machine.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.cluster import Cluster

__all__ = ["ResilienceRuntime"]

#: Wire protocol id of the detector's adapter client.
PROTO = "resil"
#: Heartbeat packets are header-only; 16 bytes covers src/dst/kind.
HEARTBEAT_HEADER_BYTES = 16
#: EWMA gain for the inter-arrival gap estimator (matches the
#: transports' SRTT gain).
GAP_GAIN = 0.125


class _PeerView:
    """One observer's view of one peer."""

    __slots__ = ("last_heard", "gap_ewma", "convicted")

    def __init__(self, now: float, period: float) -> None:
        #: Virtual time any packet from the peer last arrived.  Seeded
        #: with the install instant so a peer that crashes before its
        #: first heartbeat is still convicted on schedule.
        self.last_heard = now
        #: Smoothed inter-arrival gap; seeded with the nominal period.
        self.gap_ewma = period
        self.convicted = False


class ResilienceRuntime:
    """Cluster-wide failure detector (built by ``Cluster.__init__``)."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        cfg = cluster.config
        self.period = cfg.heartbeat_period
        self.threshold = cfg.conviction_threshold
        self.pings_sent = 0
        self.pongs_received = 0
        #: Conviction instants in firing order:
        #: ``(t_us, observer_node, peer_node)``.
        self.convictions: list[tuple[float, int, int]] = []
        #: Absolutions (convicted peer heard again), same shape.
        self.recoveries: list[tuple[float, int, int]] = []
        #: Protocol stacks to notify, per observer node:
        #: ``{node: {proto: stack}}``.  Stacks self-register at init
        #: time (:meth:`attach_stack`); re-initialization replaces.
        self._stacks: dict[int, dict[str, object]] = {}
        self._clients = {}
        now = self.sim.now
        nnodes = cluster.nnodes
        #: ``_views[observer][peer]`` -> :class:`_PeerView`.
        self._views: list[dict[int, _PeerView]] = []
        for node in cluster.nodes:
            nid = node.node_id
            client = node.adapter.attach_client(PROTO)
            # The responder runs purely at delivery time; heartbeats
            # must never spawn dispatcher threads or raise interrupts.
            client.interrupts_enabled = False
            client.delivery_filter = self._responder(nid)
            self._clients[nid] = client
            self._views.append({
                peer: _PeerView(now, self.period)
                for peer in range(nnodes) if peer != nid})
            # Per-node tick chain; first beat one period after install.
            self.sim.call_at(now + self.period, self._tick, nid)
        cluster.metrics.register_collector("resilience", self.metrics)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_stack(self, node_id: int, stack) -> None:
        """Register a protocol stack for conviction fan-out.

        ``stack`` must expose ``peer_unreachable(peer, err)``,
        ``peer_absolved(peer)`` and ``crash_reset()`` plus a
        ``transport.proto`` identity (LAPI and MPL both do).
        """
        proto = stack.transport.proto
        self._stacks.setdefault(node_id, {})[proto] = stack

    def _responder(self, nid: int):
        def on_packet(packet) -> bool:
            self._on_packet(nid, packet)
            return True
        return on_packet

    # ------------------------------------------------------------------
    # heartbeat plumbing
    # ------------------------------------------------------------------
    def _on_packet(self, nid: int, packet) -> None:
        """A heartbeat packet reached ``nid``'s adapter."""
        if packet.kind == "ping":
            # Adapter-level responder: works with every task thread on
            # this machine dead, which is what restart detection needs.
            self.cluster.nodes[nid].adapter.inject_control(
                Packet(nid, packet.src, PROTO, "pong",
                       HEARTBEAT_HEADER_BYTES))
        else:
            self.pongs_received += 1
        # Pings are evidence of life too; both kinds refresh the view.
        self._heard(nid, packet.src, self.sim.now)

    def _heard(self, observer: int, peer: int, now: float) -> None:
        view = self._views[observer].get(peer)
        if view is None:  # pragma: no cover - defensive
            return
        gap = now - view.last_heard
        view.last_heard = now
        view.gap_ewma += (gap - view.gap_ewma) * GAP_GAIN
        if view.convicted:
            self._absolve(observer, peer, view, now)

    def _tick(self, nid: int) -> None:
        now = self.sim.now
        adapter = self.cluster.nodes[nid].adapter
        if not adapter.crashed:
            views = self._views[nid]
            for peer in sorted(views):
                adapter.inject_control(
                    Packet(nid, peer, PROTO, "ping",
                           HEARTBEAT_HEADER_BYTES))
                self.pings_sent += 1
            for peer in sorted(views):
                view = views[peer]
                if (not view.convicted
                        and now - view.last_heard >= self.threshold):
                    self._convict(nid, peer, view, now)
        # The chain survives this node's own crash (ticks are kernel
        # callbacks, not CPU threads) so heartbeats resume by
        # themselves after a restart.
        self.sim.call_at(now + self.period, self._tick, nid)

    # ------------------------------------------------------------------
    # conviction / absolution
    # ------------------------------------------------------------------
    def _convict(self, observer: int, peer: int, view: _PeerView,
                 now: float) -> None:
        view.convicted = True
        self.convictions.append((now, observer, peer))
        silent = now - view.last_heard
        sp = self.sim.spans
        if sp is not None:
            sp.emit(observer, "resilience", "convict", "fault", now, now,
                    peer=peer, silent_us=silent)
        flight = self.sim.flight
        if flight is not None:
            flight.note(observer, "resilience", "peer.convicted",
                        peer=peer, silent_us=silent)
            # One black-box dump per dead peer: the first observer to
            # convict captures the lead-up for the whole cluster.
            flight.trigger("peer-convicted", key=("convict", peer),
                           observer=observer, peer=peer,
                           silent_us=silent)
        for proto in sorted(self._stacks.get(observer, {})):
            stack = self._stacks[observer][proto]
            err = PeerUnreachableError(
                f"task {observer}: peer {peer} convicted by the failure"
                f" detector (silent for {silent:.0f}us, threshold"
                f" {self.threshold:.0f}us)")
            err.proto = proto
            err.node = observer
            err.peer = peer
            err.via = "heartbeat"
            err.last_heard_us = view.last_heard
            err.convicted_us = now
            stack.peer_unreachable(peer, err)

    def _absolve(self, observer: int, peer: int, view: _PeerView,
                 now: float) -> None:
        view.convicted = False
        self.recoveries.append((now, observer, peer))
        flight = self.sim.flight
        if flight is not None:
            flight.note(observer, "resilience", "peer.absolved",
                        peer=peer)
        for proto in sorted(self._stacks.get(observer, {})):
            self._stacks[observer][proto].peer_absolved(peer)

    # ------------------------------------------------------------------
    # crash/restart hooks (called by repro.faults.FaultRuntime)
    # ------------------------------------------------------------------
    def node_crashed(self, node_id: int, now: float) -> None:
        """``node_id`` fail-stopped; detection itself stays heartbeat-
        driven (crashes are *observed*, never short-circuited)."""

    def node_restarted(self, node_id: int, now: float) -> None:
        """``node_id``'s machine is back (task threads stay dead)."""
        # Adapter.crash() cleared every client's hooks; re-install the
        # responder so this machine answers heartbeats again.
        self._clients[node_id].delivery_filter = self._responder(node_id)
        # The restarted node was deaf while down: refresh its own views
        # so it does not convict the whole cluster at its next tick.
        for view in self._views[node_id].values():
            view.last_heard = now
        # Fail-stop semantics: whatever protocol state the dead task
        # left behind is gone.
        for proto in sorted(self._stacks.get(node_id, {})):
            self._stacks[node_id][proto].crash_reset()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def suspicion(self, observer: int, peer: int) -> float:
        """Current phi-analogue suspicion of ``peer`` at ``observer``:
        silence divided by the smoothed inter-arrival gap."""
        view = self._views[observer][peer]
        if view.gap_ewma <= 0.0:
            return 0.0
        return (self.sim.now - view.last_heard) / view.gap_ewma

    def is_convicted(self, observer: int, peer: int) -> bool:
        return self._views[observer][peer].convicted

    def metrics(self) -> dict:
        """Counter block for the observability registry (collector).

        Exists only when the detector is armed, so fault-free metrics
        snapshots are unchanged.
        """
        return {
            "pings_sent": self.pings_sent,
            "pongs_received": self.pongs_received,
            "convictions": len(self.convictions),
            "recoveries": len(self.recoveries),
            "peers_convicted_now": sum(
                1 for views in self._views
                for view in views.values() if view.convicted),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ResilienceRuntime nodes={self.cluster.nnodes}"
                f" period={self.period} threshold={self.threshold}"
                f" convictions={len(self.convictions)}>")
