"""Reproduction of *Performance and Experience with LAPI* (IPPS 1998).

This package contains a complete, self-contained software model of the
systems the paper describes:

* :mod:`repro.sim` -- a discrete-event simulation kernel (virtual time in
  microseconds).
* :mod:`repro.machine` -- the IBM RS/6000 SP machine model: P2SC nodes,
  switch adapters, and the multistage packet-switched SP switch.
* :mod:`repro.core` -- **LAPI**, the paper's contribution: active
  messages with decoupled header/completion handlers, Put/Get remote
  memory copy, atomic Rmw, counters, fences, polling and interrupt modes.
* :mod:`repro.mpl` -- the MPI/MPL message-passing baseline (eager and
  rendezvous protocols, ``rcvncall`` interrupt receive).
* :mod:`repro.ga` -- the Global Arrays toolkit implemented on both LAPI
  and MPL backends with the paper's hybrid protocols.
* :mod:`repro.apps` -- application kernels (SCF, MD, matrix multiply)
  exercising GA the way the paper's chemistry codes do.
* :mod:`repro.bench` -- harnesses regenerating every table and figure of
  the paper's evaluation.

Quick start::

    from repro.machine import Cluster
    from repro.machine.config import SP_1998

    def hello(task):
        if task.rank == 0:
            yield from task.lapi.put(1, b"hi world", tgt_addr)
        ...

    cluster = Cluster(nnodes=2, config=SP_1998)
    cluster.run_job(hello)

See ``examples/quickstart.py`` for a complete runnable program.
"""

from .errors import (
    AllocationError,
    DeadlockError,
    GaError,
    LapiError,
    MachineError,
    MemoryFault,
    MplError,
    NetworkError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "DeadlockError",
    "GaError",
    "LapiError",
    "MachineError",
    "MemoryFault",
    "MplError",
    "NetworkError",
    "ReproError",
    "SimulationError",
    "__version__",
]
