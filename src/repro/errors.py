"""Exception hierarchy shared across the :mod:`repro` packages.

Every layer of the stack (simulation kernel, machine model, LAPI, MPL,
Global Arrays) raises exceptions derived from :class:`ReproError` so that
callers can catch reproduction-specific failures without masking genuine
Python bugs such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "MachineError",
    "MemoryFault",
    "AllocationError",
    "NetworkError",
    "PeerUnreachableError",
    "LapiError",
    "MplError",
    "GaError",
]


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class SimulationError(ReproError):
    """An invariant of the discrete-event kernel was violated."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`repro.sim.Simulator.run` when ``fail_on_starvation``
    is enabled and live processes remain blocked with no scheduled event
    that could ever wake them -- the simulated system has deadlocked.
    """


class MachineError(ReproError):
    """Base class for errors in the simulated SP machine model."""


class MemoryFault(MachineError):
    """An access touched simulated memory outside any live allocation."""


class AllocationError(MachineError):
    """The simulated heap could not satisfy an allocation request."""


class NetworkError(MachineError):
    """A packet violated switch/adapter invariants (bad route, oversize...)."""


class PeerUnreachableError(NetworkError):
    """The reliable transport gave up on a peer after exhausting
    retransmissions.

    The reliable transport raises it after exhausting its retry budget
    toward a peer; the failure detector (``repro.resilience``) raises
    it on *conviction* -- a peer silent past the configured threshold.

    Constructed with the message only (so the exception survives
    pickling across sweep-engine worker processes); the transport or
    detector sets the structured context as attributes after
    construction: ``proto``, ``node``, ``peer``, ``attempts``, and --
    when the detector convicted -- ``via`` (``"heartbeat"`` vs
    ``"retries"``), ``last_heard_us`` (virtual time the peer was last
    heard from) and ``convicted_us`` (conviction instant).
    """

    proto: str = ""
    node: int = -1
    peer: int = -1
    attempts: int = 0
    via: str = "retries"
    last_heard_us: float = -1.0
    convicted_us: float = -1.0


class LapiError(ReproError):
    """An error reported by the simulated LAPI communication library."""


class MplError(ReproError):
    """An error reported by the simulated MPL/MPI message-passing library."""


class GaError(ReproError):
    """An error reported by the simulated Global Arrays toolkit."""
