"""FIFO message channels in simulated time.

:class:`Channel` is the glue between asynchronous producers and consumers
inside the machine model -- e.g. the adapter's receive FIFO feeding the
LAPI dispatcher, or the switch feeding an adapter.  A channel may be
bounded; a bounded channel can be configured to *drop* on overflow (how a
real adapter FIFO behaves, exercising the retransmission path) or to
back-pressure the producer.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["Channel"]


class Channel:
    """A FIFO queue whose ``get`` blocks in virtual time.

    Parameters
    ----------
    sim:
        Owning simulator.
    capacity:
        Maximum queued items; ``None`` means unbounded.
    drop_on_overflow:
        When True, ``put`` on a full channel discards the item and calls
        ``on_drop`` (if set) instead of raising.
    """

    def __init__(self, sim: "Simulator", name: str = "chan",
                 capacity: Optional[int] = None,
                 drop_on_overflow: bool = False) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError("channel capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.drop_on_overflow = drop_on_overflow
        #: Callback invoked with the dropped item on overflow.
        self.on_drop: Optional[Callable[[Any], None]] = None
        #: Callback invoked with each successfully enqueued item.
        self.on_put: Optional[Callable[[Any], None]] = None
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.dropped: int = 0
        self.total_put: int = 0
        # Formatted once: get() runs per packet on the hot path.
        self._get_name = f"get:{name}"

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    # ------------------------------------------------------------------
    def put(self, item: Any) -> bool:
        """Enqueue ``item``; returns False if it was dropped.

        If a consumer is blocked in :meth:`get`, the item is handed to it
        directly (the queue never holds items while getters wait).
        """
        if self._getters:
            getter = self._getters.popleft()
            self.total_put += 1
            if self.on_put is not None:
                self.on_put(item)
            getter.succeed(item)
            return True
        if self.full:
            if self.drop_on_overflow:
                self.dropped += 1
                if self.on_drop is not None:
                    self.on_drop(item)
                return False
            raise SimulationError(
                f"channel {self.name!r} overflow (capacity={self.capacity})")
        self._items.append(item)
        self.total_put += 1
        if self.on_put is not None:
            self.on_put(item)
        return True

    def get(self) -> Event:
        """Return an event that fires with the next item.

        With items already queued the get completes synchronously (the
        returned event is already processed and a process yielding it
        continues inline; see :meth:`repro.sim.events.Event.completed`).
        """
        if self._items:
            return Event.completed(self.sim, self._items.popleft(),
                                   name=self._get_name)
        ev = Event(self.sim, name=self._get_name)
        self._getters.append(ev)
        return ev

    def cancel_get(self, getter: Event) -> None:
        """Withdraw a pending :meth:`get` (e.g. a timed-out wait).

        Without cancellation an abandoned getter would silently steal
        the next item.  Cancelling a getter that already received an
        item is an error.
        """
        if getter.triggered:
            raise SimulationError(
                f"cannot cancel a satisfied get on {self.name!r}")
        try:
            self._getters.remove(getter)
        except ValueError:
            raise SimulationError(
                f"get event not pending on channel {self.name!r}")

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def iter_items(self):
        """Iterate queued items in FIFO order without removing them.

        Consumers that batch work (e.g. the adapter TX engine peeling a
        packet train off its FIFO) inspect the backlog through this
        instead of reaching into channel internals.
        """
        return iter(self._items)

    def peek(self) -> Any:
        """Return the head item without removing it."""
        if not self._items:
            raise SimulationError(f"peek on empty channel {self.name!r}")
        return self._items[0]

    def drain(self) -> list[Any]:
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        return items

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Channel {self.name} {len(self._items)} queued,"
                f" {len(self._getters)} waiting>")
