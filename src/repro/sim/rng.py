"""Deterministic, named random-number streams.

Every stochastic element of the machine model (adaptive route selection,
packet-loss injection, benchmark workloads) draws from its own named
stream, so that adding randomness to one component never perturbs another
and whole-simulation results are reproducible from a single seed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string; the per-stream seed is derived from
    the registry seed and a CRC of the key, so streams are stable across
    runs and independent of creation order.
    """

    def __init__(self, seed: int = 0xC0FFEE) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, key: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``key``."""
        gen = self._streams.get(key)
        if gen is None:
            sub = zlib.crc32(key.encode("utf-8")) & 0xFFFFFFFF
            gen = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed,
                                       spawn_key=(sub,)))
            self._streams[key] = gen
        return gen

    def reset(self) -> None:
        """Forget all streams; next use re-creates them from scratch."""
        self._streams.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed:#x} streams={len(self._streams)}>"
