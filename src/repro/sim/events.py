"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes (see :mod:`repro.sim.process`) suspend themselves by yielding an
event and are resumed by the kernel once that event has *triggered* --
either successfully, carrying a value, or with a failure, carrying an
exception that is re-raised inside every waiting process.

The design follows the classic SimPy architecture but is implemented from
scratch and trimmed to exactly what the SP machine model needs:

* :class:`Event` -- manually triggered via :meth:`Event.succeed` /
  :meth:`Event.fail`.
* :class:`Timeout` -- triggers after a fixed delay; the workhorse used by
  the machine model to represent latencies and occupancies.
* :class:`AnyOf` / :class:`AllOf` -- composite conditions.

All times are in **microseconds** of virtual time, matching the units the
paper reports (latency tables in us, bandwidth in MB/s == bytes/us).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["PENDING", "FLOAT_WAKE", "Event", "Timeout", "AnyOf", "AllOf",
           "ConditionValue"]


class _Pending:
    """Sentinel for the value of an event that has not triggered yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


#: Singleton sentinel distinguishing "no value yet" from ``None`` values.
PENDING = _Pending()


class _FloatWake:
    """Singleton trigger fed to a process resuming from a bare-float yield.

    Processes may yield a bare number instead of a :class:`Timeout` to
    sleep that many microseconds (the kernel's allocation-free sleep
    path).  This object mimics a successfully-triggered, valueless
    event: ``Process._resume`` only reads ``_ok`` and ``_value`` from
    its trigger, both class attributes here, so one immortal instance
    serves every float sleep in every simulator.
    """

    __slots__ = ()
    _ok = True
    _value = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<float-sleep wake>"


#: Shared trigger for all float-yield wakeups (see ``Process._resume``).
FLOAT_WAKE = _FloatWake()


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.sim.kernel.Simulator`.
    name:
        Optional label used in traces and error messages.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name")

    #: Queue-entry kind for the kernel's dispatch table (see
    #: ``repro.sim.kernel._DISPATCH``): 0 = fast timer, 1 = triggered
    #: event awaiting callback processing, 2 = timeout that must trigger
    #: from its held-aside payload when popped.  A class attribute so
    #: ``__slots__`` instances stay field-free; subclasses that need a
    #: different pop-time action override it.
    _qk = 1

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: Callables invoked with this event when it is processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None

    # ------------------------------------------------------------------
    # state inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run and the event is finished."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once :attr:`triggered`."""
        if self._ok is None:
            raise SimulationError(f"event {self!r} has not triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's outcome: its payload, or the failure exception."""
        if self._value is PENDING:
            raise SimulationError(f"event {self!r} has not triggered yet")
        return self._value

    # ------------------------------------------------------------------
    # triggering
    # ------------------------------------------------------------------
    @classmethod
    def completed(cls, sim: "Simulator", value: Any = None,
                  name: str = "") -> "Event":
        """Create an event that already succeeded *and* processed.

        The synchronous-completion fast path: a primitive whose wait is
        satisfiable immediately (an uncontended lock, a semaphore with
        credit, a channel with items queued) returns one of these
        instead of ``succeed()``-ing a fresh event through the kernel
        queue.  ``Process._resume`` consumes processed events inline, so
        the waiter continues in the same kernel step -- no event-queue
        round trip, no callbacks list.
        """
        ev = cls.__new__(cls)
        ev.sim = sim
        ev.name = name
        ev.callbacks = None  # already processed
        ev._value = value
        ev._ok = True
        return ev

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; ``exc`` propagates to waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not PENDING:
            raise SimulationError(f"event {self!r} has already been triggered")
        self._ok = False
        self._value = exc
        self.sim._enqueue_triggered(self)
        return self

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or self.__class__.__name__
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation.

    Created through :meth:`repro.sim.kernel.Simulator.timeout`; the kernel
    schedules it immediately upon construction.
    """

    __slots__ = ("delay", "_pending_value")

    #: Timeouts sit in the queue untriggered; the kernel's dispatch
    #: table routes kind 2 through the trigger-from-pending path.
    _qk = 2

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "", at: Optional[float] = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # The default name is built lazily in __repr__: timeouts are the
        # single most-allocated object in a simulation, and untraced runs
        # must not pay for a format call per packet.
        super().__init__(sim, name=name)
        self.delay = delay
        # The payload is held aside and only becomes the event's value when
        # the kernel pops the timeout at its due time; until then the event
        # reports untriggered, which is what conditions and waiters expect.
        self._pending_value = value
        # ``at`` pins the absolute due time exactly (used by
        # Simulator.timeout_at); the default path keeps the historical
        # now + delay float round trip.
        sim._schedule_at(sim.now + delay if at is None else at, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = self.name or f"timeout({self.delay})"
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{label} {state} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of the sub-events that fired for a condition.

    Behaves like a read-only dict keyed by the original event objects,
    preserving the order in which sub-events were given to the condition.
    """

    __slots__ = ("events",)

    def __init__(self, events: list[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        # Identity scan, not ``in``: list containment falls back to
        # ``==`` per element, which would invoke payload equality on
        # value-comparable event subclasses and costs a rich-compare
        # dispatch per entry either way.  Keys are the original event
        # *objects*, so identity is the correct relation.
        for ev in self.events:
            if ev is key:
                return ev.value
        raise KeyError(repr(key))

    def __contains__(self, key: Event) -> bool:
        for ev in self.events:
            if ev is key:
                return True
        return False

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def todict(self) -> dict[Event, Any]:
        """Return a plain dict of event -> value."""
        return {ev: ev.value for ev in self.events}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class _Condition(Event):
    """Common machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 name: str = "") -> None:
        super().__init__(sim, name=name)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError(
                    "cannot mix events from different simulators")
        # Evaluate already-triggered events eagerly so that conditions over
        # finished events fire without waiting a tick.
        for ev in self._events:
            if ev.triggered:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self._events and not self.triggered:
            # Trivially satisfied empty condition.
            self.succeed(ConditionValue([]))

    def _matched(self) -> list[Event]:
        return [ev for ev in self._events if ev.triggered]

    def _check(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(ConditionValue(self._matched()))

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any one of the given events triggers."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        events = list(events)
        if not events:
            raise SimulationError("AnyOf() requires at least one event")
        super().__init__(sim, events, name="AnyOf")

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Triggers once every one of the given events has triggered."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, list(events), name="AllOf")

    def _satisfied(self) -> bool:
        return self._count >= len(self._events)
