"""Lightweight structured tracing for simulations.

A :class:`Tracer` collects ``(time, source, category, message)`` records.
It exists for debugging protocol interactions (e.g. watching a LAPI
multi-packet message reassemble out of order) and for tests that assert on
event sequences.  Tracing is off by default and costs nothing when
disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry, in virtual microseconds."""

    time: float
    source: str
    category: str
    message: str

    def __str__(self) -> str:
        return f"[{self.time:12.3f}us] {self.source:<18s} {self.category:<10s} {self.message}"


class Tracer:
    """Collects trace records, optionally filtered by category.

    Parameters
    ----------
    categories:
        If given, only these categories are recorded.
    echo:
        When True, records are printed as they arrive (debugging aid).
    limit:
        Hard cap on stored records to bound memory in long runs.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 echo: bool = False, limit: int = 1_000_000) -> None:
        self.records: list[TraceRecord] = []
        self.categories = frozenset(categories) if categories else None
        self.echo = echo
        self.limit = limit
        self.suppressed = 0

    def log(self, time: float, source: str, category: str,
            message: str) -> None:
        """Record one entry (subject to category filter and cap)."""
        if self.categories is not None and category not in self.categories:
            return
        if len(self.records) >= self.limit:
            self.suppressed += 1
            return
        rec = TraceRecord(time, source, category, message)
        self.records.append(rec)
        if self.echo:  # pragma: no cover - interactive aid
            print(rec)

    def kernel_event(self, time: float, event: Any) -> None:
        """Hook invoked by the kernel for every processed event."""
        self.log(time, "kernel", "event", repr(event))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.suppressed = 0

    def __len__(self) -> int:
        return len(self.records)
