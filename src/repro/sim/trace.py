"""Lightweight structured tracing for simulations.

A :class:`Tracer` collects ``(time, source, category, message, fields)``
records.  It exists for debugging protocol interactions (e.g. watching a
LAPI multi-packet message reassemble out of order), for tests that
assert on event sequences, and -- through :mod:`repro.obs.export` -- for
machine-readable JSONL trace files.  Tracing is off by default and
costs nothing when disabled: callers on hot paths gate any expensive
record construction on :meth:`Tracer.wants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

__all__ = ["TraceRecord", "Tracer"]

_NO_FIELDS: Mapping[str, Any] = {}


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry, in virtual microseconds.

    ``fields`` carries optional structured key/value detail (packet
    src/dst/kind, sequence numbers...); the JSONL exporter emits it
    verbatim, while ``message`` stays the human-readable summary.
    """

    time: float
    source: str
    category: str
    message: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        tail = ""
        if self.fields:
            tail = " " + " ".join(f"{k}={v}"
                                  for k, v in self.fields.items())
        return (f"[{self.time:12.3f}us] {self.source:<18s}"
                f" {self.category:<10s} {self.message}{tail}")


class Tracer:
    """Collects trace records, optionally filtered by category.

    Parameters
    ----------
    categories:
        If given, only these categories are recorded.
    echo:
        When True, records are printed as they arrive (debugging aid).
    limit:
        Hard cap on stored records to bound memory in long runs.
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 echo: bool = False, limit: int = 1_000_000) -> None:
        self.records: list[TraceRecord] = []
        self.categories = frozenset(categories) if categories else None
        self.echo = echo
        self.limit = limit
        self.suppressed = 0

    def wants(self, category: str) -> bool:
        """Would a record of ``category`` be stored right now?

        Hot paths check this before building expensive record content
        (``repr`` of packets/events), so suppressed records cost
        nothing.
        """
        return ((self.categories is None or category in self.categories)
                and len(self.records) < self.limit)

    def log(self, time: float, source: str, category: str,
            message: str, **fields: Any) -> None:
        """Record one entry (subject to category filter and cap)."""
        if self.categories is not None and category not in self.categories:
            return
        if len(self.records) >= self.limit:
            self.suppressed += 1
            return
        rec = TraceRecord(time, source, category, message,
                          fields if fields else _NO_FIELDS)
        self.records.append(rec)
        if self.echo:  # pragma: no cover - interactive aid
            print(rec)

    def kernel_event(self, time: float, event: Any) -> None:
        """Hook invoked by the kernel for every processed event.

        The filter/cap check runs *before* ``repr(event)`` is built:
        on long runs with kernel events filtered out, this hook must
        not format millions of strings that are immediately discarded.
        """
        if self.categories is not None and "event" not in self.categories:
            return
        if len(self.records) >= self.limit:
            self.suppressed += 1
            return
        self.log(time, "kernel", "event", repr(event))

    def by_category(self, category: str) -> list[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.suppressed = 0

    def __len__(self) -> int:
        return len(self.records)
