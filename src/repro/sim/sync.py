"""Synchronization primitives living in simulated time.

These are *model-level* primitives: a :class:`SimLock` held by one
simulated thread blocks other simulated threads in virtual time, with zero
host-Python concurrency involved.  They are used by the machine model
(CPU run queues), by LAPI internals, and by Global Arrays (the Pthread
mutex protecting atomic accumulate in section 5.3.3 of the paper).

All wait queues are FIFO within a priority class, which keeps every
simulation deterministic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Optional

from ..errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["SimLock", "Semaphore", "WaitSet"]


class SimLock:
    """A mutex with a priority wait queue.

    ``acquire`` returns an :class:`Event` that fires when the caller holds
    the lock; lower ``priority`` values are served first, FIFO within a
    priority.  The lock records an opaque ``owner`` tag purely for
    debugging and error messages.
    """

    def __init__(self, sim: "Simulator", name: str = "lock") -> None:
        self.sim = sim
        self.name = name
        self._locked = False
        self._owner: Any = None
        self._waiters: list[tuple[int, int, Event, Any]] = []
        self._seq = 0
        # Formatted once: acquire() runs on every CPU grab (hot path).
        self._acquire_name = f"acquire:{name}"

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def owner(self) -> Any:
        return self._owner

    def acquire(self, owner: Any = None, priority: int = 0) -> Event:
        """Request the lock; the returned event fires once it is held.

        An uncontended acquire completes synchronously (the returned
        event is already processed and the waiter continues inline);
        the lock state itself was always taken synchronously, so this
        only skips the kernel round trip of the wakeup.
        """
        if not self._locked:
            self._locked = True
            self._owner = owner
            return Event.completed(self.sim, self, name=self._acquire_name)
        ev = Event(self.sim, name=self._acquire_name)
        self._seq += 1
        heapq.heappush(self._waiters, (priority, self._seq, ev, owner))
        return ev

    def release(self) -> None:
        """Release the lock, handing it to the best-priority waiter."""
        if not self._locked:
            raise SimulationError(f"release of unlocked {self.name!r}")
        if self._waiters:
            _, _, ev, owner = heapq.heappop(self._waiters)
            self._owner = owner
            ev.succeed(self)
        else:
            self._locked = False
            self._owner = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"held by {self._owner!r}" if self._locked else "free"
        return f"<SimLock {self.name} {state}, {len(self._waiters)} waiting>"


class Semaphore:
    """A counting semaphore with FIFO waiters."""

    def __init__(self, sim: "Simulator", value: int = 0,
                 name: str = "sem") -> None:
        if value < 0:
            raise SimulationError("semaphore initial value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: list[Event] = []
        # Formatted once: wait() runs per packet for credits/windows.
        self._wait_name = f"wait:{name}"

    @property
    def value(self) -> int:
        return self._value

    def post(self, count: int = 1) -> None:
        """Increment the semaphore, waking up to ``count`` waiters."""
        if count <= 0:
            raise SimulationError("post count must be positive")
        for _ in range(count):
            if self._waiters:
                self._waiters.pop(0).succeed(None)
            else:
                self._value += 1

    def wait(self) -> Event:
        """Decrement; the returned event fires once a unit was taken.

        When a unit is available the wait completes synchronously (the
        returned event is already processed; see :meth:`SimLock.acquire`).
        """
        if self._value > 0:
            self._value -= 1
            return Event.completed(self.sim, None, name=self._wait_name)
        ev = Event(self.sim, name=self._wait_name)
        self._waiters.append(ev)
        return ev

    def try_wait(self) -> bool:
        """Non-blocking decrement; True on success."""
        if self._value > 0:
            self._value -= 1
            return True
        return False


class WaitSet:
    """A broadcast wakeup point: many waiters, woken all at once.

    Used for condition-variable-like patterns ("wake everyone polling this
    counter").  Each :meth:`wait` returns a fresh event; :meth:`notify_all`
    fires every outstanding one with ``value``.
    """

    def __init__(self, sim: "Simulator", name: str = "waitset") -> None:
        self.sim = sim
        self.name = name
        self._waiters: list[Event] = []
        self._wait_name = f"wait:{name}"

    def __len__(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = Event(self.sim, name=self._wait_name)
        self._waiters.append(ev)
        return ev

    def notify_all(self, value: Optional[Any] = None) -> int:
        """Fire all pending waits; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        return len(waiters)
