"""Discrete-event simulation kernel used by the SP machine model.

Public surface:

* :class:`Simulator` -- clock, pending-event queue (calendar-queue or
  heap backend), process launcher.
* :class:`Event`, :class:`Timeout`, :class:`AnyOf`, :class:`AllOf` --
  awaitable occurrences.
* :class:`Process`, :class:`Interrupt` -- generator-based processes.
* :class:`SimLock`, :class:`Semaphore`, :class:`WaitSet` -- virtual-time
  synchronization.
* :class:`Channel` -- FIFO queues with optional bounded/dropping behavior.
* :class:`RngRegistry` -- deterministic named randomness.
* :class:`Tracer` -- structured debugging traces.
"""

from .calendar import CalendarQueue
from .channel import Channel
from .events import AllOf, AnyOf, ConditionValue, Event, PENDING, Timeout
from .kernel import SCHEDULERS, Simulator
from .process import Interrupt, Process, ProcessGen
from .rng import RngRegistry
from .sync import Semaphore, SimLock, WaitSet
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Channel",
    "ConditionValue",
    "Event",
    "Interrupt",
    "PENDING",
    "Process",
    "ProcessGen",
    "RngRegistry",
    "SCHEDULERS",
    "Semaphore",
    "SimLock",
    "Simulator",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "WaitSet",
]
