"""Calendar-queue event scheduler for the simulation kernel.

The seed kernel kept every pending event in one binary heap, paying
O(log n) per insert/extract.  The timer distributions this machine model
generates are heavily short-horizon (wire delivery, DMA completions,
CPU bursts of a few microseconds) with a thin far tail (retransmission
timers), which is exactly the regime Brown's calendar queue was designed
for: hash events into fixed-width time buckets ("days") and pay
amortized O(1) per operation.

This implementation adapts the classic design in two ways that matter
for a pure-Python kernel:

* **Active-day heap instead of a linear year scan.**  Brown's queue
  walks empty buckets to find the next event, which degenerates when
  the schedule is sparse (a lone retransmission timer hundreds of
  microseconds out).  Here every *nonempty* day sits in a small binary
  heap of day numbers, so finding the next populated bucket is O(log d)
  in the number of distinct nonempty days -- typically a handful --
  while pushes and pops within a day stay O(1) list appends.  Day
  numbers are absolute (monotonically increasing ints), so there is no
  year-wrap or overflow machinery at all.
* **A same-instant FIFO lane.**  Roughly a third of all pushes in a
  busy simulation are events scheduled at exactly the current time
  (already-triggered events queued for callback processing).  Those
  bypass the buckets entirely and land in a deque that preserves FIFO
  order by construction.  The lane stores bare items -- no ``(when,
  seq, item)`` tuple and no sequence number, since arrival order *is*
  sequence order and the ``when`` of every lane entry is the lane's
  single stamp.

Hot-path note
-------------
:class:`repro.sim.kernel.Simulator` inlines these push/pop operations
field-for-field in ``call_at`` / ``_schedule_at`` / ``_enqueue_triggered``
/ ``step`` (a Python method call per event is measurable at millions of
events per run).  The methods here are the *reference* implementation:
unit tests drive them directly and randomized tests cross-validate the
kernel against them, so any change here must be mirrored in kernel.py
and vice versa.

Ordering contract
-----------------
``pop`` always returns the globally minimal ``(when, seq)`` entry --
byte-identical to the heap scheduler's ordering, which the golden
equivalence tests assert end-to-end:

* A bucket holds every entry with ``when`` in ``[day*w, (day+1)*w)``,
  so all of day ``d`` strictly precedes all of day ``d+1`` in ``when``
  order, and equal ``when`` values always share a bucket.
* A bucket is sorted by ``(when, seq)`` when it becomes the active
  (minimal) day; later pushes into the active day insert in order via
  ``bisect``.
* The same-instant lane only ever holds entries pushed while the clock
  sat at ``when``; any *bucketed* entry with the same ``when`` was
  pushed strictly earlier (while the clock was behind it) and therefore
  carries a smaller ``seq``, so draining buckets-first at equal times
  preserves global FIFO.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from heapq import heappop, heappush
from typing import Any, Optional

__all__ = ["CalendarQueue", "DEFAULT_BUCKET_WIDTH"]

#: Bucket ("day") width in virtual microseconds.  Sized so a day holds
#: a handful of the machine model's densely clustered events (packet
#: serialization runs at ~0.5-1.5 us spacing): wide enough that pops
#: rarely cross day boundaries (each crossing pays a seek + sort),
#: narrow enough that in-bucket inserts stay cheap.  A power of two
#: keeps ``when / width`` exact.
DEFAULT_BUCKET_WIDTH = 8.0

_INF = float("inf")


class CalendarQueue:
    """Bucketed priority queue over ``(when, seq, item)`` entries.

    ``seq`` must be unique and monotonically increasing across pushes
    (the kernel's event sequence counter), which is what makes the
    total order exact: entry tuples never compare beyond ``(when,
    seq)``, so items themselves need not be comparable.
    """

    __slots__ = ("_inv_width", "_buckets", "_days", "_active_day",
                 "_active", "_pos", "_nowq", "_now_stamp", "_len")

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if not (bucket_width > 0):
            raise ValueError(f"bucket_width must be > 0: {bucket_width}")
        self._inv_width = 1.0 / bucket_width
        #: day number -> list of (when, seq, item); only the active
        #: (minimal) day's list is kept sorted.
        self._buckets: dict[int, list] = {}
        #: Min-heap of nonempty day numbers (each exactly once).
        self._days: list[int] = []
        self._active_day = -1
        #: The active (minimal) day's sorted list, or None.  While set,
        #: ``_active[_pos]`` is the minimal bucketed entry -- the pop/peek
        #: fast path -- because ``push`` retires it whenever an earlier
        #: day appears.
        self._active: Optional[list] = None
        #: Consumed prefix length of the active day's sorted list.
        self._pos = 0
        #: FIFO lane of entries pushed at exactly the current time.
        self._nowq: deque = deque()
        self._now_stamp = -1.0
        self._len = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    # ------------------------------------------------------------------
    def push(self, when: float, seq: int, item: Any, now: float) -> None:
        """Insert an entry; ``now`` is the caller's current clock."""
        self._len += 1
        if when == now:
            # Same-instant lane: bare item, FIFO order == seq order.
            nq = self._nowq
            if not nq:
                self._now_stamp = now
            nq.append(item)
            return
        day = int(when * self._inv_width)
        b = self._buckets.get(day)
        if b is None:
            self._buckets[day] = [(when, seq, item)]
            heappush(self._days, day)
            if day < self._active_day:
                # An earlier day appeared: the cached active bucket is no
                # longer the minimum; drop to the seek path.
                self._retire_active()
        elif day == self._active_day:
            # The active day is sorted up to its consumed prefix; keep
            # the unconsumed tail ordered.
            insort(b, (when, seq, item), self._pos)
        else:
            b.append((when, seq, item))

    # ------------------------------------------------------------------
    def _seek(self) -> Optional[list]:
        """Position (active day, pos) at the minimal bucketed entry.

        Returns the active day's sorted list, or None when no bucketed
        entries remain.  Advancing past drained days and re-targeting
        when an earlier day appears are both handled here.
        """
        days = self._days
        buckets = self._buckets
        while days:
            day = days[0]
            if day != self._active_day:
                self._retire_active()
                b = buckets[day]
                b.sort()
                self._active_day = day
                self._active = b
                self._pos = 0
                return b
            b = buckets[day]
            if self._pos < len(b):
                return b
            del buckets[day]
            heappop(days)
            self._active_day = -1
            self._active = None
            self._pos = 0
        return None

    def _retire_active(self) -> None:
        """Compact and deactivate the current active day (if any).

        Called when a newly-pushed earlier day takes over as the
        minimum: the consumed prefix is dropped so that re-activating
        this day later re-sorts only live entries.
        """
        day = self._active_day
        if day >= 0:
            b = self._buckets.get(day)
            if b is not None and self._pos:
                del b[:self._pos]
            self._active_day = -1
            self._active = None
            self._pos = 0

    # ------------------------------------------------------------------
    def peek_when(self) -> float:
        """Time of the minimal entry, or ``inf`` when empty."""
        nq = self._nowq
        if nq:
            if len(nq) != self._len:
                b = self._active
                pos = self._pos
                if b is None or pos >= len(b):
                    b = self._seek()
                    pos = self._pos
                if b is not None:
                    when = b[pos][0]
                    if when <= self._now_stamp:
                        return when
            return self._now_stamp
        b = self._active
        pos = self._pos
        if b is not None and pos < len(b):
            return b[pos][0]
        b = self._seek()
        return b[self._pos][0] if b is not None else _INF

    def pop(self) -> tuple:
        """Remove and return the globally minimal ``(when, seq, item)``.

        Same-instant lane pops report ``seq`` as None (the lane does not
        store sequence numbers).  Raises IndexError when empty (callers
        check emptiness first, mirroring ``heappop`` semantics).
        """
        nq = self._nowq
        if nq:
            if len(nq) != self._len:
                # Bucketed entries at the same instant were pushed
                # earlier (smaller seq) and must drain first.
                b = self._active
                pos = self._pos
                if b is None or pos >= len(b):
                    b = self._seek()
                    pos = self._pos
                if b is not None:
                    entry = b[pos]
                    if entry[0] <= self._now_stamp:
                        self._pos = pos + 1
                        self._len -= 1
                        return entry
            self._len -= 1
            return (self._now_stamp, None, nq.popleft())
        b = self._active
        pos = self._pos
        if b is not None and pos < len(b):
            self._pos = pos + 1
            self._len -= 1
            return b[pos]
        b = self._seek()
        if b is None:
            raise IndexError("pop from an empty CalendarQueue")
        entry = b[self._pos]
        self._pos += 1
        self._len -= 1
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CalendarQueue len={self._len}"
                f" days={len(self._buckets)} nowq={len(self._nowq)}>")
