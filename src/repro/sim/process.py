"""Coroutine processes driven by the discrete-event kernel.

A *process* wraps a Python generator.  The generator models the life of an
active entity (a CPU thread, a network adapter engine, a benchmark driver)
by yielding :class:`~repro.sim.events.Event` objects; the kernel resumes
the generator with the event's value once it fires, or throws the event's
exception into the generator if the event failed.

Processes are themselves events: they trigger when the generator returns
(carrying its return value) or raises (carrying the exception), so one
process can wait for another simply by yielding it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import SimulationError
from .events import FLOAT_WAKE, PENDING, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulator

__all__ = ["Process", "Interrupt", "ProcessGen"]

#: Type alias for generator bodies accepted by :meth:`Simulator.process`.
ProcessGen = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The interrupted process receives the exception at its current yield
    point; ``cause`` carries the interrupter's payload.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Process(Event):
    """An event representing a running generator.

    Do not instantiate directly; use
    :meth:`repro.sim.kernel.Simulator.process`.
    """

    __slots__ = ("_gen", "_target", "is_alive_hint")

    def __init__(self, sim: "Simulator", gen: ProcessGen,
                 name: str = "") -> None:
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise SimulationError(
                f"Process body must be a generator, got {type(gen).__name__}."
                " Did you forget a 'yield' in the function?")
        super().__init__(sim, name=name or getattr(
            gen, "__name__", "process"))
        self._gen = gen
        #: The event this process is currently waiting on (None if runnable).
        self._target: Optional[Event] = None
        sim._register_process(self)
        # Kick the generator off at the current simulated time.
        boot = Event(sim, name=f"boot:{self.name}")
        boot.callbacks.append(self._resume)
        boot.succeed(None)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is suspended on, if any."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event (the event
        itself is unaffected and may fire later for other waiters).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self!r}")
        target = self._target
        if target is not None and not target.processed:
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._target = None
        wakeup = Event(self.sim, name=f"interrupt:{self.name}")
        wakeup.callbacks.append(self._resume)
        wakeup.fail(Interrupt(cause))

    def kill(self, value: Any = None) -> None:
        """Terminate the process in place, completing it with ``value``.

        Unlike :meth:`interrupt`, the generator never sees an exception:
        it is closed at its current yield point (fail-stop semantics --
        the body gets no chance to react).  The process *succeeds* with
        ``value`` so that aggregates like :class:`AllOf` treat the death
        as completion, not failure; callers distinguish killed processes
        by the sentinel they pass.  Killing a dead process is a no-op.
        Stale kernel wakeups (pooled float timers already scheduled for
        this process) become no-ops via the ``_gen is None`` guard in
        :meth:`_resume`.
        """
        if not self.is_alive:
            return
        target = self._target
        if target is not None and not target.processed:
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
        self._target = None
        gen = self._gen
        self._gen = None
        if gen is not None:
            gen.close()
        self.sim._unregister_process(self)
        self.succeed(value)

    # ------------------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the outcome of ``trigger``."""
        if self._gen is None:  # killed: stale wakeup, nothing to drive
            return
        self._target = None
        sim = self.sim
        prev_active = sim._active_process
        sim._active_process = self
        try:
            while True:
                if trigger._ok:
                    nxt = self._gen.send(trigger._value)
                else:
                    # Failure propagates into the generator; if uncaught it
                    # escapes and kills this process below.
                    nxt = self._gen.throw(trigger._value)
                # Bare-number yield: sleep that many microseconds, then
                # resume with None.  Equivalent to ``yield sim.timeout(d)``
                # at a fraction of the cost (one pooled fast timer instead
                # of a Timeout object + callbacks list); scheduled at the
                # same point in execution, so it consumes the same kernel
                # sequence number and virtual time is byte-identical.
                # Float sleeps are kernel-internal and non-interruptible
                # (see ``interrupt``); the machine model only uses them
                # for non-preemptive CPU bursts.
                cls = nxt.__class__
                if cls is float or cls is int:
                    sim.call_at(sim._now + nxt, self._resume, FLOAT_WAKE)
                    return
                # The generator yielded: it must be an Event of this sim.
                if not isinstance(nxt, Event):
                    msg = (f"process {self.name!r} yielded {nxt!r}; "
                           "processes may only yield Event objects")
                    self._gen.close()
                    raise SimulationError(msg)
                if nxt.sim is not sim:
                    self._gen.close()
                    raise SimulationError(
                        f"process {self.name!r} yielded an event belonging"
                        " to a different simulator")
                if nxt.callbacks is None:  # processed: consume inline
                    trigger = nxt
                    continue
                nxt.callbacks.append(self._resume)
                self._target = nxt
                return
        except StopIteration as stop:
            sim._unregister_process(self)
            self.succeed(stop.value)
        except BaseException as exc:
            sim._unregister_process(self)
            self.fail(exc)
        finally:
            sim._active_process = prev_active
