"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the pending-event queue.
All components of the SP machine model -- CPUs, adapters, switch links,
the LAPI/MPL protocol engines -- are processes scheduled by one simulator
instance, so a whole multi-node parallel machine runs deterministically
inside a single Python process.

Schedulers
----------
Two pending-queue backends implement the identical ``(when, seq)``
total order:

* ``"calendar"`` (default) -- the :class:`repro.sim.calendar.CalendarQueue`
  bucketed scheduler: amortized O(1) insert/extract for the short-horizon
  timer distributions the machine model generates.
* ``"heap"`` -- the original binary heap (``heapq``), kept as the golden
  reference; the scheduler-equivalence tests run whole benchmarks under
  both backends and require byte-identical observables.

Select per-instance with ``Simulator(scheduler=...)`` or globally with
the ``REPRO_SIM_SCHEDULER`` environment variable.

Units
-----
Virtual time is measured in **microseconds** (float).  Bandwidths across
the code base are expressed in bytes per microsecond, which conveniently
equals MB/s (1e6 bytes / 1e6 us), the unit the paper plots.
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Iterable, Optional

from ..errors import DeadlockError, SimulationError
from .calendar import DEFAULT_BUCKET_WIDTH, CalendarQueue
from .events import PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGen

__all__ = ["Simulator", "SCHEDULERS"]

#: Recognised pending-queue backends.
SCHEDULERS = ("calendar", "heap")

#: Environment override for the default backend (tests / CI flip this to
#: run whole suites against the reference heap).
_SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"

#: Upper bound on the fast-timer freelist; enough to absorb the steady
#: state of a busy cluster without pinning memory after a burst.
_TIMER_POOL_CAP = 1024

_INF = float("inf")


class _FastTimer:
    """A queue entry that invokes a bare callback -- no :class:`Event`.

    The hot paths of the machine model (wire delivery, receive-DMA
    completion, retransmission timers, packet trains) schedule millions
    of one-shot callbacks per benchmark.  Routing them through
    :class:`Timeout` pays for an event object, a callbacks list, a
    closure, and a name string each time; a fast timer is just
    ``(fn, arg)``.  Scheduled via :meth:`Simulator.call_at`; fires with
    the same queue ordering an equally-placed timeout would, so
    converting a timeout to a fast timer never changes virtual time.
    Fired timers are recycled through a per-simulator freelist, making
    the steady-state hot path allocation-free.
    """

    __slots__ = ("fn", "arg")

    #: Queue-entry kind 0: bare callback (see ``_DISPATCH``).
    _qk = 0

    def __init__(self, fn, arg) -> None:
        self.fn = fn
        self.arg = arg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<call_at {label}({self.arg!r})>"


# ----------------------------------------------------------------------
# dispatch table
# ----------------------------------------------------------------------
# The kernel's inner loop routes each popped queue entry through a
# precomputed per-kind table instead of an isinstance ladder: entries
# carry a small integer ``_qk`` class attribute indexing ``_DISPATCH``.
# The run loops additionally inline kind 0 (fast timers -- the vast
# majority of machine-model events) so the steady state pays neither a
# ``step()`` call nor a table lookup per event.

def _fire_timer(sim: "Simulator", when: float, ev: _FastTimer) -> None:
    """Kind 0: invoke a bare callback and recycle the timer."""
    sim.events_processed += 1
    if sim.trace is not None:
        sim.trace.kernel_event(when, ev)
    ev.fn(ev.arg)
    pool = sim._timer_pool
    if len(pool) < _TIMER_POOL_CAP:
        ev.fn = ev.arg = None
        pool.append(ev)


def _fire_event(sim: "Simulator", when: float, ev: Event) -> None:
    """Kind 1: process a triggered event's callbacks."""
    callbacks = ev.callbacks
    ev.callbacks = None  # mark processed
    sim.events_processed += 1
    if sim.trace is not None:
        sim.trace.kernel_event(when, ev)
    if callbacks is None:
        # A twice-enqueued event would replay its callbacks and corrupt
        # the run; fail loudly (a bare assert would vanish under
        # ``python -O``).
        raise SimulationError(
            f"event {ev!r} processed twice (double enqueue)")
    for cb in callbacks:
        cb(ev)
    # An event that failed with nobody listening would silently swallow
    # the error; surface it so broken models crash loudly.
    if ev._ok is False and not callbacks:
        raise ev._value


def _fire_timeout(sim: "Simulator", when: float, ev: Timeout) -> None:
    """Kind 2: a timeout's due time has arrived -- trigger it with the
    held-aside payload, then process callbacks like any event."""
    if ev._value is PENDING:
        ev._ok = True
        ev._value = ev._pending_value
    _fire_event(sim, when, ev)


#: Pop-time actions indexed by the queue entry's ``_qk`` class attribute.
_DISPATCH = (_fire_timer, _fire_event, _fire_timeout)


class Simulator:
    """Event loop, virtual clock, and process registry.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.trace.Tracer` receiving kernel events.
    scheduler:
        Pending-queue backend: ``"calendar"`` (default) or ``"heap"``.
        ``None`` consults the ``REPRO_SIM_SCHEDULER`` environment
        variable before falling back to the calendar queue.
    bucket_width:
        Calendar-queue day width in virtual microseconds (ignored by the
        heap backend).
    """

    def __init__(self, trace: Optional[Any] = None, *,
                 scheduler: Optional[str] = None,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if scheduler is None:
            scheduler = os.environ.get(_SCHEDULER_ENV, "calendar")
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of "
                f"{SCHEDULERS}")
        self.scheduler = scheduler
        self._now: float = 0.0
        #: Calendar backend (None in heap mode).
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue(bucket_width) if scheduler == "calendar" else None)
        #: Heap backend entries: (when, seq, Event | _FastTimer).
        #: Unused (empty) in calendar mode.
        self._heap: list[tuple[float, int, Any]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._live_processes: set[Process] = set()
        self.trace = trace
        #: Freelist of fired fast timers awaiting reuse.
        self._timer_pool: list[_FastTimer] = []
        #: Optional ``repro.obs.spans.SpanRecorder`` observing phase
        #: boundaries (attached by the cluster).  Purely observational:
        #: recording reads ``now`` and appends to host-side lists; it
        #: never schedules events or consumes RNG, so arming it cannot
        #: perturb virtual time.  Components reach it as ``sim.spans``
        #: and must guard every hook on ``is not None``.  Causal
        #: context rides packet uids / message ids in recorder-side
        #: tables -- never the queue entries -- so :meth:`call_at` fast
        #: timers stay allocation-free with spans on.
        self.spans: Optional[Any] = None
        #: Optional ``repro.machine.pool.HotPools`` attached by the
        #: cluster: per-cluster free lists for hot-path model objects
        #: (packets).  Like ``spans``, reached via the simulator only
        #: for plumbing convenience -- the kernel itself never touches
        #: it.
        self.pools: Optional[Any] = None
        #: Optional ``repro.obs.flight.FlightRecorder`` attached by the
        #: cluster when telemetry is armed: the black box that fault
        #: and reliability trigger points dump into.  Same contract as
        #: ``spans``: purely observational, guarded on ``is not None``.
        self.flight: Optional[Any] = None
        #: Cumulative count of events processed over the simulator's
        #: lifetime; useful for tests and perf accounting.  Budget
        #: checks (``max_events``) are always *per call*, relative to a
        #: snapshot of this counter at entry.
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # clock & factories
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` us from now."""
        return Timeout(self, delay, value=value, name=name)

    def timeout_at(self, when: float, value: Any = None,
                   name: str = "") -> Timeout:
        """Timeout firing at absolute virtual time ``when``.

        Unlike ``timeout(when - now)``, the due time is pinned to the
        exact float ``when`` -- no ``now + delay`` float round trip,
        which can differ in the last ulp.  Used where a sleeper must
        wake at a time computed elsewhere (e.g. the TX engine sleeping
        to the end of an analytically scheduled packet train).
        """
        return Timeout(self, when - self._now, value=value, name=name,
                       at=when)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Launch ``gen`` as a process; returns the process event."""
        return Process(self, gen, name=name)

    def call_at(self, when: float, fn, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at virtual time ``when`` (fast path).

        Allocation-light alternative to ``timeout(delay)`` + callback:
        no event object, no callbacks list, no name.  The callback runs
        in kernel context (not on a simulated CPU); it must not block.
        Use for model-internal delivery/completion/timer callbacks whose
        only job is to advance machine state at a known instant.
        """
        now = self._now
        if when < now:
            raise SimulationError(
                f"cannot schedule call_at({when}) before now={now}")
        pool = self._timer_pool
        if pool:
            timer = pool.pop()
            timer.fn = fn
            timer.arg = arg
        else:
            timer = _FastTimer(fn, arg)
        # Inlined CalendarQueue.push (see repro.sim.calendar, "hot-path
        # note"): a method call per scheduled event is measurable.
        cal = self._cal
        if cal is not None:
            cal._len += 1
            if when == now:
                nq = cal._nowq
                if not nq:
                    cal._now_stamp = now
                nq.append(timer)
                return
            self._seq = seq = self._seq + 1
            day = int(when * cal._inv_width)
            buckets = cal._buckets
            b = buckets.get(day)
            if b is None:
                buckets[day] = [(when, seq, timer)]
                heappush(cal._days, day)
                if day < cal._active_day:
                    cal._retire_active()
            elif day == cal._active_day:
                insort(b, (when, seq, timer), cal._pos)
            else:
                b.append((when, seq, timer))
        else:
            self._seq += 1
            heappush(self._heap, (when, self._seq, timer))

    def call_after(self, delay: float, fn, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` us (see :meth:`call_at`)."""
        self.call_at(self._now + delay, fn, arg)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # scheduling internals (used by Event/Timeout/Process)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, ev: Event) -> None:
        now = self._now
        if when < now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={now}")
        # Inlined CalendarQueue.push; see call_at.
        cal = self._cal
        if cal is not None:
            cal._len += 1
            if when == now:
                nq = cal._nowq
                if not nq:
                    cal._now_stamp = now
                nq.append(ev)
                return
            self._seq = seq = self._seq + 1
            day = int(when * cal._inv_width)
            buckets = cal._buckets
            b = buckets.get(day)
            if b is None:
                buckets[day] = [(when, seq, ev)]
                heappush(cal._days, day)
                if day < cal._active_day:
                    cal._retire_active()
            elif day == cal._active_day:
                insort(b, (when, seq, ev), cal._pos)
            else:
                b.append((when, seq, ev))
        else:
            self._seq += 1
            heappush(self._heap, (when, self._seq, ev))

    def _enqueue_triggered(self, ev: Event) -> None:
        """Queue an already-triggered event for callback processing."""
        cal = self._cal
        if cal is not None:
            # Triggered events process at the current instant: straight
            # into the same-instant FIFO lane.
            cal._len += 1
            nq = cal._nowq
            if not nq:
                cal._now_stamp = self._now
            nq.append(ev)
        else:
            self._seq += 1
            heappush(self._heap, (self._now, self._seq, ev))

    def _register_process(self, proc: Process) -> None:
        self._live_processes.add(proc)

    def _unregister_process(self, proc: Process) -> None:
        self._live_processes.discard(proc)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _pending(self) -> int:
        """Number of scheduled entries still in the queue."""
        cal = self._cal
        return cal._len if cal is not None else len(self._heap)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        cal = self._cal
        if cal is not None:
            return cal.peek_when()
        return self._heap[0][0] if self._heap else _INF

    def step(self) -> None:
        """Process a single event (advancing the clock to it)."""
        # Inlined CalendarQueue.pop (see repro.sim.calendar, "hot-path
        # note"); the heap branch is a single C heappop.
        cal = self._cal
        if cal is not None:
            clen = cal._len
            if not clen:
                raise SimulationError("step() on an empty event queue")
            nq = cal._nowq
            if nq:
                entry = None
                if len(nq) != clen:
                    # Bucketed entries at the same instant were pushed
                    # earlier (smaller seq); they drain first.
                    b = cal._active
                    pos = cal._pos
                    if b is None or pos >= len(b):
                        b = cal._seek()
                        pos = cal._pos
                    if b is not None:
                        entry = b[pos]
                        if entry[0] <= cal._now_stamp:
                            cal._pos = pos + 1
                        else:
                            entry = None
                cal._len = clen - 1
                if entry is not None:
                    when = entry[0]
                    ev = entry[2]
                else:
                    when = cal._now_stamp
                    ev = nq.popleft()
            else:
                b = cal._active
                pos = cal._pos
                if b is None or pos >= len(b):
                    b = cal._seek()
                    pos = cal._pos
                cal._pos = pos + 1
                cal._len = clen - 1
                entry = b[pos]
                when = entry[0]
                ev = entry[2]
        else:
            if not self._heap:
                raise SimulationError("step() on an empty event queue")
            when, _, ev = heappop(self._heap)
        self._now = when
        _DISPATCH[ev._qk](self, when, ev)

    def run(self, until: Optional[float] = None, *,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or the budget.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left at
            ``until``).  ``None`` runs to queue exhaustion.
        max_events:
            Per-call safety valve for runaway models; raises
            :class:`SimulationError` when this call has processed that
            many events.

        Returns
        -------
        float
            The virtual time at which the run stopped.
        """
        budget = max_events if max_events is not None else _INF
        step = self.step
        cal = self._cal
        heap = self._heap
        if until is None:
            if cal is not None:
                self._drain_calendar(cal, budget, max_events)
                return self._now
            while heap:
                if budget <= 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events}"
                        " (possible livelock)")
                budget -= 1
                step()
            return self._now
        while (cal._len if cal is not None else heap):
            if self.peek() > until:
                self._now = until
                return self._now
            if budget <= 0:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
            budget -= 1
            step()
        if until > self._now:
            self._now = until
        return self._now

    def _drain_calendar(self, cal: CalendarQueue, budget: float,
                        max_events: Optional[int]) -> None:
        """Run the calendar backend to queue exhaustion (hot inner loop).

        The CalendarQueue pop and the dominant fast-timer fire are
        inlined (see repro.sim.calendar, "hot-path note"): at millions
        of events per benchmark the ``step()`` call frame and the
        dispatch-table lookup are both measurable.  Semantics are
        identical to ``while pending: step()``.
        """
        dispatch = _DISPATCH
        timer_pool = self._timer_pool
        while True:
            clen = cal._len
            if not clen:
                return
            if budget <= 0:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
            budget -= 1
            # Inlined CalendarQueue.pop (same logic as step()).
            nq = cal._nowq
            if nq:
                entry = None
                if len(nq) != clen:
                    b = cal._active
                    pos = cal._pos
                    if b is None or pos >= len(b):
                        b = cal._seek()
                        pos = cal._pos
                    if b is not None:
                        entry = b[pos]
                        if entry[0] <= cal._now_stamp:
                            cal._pos = pos + 1
                        else:
                            entry = None
                cal._len = clen - 1
                if entry is not None:
                    when = entry[0]
                    ev = entry[2]
                else:
                    when = cal._now_stamp
                    ev = nq.popleft()
            else:
                b = cal._active
                pos = cal._pos
                if b is None or pos >= len(b):
                    b = cal._seek()
                    pos = cal._pos
                cal._pos = pos + 1
                cal._len = clen - 1
                entry = b[pos]
                when = entry[0]
                ev = entry[2]
            self._now = when
            if ev._qk == 0:
                # Inlined _fire_timer: the dominant machine-model event.
                self.events_processed += 1
                if self.trace is not None:
                    self.trace.kernel_event(when, ev)
                ev.fn(ev.arg)
                if len(timer_pool) < _TIMER_POOL_CAP:
                    ev.fn = ev.arg = None
                    timer_pool.append(ev)
            else:
                dispatch[ev._qk](self, when, ev)

    def run_until_complete(self, proc: Process, *,
                           max_events: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes; return its value or raise its error.

        ``max_events`` is a per-call budget: the counter is snapshotted
        at entry, so driving several jobs back-to-back on one simulator
        gives each call the full budget rather than charging later calls
        for earlier ones.

        Raises :class:`DeadlockError` if the event queue drains while the
        process is still alive (it is blocked on something that can never
        happen).
        """
        step = self.step
        cal = self._cal
        heap = self._heap
        if max_events is None:
            ceiling = _INF
        else:
            ceiling = self.events_processed + max_events
        if cal is not None:
            # Hot inner loop: inlined CalendarQueue.pop + fast-timer
            # fire, dispatch table for everything else (see
            # _drain_calendar for rationale).  Semantics identical to
            # ``while pending: step()``.
            dispatch = _DISPATCH
            timer_pool = self._timer_pool
            while proc._value is PENDING:
                clen = cal._len
                if not clen:
                    break
                if self.events_processed >= ceiling:
                    raise SimulationError(
                        f"exceeded max_events={max_events} waiting for"
                        f" {proc.name!r}")
                nq = cal._nowq
                if nq:
                    entry = None
                    if len(nq) != clen:
                        b = cal._active
                        pos = cal._pos
                        if b is None or pos >= len(b):
                            b = cal._seek()
                            pos = cal._pos
                        if b is not None:
                            entry = b[pos]
                            if entry[0] <= cal._now_stamp:
                                cal._pos = pos + 1
                            else:
                                entry = None
                    cal._len = clen - 1
                    if entry is not None:
                        when = entry[0]
                        ev = entry[2]
                    else:
                        when = cal._now_stamp
                        ev = nq.popleft()
                else:
                    b = cal._active
                    pos = cal._pos
                    if b is None or pos >= len(b):
                        b = cal._seek()
                        pos = cal._pos
                    cal._pos = pos + 1
                    cal._len = clen - 1
                    entry = b[pos]
                    when = entry[0]
                    ev = entry[2]
                self._now = when
                if ev._qk == 0:
                    self.events_processed += 1
                    if self.trace is not None:
                        self.trace.kernel_event(when, ev)
                    ev.fn(ev.arg)
                    if len(timer_pool) < _TIMER_POOL_CAP:
                        ev.fn = ev.arg = None
                        timer_pool.append(ev)
                else:
                    dispatch[ev._qk](self, when, ev)
        else:
            while proc._value is PENDING:
                if not heap:
                    break
                if self.events_processed >= ceiling:
                    raise SimulationError(
                        f"exceeded max_events={max_events} waiting for"
                        f" {proc.name!r}")
                step()
        if proc._value is PENDING:
            waiting = sorted(p.name for p in self._live_processes)
            raise DeadlockError(
                f"event queue drained but {proc.name!r} never finished;"
                f" live processes: {waiting[:20]}")
        if proc._ok:
            return proc._value
        raise proc._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator t={self._now:.3f}us"
                f" pending={self._pending()}"
                f" live={len(self._live_processes)}"
                f" scheduler={self.scheduler}>")
