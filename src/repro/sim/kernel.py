"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the pending-event heap.  All
components of the SP machine model -- CPUs, adapters, switch links, the
LAPI/MPL protocol engines -- are processes scheduled by one simulator
instance, so a whole multi-node parallel machine runs deterministically
inside a single Python process.

Units
-----
Virtual time is measured in **microseconds** (float).  Bandwidths across
the code base are expressed in bytes per microsecond, which conveniently
equals MB/s (1e6 bytes / 1e6 us), the unit the paper plots.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Optional

from ..errors import DeadlockError, SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGen

__all__ = ["Simulator"]


class _FastTimer:
    """A heap entry that invokes a bare callback -- no :class:`Event`.

    The hot paths of the machine model (wire delivery, receive-DMA
    completion, retransmission timers, packet trains) schedule millions
    of one-shot callbacks per benchmark.  Routing them through
    :class:`Timeout` pays for an event object, a callbacks list, a
    closure, and a name string each time; a fast timer is just
    ``(fn, arg)``.  Scheduled via :meth:`Simulator.call_at`; fires with
    the same heap ordering an equally-placed timeout would, so
    converting a timeout to a fast timer never changes virtual time.
    """

    __slots__ = ("fn", "arg")

    def __init__(self, fn, arg) -> None:
        self.fn = fn
        self.arg = arg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<call_at {label}({self.arg!r})>"


class Simulator:
    """Event loop, virtual clock, and process registry.

    Parameters
    ----------
    trace:
        Optional :class:`repro.sim.trace.Tracer` receiving kernel events.
    """

    def __init__(self, trace: Optional[Any] = None) -> None:
        self._now: float = 0.0
        #: Pending entries: (when, seq, Event | _FastTimer).
        self._heap: list[tuple[float, int, Any]] = []
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._live_processes: set[Process] = set()
        self.trace = trace
        #: Optional ``repro.obs.spans.SpanRecorder`` observing phase
        #: boundaries (attached by the cluster).  Purely observational:
        #: recording reads ``now`` and appends to host-side lists; it
        #: never schedules events or consumes RNG, so arming it cannot
        #: perturb virtual time.  Components reach it as ``sim.spans``
        #: and must guard every hook on ``is not None``.  Causal
        #: context rides packet uids / message ids in recorder-side
        #: tables -- never the heap entries -- so :meth:`call_at` fast
        #: timers stay allocation-free with spans on.
        self.spans: Optional[Any] = None
        #: Count of events processed; useful for tests and runaway guards.
        self.events_processed: int = 0

    # ------------------------------------------------------------------
    # clock & factories
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def event(self, name: str = "") -> Event:
        """Create a fresh, untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None,
                name: str = "") -> Timeout:
        """Create an event that fires ``delay`` us from now."""
        return Timeout(self, delay, value=value, name=name)

    def timeout_at(self, when: float, value: Any = None,
                   name: str = "") -> Timeout:
        """Timeout firing at absolute virtual time ``when``.

        Unlike ``timeout(when - now)``, the due time is pinned to the
        exact float ``when`` -- no ``now + delay`` round trip, which can
        differ in the last ulp.  Used where a sleeper must wake at a time
        computed elsewhere (e.g. the TX engine sleeping to the end of an
        analytically scheduled packet train).
        """
        return Timeout(self, when - self._now, value=value, name=name,
                       at=when)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Launch ``gen`` as a process; returns the process event."""
        return Process(self, gen, name=name)

    def call_at(self, when: float, fn, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at virtual time ``when`` (fast path).

        Allocation-light alternative to ``timeout(delay)`` + callback:
        no event object, no callbacks list, no name.  The callback runs
        in kernel context (not on a simulated CPU); it must not block.
        Use for model-internal delivery/completion/timer callbacks whose
        only job is to advance machine state at a known instant.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule call_at({when}) before now={self._now}")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, _FastTimer(fn, arg)))

    def call_after(self, delay: float, fn, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` us (see :meth:`call_at`)."""
        self.call_at(self._now + delay, fn, arg)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # ------------------------------------------------------------------
    # scheduling internals (used by Event/Timeout)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, ev: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self._now}")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, ev))

    def _enqueue_triggered(self, ev: Event) -> None:
        """Queue an already-triggered event for callback processing."""
        self._schedule_at(self._now, ev)

    def _register_process(self, proc: Process) -> None:
        self._live_processes.add(proc)

    def _unregister_process(self, proc: Process) -> None:
        self._live_processes.discard(proc)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process a single event (advancing the clock to it)."""
        if not self._heap:
            raise SimulationError("step() on an empty event queue")
        when, _, ev = heapq.heappop(self._heap)
        self._now = when
        if type(ev) is _FastTimer:
            self.events_processed += 1
            if self.trace is not None:
                self.trace.kernel_event(when, ev)
            ev.fn(ev.arg)
            return
        if not ev.triggered:
            # Only timeouts sit in the heap untriggered; their due time has
            # arrived, so they trigger now with their held-aside payload.
            ev._ok = True
            ev._value = ev._pending_value
        callbacks = ev.callbacks
        ev.callbacks = None  # mark processed
        self.events_processed += 1
        if self.trace is not None:
            self.trace.kernel_event(when, ev)
        assert callbacks is not None, "event processed twice"
        for cb in callbacks:
            cb(ev)
        # An event that failed with nobody listening would silently swallow
        # the error; surface it so broken models crash loudly.
        if ev._ok is False and not callbacks:
            raise ev._value

    def run(self, until: Optional[float] = None, *,
            max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or the budget.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (the clock is left at
            ``until``).  ``None`` runs to queue exhaustion.
        max_events:
            Safety valve for runaway models; raises
            :class:`SimulationError` when exceeded.

        Returns
        -------
        float
            The virtual time at which the run stopped.
        """
        budget = max_events if max_events is not None else float("inf")
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self._now = until
                return self._now
            if budget <= 0:
                raise SimulationError(
                    f"exceeded max_events={max_events} (possible livelock)")
            budget -= 1
            self.step()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_complete(self, proc: Process, *,
                           max_events: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes; return its value or raise its error.

        Raises :class:`DeadlockError` if the event queue drains while the
        process is still alive (it is blocked on something that can never
        happen).
        """
        while not proc.triggered:
            if not self._heap:
                waiting = sorted(p.name for p in self._live_processes)
                raise DeadlockError(
                    f"event queue drained but {proc.name!r} never finished;"
                    f" live processes: {waiting[:20]}")
            if max_events is not None:
                if self.events_processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} waiting for"
                        f" {proc.name!r}")
            self.step()
        if proc._ok:
            return proc._value
        raise proc._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator t={self._now:.3f}us pending={len(self._heap)}"
                f" live={len(self._live_processes)}>")
