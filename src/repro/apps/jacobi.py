"""Jacobi relaxation with GA ghost-boundary exchange.

A structured-grid kernel complementing the chemistry-flavoured apps:
the grid lives in one global array, each task owns a block, and every
sweep fetches the one-element-deep halo around its block with strided
one-sided gets -- the "adaptive grid" class of application the paper's
introduction offers as a motivation for one-sided communication.

Two sync points bracket each sweep (read-halo / write-block), so the
kernel is also a good stress test of GA's memory-consistency rules.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..errors import GaError
from ..ga.sections import Section

__all__ = ["jacobi_sweeps"]


def jacobi_sweeps(task, *, n: int = 64, sweeps: int = 3,
                  hot_edge: float = 100.0,
                  use_ghosts: bool = False) -> Generator:
    """Run Jacobi sweeps on an ``n x n`` grid; returns timing + residual.

    The top edge is held at ``hot_edge``; interior points relax toward
    the average of their four neighbours.  Returns a dict with
    ``elapsed_us``, ``residual`` (global, identical on all ranks), and
    ``sweeps``.

    With ``use_ghosts`` the grid is a ghost-cell array and each sweep's
    halo comes from one collective ``GA_Update_ghosts`` instead of four
    hand-rolled strip gets -- numerically identical, less code, and a
    cross-check of the ghost extension against the manual protocol.
    """
    ga = task.ga
    cfg = task.node.config
    thread = task.thread
    if n < 4:
        raise GaError("grid too small for a halo exchange")

    g_h = yield from ga.create((n, n), name="grid",
                               ghost_width=1 if use_ghosts else 0)
    yield from ga.zero(g_h)
    # Hot boundary: the owner(s) of row 0 set it through local views.
    block = ga.distribution(g_h)
    if block is not None and block.ilo == 0:
        view = ga.access(g_h)
        view[0, :] = hot_edge
    yield from ga.sync()

    t0 = task.now()
    residual = 0.0
    for _ in range(sweeps):
        local_res = 0.0
        if use_ghosts:
            # One collective call replaces the manual strip protocol.
            yield from ga.update_ghosts(g_h)
        if block is not None and use_ghosts:
            halo = np.array(ga.access_ghosts(g_h))
            oi = oj = 1
            rows, cols = block.rows, block.cols
            yield from thread.compute(cfg.flop_cost(5 * rows * cols))
            new = halo[oi:oi + rows, oj:oj + cols].copy()
            for bi in range(rows):
                gi = block.ilo + bi
                if gi == 0 or gi == n - 1:
                    continue
                for bj in range(cols):
                    gj = block.jlo + bj
                    if gj == 0 or gj == n - 1:
                        continue
                    hi, hj = oi + bi, oj + bj
                    new[bi, bj] = 0.25 * (halo[hi - 1, hj]
                                          + halo[hi + 1, hj]
                                          + halo[hi, hj - 1]
                                          + halo[hi, hj + 1])
            view = ga.access(g_h)
            local_res = float(np.abs(new - view).max())
            view[...] = new
        elif block is not None:
            # Fetch only the four one-element-deep halo strips around
            # the block (a real ghost exchange: one-sided gets of the
            # neighbours' edges), then assemble the extended patch from
            # the local view plus the strips.
            hlo_i = max(block.ilo - 1, 0)
            hhi_i = min(block.ihi + 1, n - 1)
            hlo_j = max(block.jlo - 1, 0)
            hhi_j = min(block.jhi + 1, n - 1)
            halo_sec = Section(hlo_i, hhi_i, hlo_j, hhi_j)
            halo = np.zeros(halo_sec.shape)
            view0 = ga.access(g_h)
            oi0 = block.ilo - hlo_i
            oj0 = block.jlo - hlo_j
            halo[oi0:oi0 + block.rows, oj0:oj0 + block.cols] = view0
            if block.ilo > 0:  # north strip
                strip = yield from ga.get_ndarray(
                    g_h, (block.ilo - 1, block.ilo - 1, hlo_j, hhi_j))
                halo[0, :] = strip[0]
            if block.ihi < n - 1:  # south strip
                strip = yield from ga.get_ndarray(
                    g_h, (block.ihi + 1, block.ihi + 1, hlo_j, hhi_j))
                halo[-1, :] = strip[0]
            if block.jlo > 0:  # west strip (contiguous 1-D column)
                strip = yield from ga.get_ndarray(
                    g_h, (block.ilo, block.ihi, block.jlo - 1,
                          block.jlo - 1))
                halo[oi0:oi0 + block.rows, 0] = strip[:, 0]
            if block.jhi < n - 1:  # east strip
                strip = yield from ga.get_ndarray(
                    g_h, (block.ilo, block.ihi, block.jhi + 1,
                          block.jhi + 1))
                halo[oi0:oi0 + block.rows, -1] = strip[:, 0]
            yield from ga.sync()  # all reads precede any write

            oi = oi0
            oj = oj0
            rows, cols = block.rows, block.cols
            yield from thread.compute(cfg.flop_cost(5 * rows * cols))
            new = halo[oi:oi + rows, oj:oj + cols].copy()
            # Relax interior points of this block (global boundary
            # rows/cols stay fixed).
            for bi in range(rows):
                gi = block.ilo + bi
                if gi == 0 or gi == n - 1:
                    continue
                for bj in range(cols):
                    gj = block.jlo + bj
                    if gj == 0 or gj == n - 1:
                        continue
                    hi, hj = oi + bi, oj + bj
                    new[bi, bj] = 0.25 * (halo[hi - 1, hj]
                                          + halo[hi + 1, hj]
                                          + halo[hi, hj - 1]
                                          + halo[hi, hj + 1])
            view = ga.access(g_h)
            local_res = float(np.abs(new - view).max())
            view[...] = new
        else:
            yield from ga.sync()
        yield from ga.sync()  # writes visible before the next sweep
        residual = local_res

    # Global residual: maximum over ranks, met in a tiny global array.
    r_h = yield from ga.create((task.size, 1), name="resid")
    yield from ga.put_ndarray(r_h, (task.rank, task.rank, 0, 0),
                              [[residual]])
    yield from ga.sync()
    col = yield from ga.get_ndarray(r_h, (0, task.size - 1, 0, 0))
    elapsed = task.now() - t0
    yield from ga.sync()
    for h in (g_h, r_h):
        yield from ga.destroy(h)
    return {"elapsed_us": elapsed, "residual": float(col.max()),
            "sweeps": sweeps}
