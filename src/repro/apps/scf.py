"""Synthetic self-consistent-field (SCF) kernel.

Models the communication pattern of the paper's flagship application
class (section 5.4: "self-consistent field (SCF), density functional
theory (DFT)...").  One Fock-build iteration over a basis of size
``nbf``:

1. tasks draw *shell-quartet* work items from a shared counter with
   ``GA_Read_inc`` -- GA's signature dynamic load balancing, impossible
   to express efficiently with two-sided messaging;
2. for each item they ``GA_Get`` a patch of the density matrix ``D``
   (the 2-D, strided access the paper's Figures 3-4 measure);
3. compute the two-electron contribution (charged at the node's
   sustained flop rate, scaled by ``work_per_patch``);
4. ``GA_Acc`` the contribution into the Fock matrix ``F`` -- atomic,
   commutative, unordered: the exact use case of LAPI's accumulate
   story (section 5.3.3).

The density update between iterations is a jacobi-style smoothing --
a stand-in for diagonalization that keeps values bounded and exactly
reproducible for correctness checks.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

__all__ = ["scf_iteration"]


def scf_iteration(task, *, nbf: int = 64, patch: int = 16,
                  work_per_patch: float = 4.0,
                  iterations: int = 1) -> Generator:
    """Run SCF Fock-build iterations; returns timing/verification info.

    Parameters
    ----------
    task:
        The SPMD task (GA must be initialized).
    nbf:
        Basis-set size (the matrices are ``nbf x nbf``).
    patch:
        Work-item patch edge (each item touches a ``patch x patch``
        section).
    work_per_patch:
        Flops per matrix element per item, controlling the
        communication/computation ratio the paper says the speedup
        depends on.
    iterations:
        Number of Fock-build sweeps.

    Returns
    -------
    dict with ``elapsed_us`` (virtual), ``items`` (work items this task
    processed), and ``checksum`` (trace of F, identical on all ranks).
    """
    ga = task.ga
    cfg = task.node.config
    thread = task.thread
    nblk = nbf // patch
    if nblk * patch != nbf:
        raise ValueError("patch must divide nbf")

    d_h = yield from ga.create((nbf, nbf), name="density")
    f_h = yield from ga.create((nbf, nbf), name="fock")
    c_h = yield from ga.create((1, 1), dtype=np.int64, name="counter")

    # Deterministic initial density.
    view = ga.access(d_h)
    block = ga.distribution(d_h)
    ii = np.arange(block.ilo, block.ihi + 1)[:, None]
    jj = np.arange(block.jlo, block.jhi + 1)[None, :]
    view[...] = 1.0 / (1.0 + np.abs(ii - jj))
    yield from ga.sync()

    t0 = task.now()
    my_items = 0
    for _ in range(iterations):
        yield from ga.zero(f_h)
        yield from ga.zero(c_h)
        yield from ga.sync()
        total_items = nblk * nblk
        while True:
            item = yield from ga.read_inc(c_h, (0, 0), 1)
            if item >= total_items:
                break
            my_items += 1
            bi, bj = divmod(item, nblk)
            sec = (bi * patch, (bi + 1) * patch - 1,
                   bj * patch, (bj + 1) * patch - 1)
            d_patch = yield from ga.get_ndarray(d_h, sec)
            # "Integral evaluation": cost scales with patch volume.
            flops = work_per_patch * patch * patch
            yield from thread.compute(cfg.flop_cost(flops))
            contribution = 0.5 * d_patch + 0.1 / (1.0 + d_patch)
            yield from ga.acc_ndarray(f_h, sec, contribution)
        yield from ga.sync()
        # Density update: D <- 0.5 D + 0.5 normalized(F).
        fview = ga.access(f_h)
        dview = ga.access(d_h)
        yield from thread.compute(cfg.flop_cost(3 * dview.size))
        dview[...] = 0.5 * dview + 0.5 * fview / (1.0 + np.abs(fview))
        yield from ga.sync()

    # Verification: trace of F, assembled from the pieces every rank
    # can read one-sidedly.
    diag = yield from ga.gather(f_h, [(i, i) for i in range(nbf)])
    elapsed = task.now() - t0
    yield from ga.sync()
    for h in (d_h, f_h, c_h):
        yield from ga.destroy(h)
    return {"elapsed_us": elapsed, "items": my_items,
            "checksum": float(np.sum(diag))}
