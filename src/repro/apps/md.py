"""Synthetic molecular-dynamics kernel over Global Arrays.

Models the MD codes of section 5.4: atom coordinates live in a global
(natoms x 4) array (x, y, z, padding -- column-major, so fetching "all
x coordinates" is the contiguous 1-D access the paper says benefits
most from LAPI); forces accumulate atomically; each task owns a block
of atoms and integrates them through its zero-copy local view.

Per step:

1. get the coordinates of the interaction partners (1-D column
   fetches),
2. compute pairwise forces for owned atoms against fetched partners
   (charged at the flop rate),
3. ``GA_Acc`` force contributions onto partner atoms (atomic),
4. sync; integrate owned atoms locally.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

__all__ = ["md_step_loop"]


def md_step_loop(task, *, natoms: int = 256, steps: int = 2,
                 flops_per_pair: float = 0.5, dt: float = 1e-3
                 ) -> Generator:
    """Run an MD step loop; returns timing and an energy checksum."""
    ga = task.ga
    cfg = task.node.config
    thread = task.thread

    x_h = yield from ga.create((natoms, 4), name="coords")
    f_h = yield from ga.create((natoms, 4), name="forces")

    # Deterministic initial lattice, written by the owner of each block.
    view = ga.access(x_h)
    block = ga.distribution(x_h)
    idx = np.arange(block.ilo, block.ihi + 1, dtype=np.float64)
    for c in range(block.jlo, min(block.jhi + 1, 3)):
        view[:, c - block.jlo] = np.sin(0.1 * idx * (c + 1))
    yield from ga.sync()

    t0 = task.now()
    my_block = ga.distribution(x_h)
    nown = my_block.rows
    for _ in range(steps):
        yield from ga.zero(f_h)
        yield from ga.sync()
        # Partner window: the next task's atom range (ring pattern).
        peer = (task.rank + 1) % task.size
        pblock = ga.distribution(x_h, peer)
        partners = yield from ga.get_ndarray(
            x_h, (pblock.ilo, pblock.ihi, 0, 2))
        mine = ga.access(x_h)[:, :3]
        npairs = nown * pblock.rows
        yield from thread.compute(cfg.flop_cost(
            flops_per_pair * npairs))
        # Toy pair force: softened spring toward partner centroid.
        centroid = partners.mean(axis=0)
        fmine = 0.01 * (centroid[None, :] - mine)
        fpartner = -0.01 * (mine.mean(axis=0)[None, :] - partners)
        # Accumulate forces on my atoms (local) and partners (remote).
        yield from ga.acc_ndarray(
            f_h, (my_block.ilo, my_block.ihi, 0, 2), fmine)
        yield from ga.acc_ndarray(
            f_h, (pblock.ilo, pblock.ihi, 0, 2), fpartner)
        yield from ga.sync()
        # Integrate my block through the zero-copy view.
        fview = ga.access(f_h)[:, :3]
        yield from thread.compute(cfg.flop_cost(4.0 * nown * 3))
        ga.access(x_h)[:, :3] += dt * fview
        yield from ga.sync()

    # Energy checksum over all coordinates (gathered 1-D).
    xs = yield from ga.get_ndarray(x_h, (0, natoms - 1, 0, 0))
    elapsed = task.now() - t0
    yield from ga.sync()
    for h in (x_h, f_h):
        yield from ga.destroy(h)
    return {"elapsed_us": elapsed,
            "checksum": float(np.sum(xs * xs))}
