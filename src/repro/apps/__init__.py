"""Application kernels exercising Global Arrays.

Synthetic stand-ins for the paper's section 5.4 workloads (SCF, DFT,
MP-2 electronic-structure codes and molecular dynamics): each kernel
uses the GA call mix of its real counterpart -- dynamic load balancing
through ``read_inc``, strided gets, atomic accumulates -- and runs
unchanged on either GA backend, which is what makes the LAPI-vs-MPL
application comparison possible.
"""

from .jacobi import jacobi_sweeps
from .matmul import ga_matmul
from .md import md_step_loop
from .scf import scf_iteration
from .transpose import ga_transpose

__all__ = ["ga_matmul", "jacobi_sweeps", "md_step_loop",
           "scf_iteration", "ga_transpose"]
