"""Blocked Global Arrays matrix multiply (C = A @ B).

The SUMMA-flavoured owner-computes algorithm real GA codes use: each
task computes the C blocks it owns, fetching the needed A and B panels
with one-sided ``GA_Get`` (2-D strided requests -- the access pattern
of Figure 4) and writing its block with a local store.  Compute is
charged at the node's sustained flop rate; the actual numerics run in
numpy so the result can be verified against a serial reference.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

__all__ = ["ga_matmul"]


def ga_matmul(task, a_h: int, b_h: int, c_h: int, *,
              kblock: int = 16) -> Generator:
    """Multiply global arrays ``C = A @ B``; returns elapsed us.

    ``A`` is (n x k), ``B`` is (k x m), ``C`` is (n x m); all three
    must already exist.  ``kblock`` is the inner-panel width.
    """
    ga = task.ga
    cfg = task.node.config
    thread = task.thread
    a = ga.array(a_h)
    b = ga.array(b_h)
    c = ga.array(c_h)
    n, k = a.dims
    k2, m = b.dims
    if k2 != k or c.dims != (n, m):
        raise ValueError(
            f"shape mismatch: A{a.dims} B{b.dims} C{c.dims}")

    t0 = task.now()
    cblk = ga.distribution(c_h)
    acc = np.zeros(cblk.shape)
    for klo in range(0, k, kblock):
        khi = min(klo + kblock, k) - 1
        a_panel = yield from ga.get_ndarray(
            a_h, (cblk.ilo, cblk.ihi, klo, khi))
        b_panel = yield from ga.get_ndarray(
            b_h, (klo, khi, cblk.jlo, cblk.jhi))
        flops = 2.0 * cblk.rows * cblk.cols * (khi - klo + 1)
        yield from thread.compute(cfg.flop_cost(flops))
        acc += a_panel @ b_panel
    view = ga.access(c_h)
    yield from thread.execute(cfg.copy_cost(acc.nbytes))
    view[...] = acc
    yield from ga.sync()
    return task.now() - t0
