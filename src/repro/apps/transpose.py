"""Global array transpose (B = A^T).

A pure-communication kernel: every task reads the transpose-image of
its own block with a single strided ``GA_Get`` and stores it locally.
Because get dominates entirely, this kernel shows the largest LAPI/MPL
spread of all the app kernels -- the paper's observation that
"the most performance improvement can be obtained in codes that mostly
rely on ... communication" patterns that avoid AM copies.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

__all__ = ["ga_transpose"]


def ga_transpose(task, a_h: int, b_h: int) -> Generator:
    """Transpose global array ``A`` into ``B``; returns elapsed us."""
    ga = task.ga
    cfg = task.node.config
    thread = task.thread
    a = ga.array(a_h)
    b = ga.array(b_h)
    if (a.dims[1], a.dims[0]) != b.dims:
        raise ValueError(f"B{b.dims} is not the transpose shape of"
                         f" A{a.dims}")
    t0 = task.now()
    mine = ga.distribution(b_h)
    # The source patch is my block's mirror image.
    src = (mine.jlo, mine.jhi, mine.ilo, mine.ihi)
    patch = yield from ga.get_ndarray(a_h, src)
    view = ga.access(b_h)
    yield from thread.execute(cfg.copy_cost(patch.nbytes))
    view[...] = patch.T
    yield from ga.sync()
    return task.now() - t0
