"""Legacy setup shim.

The execution environment has no network access and lacks the ``wheel``
package, so PEP 660 editable installs fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on older pips) fall back to the setuptools
``develop`` path, which needs no wheel building.  All real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
