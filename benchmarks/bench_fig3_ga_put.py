"""Figure 3: GA put transfer rate under LAPI and MPL (1-D and 2-D).

Paper shape: LAPI wins for small and large requests; MPL's generous
send buffering wins in the ~1-20 KB band; 1-D LAPI puts approach raw
LAPI_Put bandwidth; the 2-D curve switches to per-column RMC around
0.5 MB.
"""

from repro.bench import run_fig3

def bench_fig3_ga_put(regen):
    regen(run_fig3)
