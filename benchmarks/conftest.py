"""Shared plumbing for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  The experiments measure *virtual*
time inside the simulator; pytest-benchmark wraps each regeneration to
record its wall-clock cost (one round -- the simulated numbers are
deterministic, so statistical repetition adds nothing).

Every benchmark prints the regenerated artifact -- with pytest's
capture suspended, so a plain ``pytest benchmarks/ --benchmark-only``
run leaves the full paper-vs-measured record in its output -- and
fails if a qualitative shape check fails.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regen(benchmark, pytestconfig):
    """Run one experiment under pytest-benchmark; print + verify it."""
    capman = pytestconfig.pluginmanager.getplugin("capturemanager")

    def _run(runner, *args, **kwargs):
        result = benchmark.pedantic(runner, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        text = "\n" + result.render() + "\n"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text, flush=True)
        else:  # pragma: no cover - capture always present under pytest
            print(text, flush=True)
        failed = [c for c in result.checks if not c.passed]
        assert not failed, "shape checks failed: " + \
            "; ".join(str(c) for c in failed)
        return result

    return _run
