"""Ablation: MP_EAGER_LIMIT sweep (the Figure 2 environment knob)."""

from repro.bench.ablations import run_ablation_eager

def bench_ablation_eager_limit(regen):
    regen(run_ablation_eager)
