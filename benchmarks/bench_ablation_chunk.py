"""Ablation: GA's AM chunk payload (the ~900-byte choice of 5.3.1)."""

from repro.bench.ablations import run_ablation_chunk

def bench_ablation_am_chunk_size(regen):
    regen(run_ablation_chunk)
