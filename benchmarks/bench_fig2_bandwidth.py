"""Figure 2: one-way bandwidth, LAPI vs MPI (default & 64K eager).

Paper anchors: asymptotes ~97 (LAPI) / ~98 (MPI) MB/s; half-peak at
8 KB (LAPI) vs 23 KB (MPI); eager-to-rendezvous kink at the default
4 KB MP_EAGER_LIMIT, removed by setting it to 65536.
"""

from repro.bench import run_fig2

def bench_fig2_bandwidth(regen):
    regen(run_fig2)
