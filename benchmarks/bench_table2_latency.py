"""Table 2: LAPI vs MPI/MPL latency (polling, round trips, interrupts).

Paper reference (120 MHz P2SC, SP switch): LAPI 34/60/89 us, MPI/MPL
43/86/200 us.
"""

from repro.bench import run_table2

def bench_table2_latency(regen):
    regen(run_table2)
