"""Ablation: LAPI packet header size (future-work item #1 of section 6).

The 48-byte one-sided header carries target-side parameters in every
packet; the sweep shows what shrinking it (as the authors propose)
would buy at the bandwidth asymptote.
"""

from repro.bench.ablations import run_ablation_header

def bench_ablation_header_size(regen):
    regen(run_ablation_header)
