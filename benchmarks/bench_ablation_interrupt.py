"""Ablation: hardware interrupt cost vs Table 2's polling gap."""

from repro.bench.ablations import run_ablation_interrupt

def bench_ablation_interrupt_cost(regen):
    regen(run_ablation_interrupt)
