"""Ablation: the non-contiguous RMC interface of section 6's future
work (LAPI_Putv / LAPI_Getv) vs the 1998 hybrid protocols."""

from repro.bench.ablations import run_ablation_noncontig

def bench_ablation_noncontiguous_rmc(regen):
    regen(run_ablation_noncontig)
