"""Section 5.4's application results: GA-LAPI improvement over GA-MPL.

Paper: "performance improvement over MPL-versions vary from 10 to 50%
depending on the problem size, ratio of communication and calculations";
communication-heavy 1-D-dominated codes gain most.
"""

from repro.bench import run_apps

def bench_apps_improvement(regen):
    regen(run_apps)
