"""Figure 4: GA get transfer rate under LAPI and MPL (1-D and 2-D).

Paper shape: "LAPI outperforms MPL for all the cases"; both perform
better for 1-D than 2-D requests.
"""

from repro.bench import run_fig4

def bench_fig4_ga_get(regen):
    regen(run_fig4)
