"""Table 1: LAPI functionality inventory (API completeness)."""

from repro.bench import run_table1

def bench_table1_api_surface(regen):
    regen(run_table1)
