"""Section 5.4's GA single-element latencies.

Paper: get 94.2 us (LAPI) vs 221 us (MPL); put 49.6 vs 54.6 us.
"""

from repro.bench import run_ga_latency

def bench_ga_single_element_latency(regen):
    regen(run_ga_latency)
