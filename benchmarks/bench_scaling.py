"""SUPPLEMENTAL: scaling with node count (no paper counterpart).

Validates the model's internal consistency at 2-16 nodes: log-round
barrier growth and aggregate all-to-all throughput, including the
incast regime.
"""

from repro.bench.scaling import run_scaling


def bench_supplemental_scaling(regen):
    regen(run_scaling)
