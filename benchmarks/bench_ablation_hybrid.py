"""Ablation: GA's hybrid AM/RMC protocol switch threshold (5.3)."""

from repro.bench.ablations import run_ablation_hybrid

def bench_ablation_hybrid_threshold(regen):
    regen(run_ablation_hybrid)
