"""Section 4's pipeline latency: Put 16 us, Get 19 us (call return)."""

from repro.bench import run_pipeline_latency

def bench_pipeline_latency(regen):
    regen(run_pipeline_latency)
