#!/usr/bin/env python
"""Global Arrays: shared-memory programming on distributed memory.

The paper's section 5 user library, driven the way its chemistry
applications drive it: a distributed dense matrix accessed by global
indices, atomic accumulates from every rank, dynamic load balancing
with an atomic shared counter, and locality-aware block access --
all on four simulated SP nodes.

Run:  python examples/global_arrays_demo.py [lapi|mpl]
"""

import sys

import numpy as np

from repro.machine import Cluster


def main(task):
    ga = task.ga
    rank, size = task.rank, task.size

    # --- create a 64x64 distributed matrix ----------------------------
    h = yield from ga.create((64, 64), name="demo")
    yield from ga.zero(h)

    mine = ga.distribution(h)
    if rank == 0:
        print("block ownership:")
        for r in range(size):
            print(f"  rank {r}: {ga.distribution(h, r)}")

    # --- every rank stores a patch by *global* indices ----------------
    patch = (8 + rank * 2, 27 + rank * 2, 10, 29)  # overlaps owners
    data = np.full((20, 20), float(rank + 1))
    yield from ga.put_ndarray(h, patch, data)
    yield from ga.sync()

    # --- atomic accumulate: all ranks add into the same section -------
    yield from ga.acc_ndarray(h, (0, 63, 0, 0), np.ones((64, 1)),
                              alpha=0.25)
    yield from ga.sync()
    col = yield from ga.get_ndarray(h, (0, 63, 0, 0))
    if rank == 0:
        print(f"column 0 after {size} atomic accumulates:"
              f" every element == {col[5, 0]} (expect"
              f" {0.25 * size})")

    # --- dynamic load balancing via read_inc ---------------------------
    counter = yield from ga.create((1, 1), dtype=np.int64,
                                   name="work")
    yield from ga.zero(counter)
    yield from ga.sync()
    my_items = []
    while True:
        item = yield from ga.read_inc(counter, (0, 0), 1)
        if item >= 12:
            break
        my_items.append(item)
        yield from task.thread.sleep(20.0 * (1 + rank))  # uneven speed
    yield from ga.sync()
    print(f"rank {rank} processed work items {my_items}")

    # --- locality: compute on the local block, zero copies ------------
    view = ga.access(h)
    local_sum = float(view.sum())
    yield from ga.sync()
    return local_sum


if __name__ == "__main__":
    backend = sys.argv[1] if len(sys.argv) > 1 else "lapi"
    cluster = Cluster(nnodes=4)
    sums = cluster.run_job(main, ga_backend=backend)
    print(f"\nbackend={backend}: global sum = {sum(sums):.1f},"
          f" finished at {cluster.sim.now:.0f} virtual us")
