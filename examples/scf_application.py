#!/usr/bin/env python
"""The paper's headline story: a chemistry application on GA-LAPI vs
GA-MPL.

Runs the synthetic SCF Fock-build kernel (dynamic load balancing via
read_inc, strided density gets, atomic Fock accumulates) on both GA
backends and reports the improvement percentage -- the experiment
behind section 5.4's "10 to 50%" claim.  Also sweeps the
communication/computation ratio to show how the improvement depends on
it, exactly as the paper observes.

Run:  python examples/scf_application.py
"""

from repro.apps import scf_iteration
from repro.machine import Cluster


def run(backend: str, work_per_patch: float) -> float:
    def main(task):
        out = yield from scf_iteration(task, nbf=48, patch=12,
                                       work_per_patch=work_per_patch,
                                       iterations=1)
        return out["elapsed_us"]

    cluster = Cluster(nnodes=4)
    return max(cluster.run_job(main, ga_backend=backend))


if __name__ == "__main__":
    print("SCF Fock build, 48 basis functions, 4 nodes")
    print(f"{'flops/elem':>10} {'GA-LAPI [us]':>14} {'GA-MPL [us]':>13}"
          f" {'improvement':>12}")
    for work in (2.0, 8.0, 32.0, 128.0):
        lapi_us = run("lapi", work)
        mpl_us = run("mpl", work)
        gain = 100.0 * (mpl_us - lapi_us) / mpl_us
        print(f"{work:10.0f} {lapi_us:14.0f} {mpl_us:13.0f}"
              f" {gain:11.1f}%")
    print("\nCommunication-bound runs (low flops/element) improve most,"
          "\nmatching section 5.4's dependence on the comm/compute"
          " ratio.")
