#!/usr/bin/env python
"""Observability: trace a one-sided transfer packet by packet.

Attaches a :class:`repro.sim.Tracer` to the machine and runs a single
multi-packet LAPI put, then prints the adapter/switch event timeline,
the cluster's unified metrics registry (``repro.obs``), and a sample of
the structured JSONL trace export -- the view an SP operator's
monitoring tools would give, and the first tool to reach for when
debugging a protocol change in this code base.

Run:  python examples/packet_trace.py [--trace-out trace.jsonl]
"""

import sys

from repro.machine import Cluster, snapshot
from repro.obs import jsonl_lines, write_trace_jsonl
from repro.sim import Tracer


def main(task):
    lapi = task.lapi
    mem = task.memory
    n = 3000  # three packets' worth
    window = mem.malloc(n)
    done = lapi.counter()
    yield from lapi.gfence()
    if task.rank == 0:
        src = mem.malloc(n)
        mem.write(src, bytes(i % 251 for i in range(n)))
        yield from lapi.put(1, n, window, src, cmpl_cntr=done)
        yield from lapi.waitcntr(done, 1)
    yield from lapi.gfence()
    return lapi.stats.packets_processed


if __name__ == "__main__":
    tracer = Tracer(categories=["tx", "rx", "route"])
    cluster = Cluster(nnodes=2, trace=tracer)
    processed = cluster.run_job(main, stacks=("lapi",))

    print("=== packet timeline (tx/rx/route events) ===")
    for record in tracer.records:
        print(record)

    print()
    print("=== cluster statistics ===")
    print(snapshot(cluster).render())

    print()
    print("=== unified metrics (repro.obs) ===")
    print(cluster.metrics.render())

    print()
    print("=== structured trace export (first 5 JSONL records) ===")
    for line in list(jsonl_lines(tracer.records))[:5]:
        print(line)

    if "--trace-out" in sys.argv:
        path = sys.argv[sys.argv.index("--trace-out") + 1]
        n = write_trace_jsonl(tracer.records, path)
        print(f"\nwrote {n} trace records to {path}")

    print()
    print(f"dispatcher packets processed per rank: {processed}")
