#!/usr/bin/env python
"""Observability: trace a one-sided transfer packet by packet.

Attaches a :class:`repro.sim.Tracer` to the machine and runs a single
multi-packet LAPI put, then prints the adapter/switch event timeline
and a cluster statistics report -- the view an SP operator's monitoring
tools would give, and the first tool to reach for when debugging a
protocol change in this code base.

Run:  python examples/packet_trace.py
"""

from repro.machine import Cluster, snapshot
from repro.sim import Tracer


def main(task):
    lapi = task.lapi
    mem = task.memory
    n = 3000  # three packets' worth
    window = mem.malloc(n)
    done = lapi.counter()
    yield from lapi.gfence()
    if task.rank == 0:
        src = mem.malloc(n)
        mem.write(src, bytes(i % 251 for i in range(n)))
        yield from lapi.put(1, n, window, src, cmpl_cntr=done)
        yield from lapi.waitcntr(done, 1)
    yield from lapi.gfence()
    return lapi.stats.packets_processed


if __name__ == "__main__":
    tracer = Tracer(categories=["tx", "rx", "route"])
    cluster = Cluster(nnodes=2, trace=tracer)
    processed = cluster.run_job(main, stacks=("lapi",))

    print("=== packet timeline (tx/rx/route events) ===")
    for record in tracer.records:
        print(record)

    print()
    print("=== cluster statistics ===")
    print(snapshot(cluster).render())
    print()
    print(f"dispatcher packets processed per rank: {processed}")
