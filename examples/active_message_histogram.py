#!/usr/bin/env python
"""Custom active messages: a distributed histogram.

The introduction motivates LAPI with applications whose communication
patterns "cannot be easily determined a priori" -- indirect array
references and dynamic load balancing.  This example builds one: every
rank classifies a stream of random samples into buckets owned by other
ranks, sending each batch with a *user-written* AM handler that bins
the values at the owner.  No receives are ever posted; the counters
say when everything has landed.

Run:  python examples/active_message_histogram.py
"""

import numpy as np

from repro.machine import Cluster

BUCKETS_PER_RANK = 8
SAMPLES = 400
BATCH = 16


def main(task):
    lapi = task.lapi
    mem = task.memory
    rank, size = task.rank, task.size
    nbuckets = BUCKETS_PER_RANK * size

    # My slice of the histogram lives in my memory.
    hist_addr = mem.malloc(8 * BUCKETS_PER_RANK)
    done = lapi.counter("done")

    def bin_handler(t, src, uhdr, udata_len):
        """Header handler: stage the batch, bin it in completion."""
        stage = mem.malloc(max(udata_len, 8))

        def completion(t2, _info):
            values = np.frombuffer(mem.read(stage, udata_len),
                                   dtype=np.int64)
            for v in values:
                local = int(v) - rank * BUCKETS_PER_RANK
                slot = hist_addr + 8 * local
                mem.write_i64(slot, mem.read_i64(slot) + 1)
            mem.free(stage)
        return stage, completion, None

    hid = lapi.register_handler(bin_handler)
    yield from lapi.gfence()

    # Classify random samples; ship each owner its batch via AM.
    rng = np.random.default_rng(1234 + rank)
    samples = rng.integers(0, nbuckets, size=SAMPLES)
    batches: dict[int, list[int]] = {r: [] for r in range(size)}
    sent = 0
    for s in samples:
        owner = int(s) // BUCKETS_PER_RANK
        batches[owner].append(int(s))
        if len(batches[owner]) >= BATCH:
            blob = np.asarray(batches[owner], dtype=np.int64).tobytes()
            yield from lapi.amsend(owner, hid, b"", blob, len(blob),
                                   tgt_cntr=None, cmpl_cntr=done)
            sent += 1
            batches[owner] = []
    for owner, rest in batches.items():
        if rest:
            blob = np.asarray(rest, dtype=np.int64).tobytes()
            yield from lapi.amsend(owner, hid, b"", blob, len(blob),
                                   cmpl_cntr=done)
            sent += 1

    # All my batches have been *applied* remotely (not just delivered).
    yield from lapi.waitcntr(done, sent)
    yield from lapi.gfence()

    counts = [mem.read_i64(hist_addr + 8 * b)
              for b in range(BUCKETS_PER_RANK)]
    return counts


if __name__ == "__main__":
    nnodes = 4
    cluster = Cluster(nnodes=nnodes)
    per_rank = cluster.run_job(main, stacks=("lapi",))
    total = sum(sum(c) for c in per_rank)
    print("distributed histogram (buckets x counts):")
    for r, counts in enumerate(per_rank):
        print(f"  rank {r}: {counts}")
    print(f"total samples binned: {total}"
          f" (expected {nnodes * SAMPLES})")
    assert total == nnodes * SAMPLES
