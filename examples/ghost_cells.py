#!/usr/bin/env python
"""Ghost-cell arrays: halo exchange as a library feature.

Runs the same Jacobi relaxation twice -- once with hand-rolled strip
gets (how a 1998 GA application had to do it) and once with ghost-cell
arrays (`create(ghost_width=1)` + one `update_ghosts` per sweep, the
feature real GA later grew) -- and shows the fields agree bit-for-bit
while the ghost version is far simpler (its extra barriers cost a
little time -- the trade real GA users accepted for the convenience).

Run:  python examples/ghost_cells.py
"""

from repro.apps import jacobi_sweeps
from repro.machine import Cluster


def run(use_ghosts: bool):
    def main(task):
        out = yield from jacobi_sweeps(task, n=48, sweeps=4,
                                       use_ghosts=use_ghosts)
        return out

    cluster = Cluster(nnodes=4, seed=11)
    results = cluster.run_job(main, ga_backend="lapi")
    return results[0]["residual"], max(r["elapsed_us"]
                                       for r in results)


if __name__ == "__main__":
    strip_res, strip_us = run(use_ghosts=False)
    ghost_res, ghost_us = run(use_ghosts=True)
    print("Jacobi on a 48x48 grid, 4 sweeps, 4 nodes")
    print(f"  manual strip gets : residual {strip_res:.6f},"
          f" {strip_us:,.0f} virtual us")
    print(f"  ghost-cell arrays : residual {ghost_res:.6f},"
          f" {ghost_us:,.0f} virtual us")
    assert strip_res == ghost_res, "the two halo protocols diverged!"
    print("  -> identical fields; ghost arrays replace four strip gets"
          "\n     per sweep with one collective update_ghosts (its two"
          "\n     barriers cost a little time; the code is far simpler)")
