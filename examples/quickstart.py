#!/usr/bin/env python
"""Quickstart: the LAPI programming model in one file.

Builds a two-node simulated SP, then walks through the core LAPI
operations the paper's Table 1 lists: one-sided put/get, an active
message with header + completion handlers, an atomic fetch-and-add,
counters, and fences -- printing virtual-time stamps as it goes.

Run:  python examples/quickstart.py
"""

from repro.core import RmwOp
from repro.machine import Cluster


def main(task):
    lapi = task.lapi
    mem = task.memory
    rank = task.rank

    # --- symmetric setup (SPMD: both ranks allocate identically) -----
    window = mem.malloc(1024)          # remote-accessible region
    scratch = mem.malloc(1024)
    arrived = lapi.counter("arrived")  # target-side completion counter
    word = mem.malloc(8)               # for the atomic example
    mem.write_i64(word, 1000 * rank)

    def histogram_handler(t, src, uhdr, udata_len):
        """Header handler: name the buffer, log, request completion."""
        print(f"[{t.now():9.1f}us] rank {t.rank}: AM from {src},"
              f" uhdr={uhdr!r}, {udata_len} data bytes")

        def completion(t2, info):
            print(f"[{t2.now():9.1f}us] rank {t2.rank}: completion"
                  f" handler ran (info={info!r})")
        return scratch, completion, "demo"

    am_id = lapi.register_handler(histogram_handler)
    yield from lapi.gfence()           # everyone is set up

    if rank == 0:
        # --- one-sided put: no receive needed at the target ----------
        mem.write(window, b"greetings from rank 0!".ljust(32))
        t0 = task.now()
        yield from lapi.put(1, 32, window, window, tgt_cntr=arrived.id)
        print(f"[{task.now():9.1f}us] rank 0: put returned after"
              f" {task.now() - t0:.1f}us (pipeline latency)")

        # --- active message with payload ------------------------------
        yield from lapi.amsend(1, am_id, b"hdr-bytes", b"x" * 100, 100)

        # --- atomic read-modify-write ---------------------------------
        prev = yield from lapi.rmw_sync(RmwOp.FETCH_AND_ADD, 1, word, 5)
        print(f"[{task.now():9.1f}us] rank 0: fetch-and-add on rank 1"
              f" returned previous value {prev}")

        # --- fence: all my transfers are now complete remotely --------
        yield from lapi.fence()
        print(f"[{task.now():9.1f}us] rank 0: fence complete")
    else:
        # The target just waits on its counter -- fully one-sided.
        yield from lapi.waitcntr(arrived, 1)
        data = mem.read(window, 32).rstrip()
        print(f"[{task.now():9.1f}us] rank 1: counter fired,"
              f" window = {data!r}")

    yield from lapi.gfence()
    if rank == 1:
        # --- get: pull data back without rank 0 doing anything -------
        yield from lapi.get_sync(0, 32, window, scratch)
        print(f"[{task.now():9.1f}us] rank 1: got"
              f" {mem.read(scratch, 32).rstrip()!r} via LAPI_Get")
        print(f"[{task.now():9.1f}us] rank 1: atomic word is now"
              f" {mem.read_i64(word)}")
    yield from lapi.gfence()
    return task.now()


if __name__ == "__main__":
    cluster = Cluster(nnodes=2)
    finish_times = cluster.run_job(main, stacks=("lapi",))
    print(f"\njob finished at {max(finish_times):.1f} virtual"
          " microseconds")
    s = cluster.nodes[0].adapter
    print(f"node 0 adapter: {s.packets_sent} packets sent,"
          f" {s.packets_received} received")
