#!/usr/bin/env python
"""Mini Figure 2: LAPI vs MPI bandwidth at a handful of sizes.

A fast version of the full ``benchmarks/bench_fig2_bandwidth.py``
sweep, showing the three curves' character in a few seconds: LAPI's
fast rise, default MPI's eager-to-rendezvous kink above 4 KB, and the
MP_EAGER_LIMIT=65536 setting removing it.

Run:  python examples/bandwidth_comparison.py
"""

from repro.bench.bandwidth import lapi_bandwidth_point, \
    mpl_bandwidth_point

SIZES = [256, 1024, 4096, 8192, 32768, 131072, 1048576]

if __name__ == "__main__":
    print(f"{'bytes':>9} {'LAPI':>8} {'MPI 4K':>8} {'MPI 64K':>8}"
          "   [MB/s]")
    for n in SIZES:
        lapi = lapi_bandwidth_point(n)
        mpi_d = mpl_bandwidth_point(n)
        mpi_e = mpl_bandwidth_point(n, eager_limit=65536)
        kink = "  <- rendezvous kink" if n == 8192 else ""
        print(f"{n:9d} {lapi:8.1f} {mpi_d:8.1f} {mpi_e:8.1f}{kink}")
    print("\nLAPI rises much faster (paper: half-peak at 8KB vs 23KB);"
          "\nthe 64K eager limit removes the default curve's kink.")
