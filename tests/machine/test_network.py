"""Unit tests for packets, routing, switch, and adapters."""

import pytest

from repro.errors import NetworkError
from repro.machine import (
    Adapter,
    Packet,
    SerialResource,
    Switch,
    Topology,
)
from repro.machine.config import SP_1998
from repro.sim import RngRegistry, Simulator


def make_packet(src=0, dst=1, payload=b"x" * 4, kind="data", proto="lapi",
                header=48):
    return Packet(src=src, dst=dst, proto=proto, kind=kind,
                  header_bytes=header, payload=payload)


class TestPacket:
    def test_size(self):
        pkt = make_packet(payload=b"abcd")
        assert pkt.size == 52

    def test_unique_uids(self):
        assert make_packet().uid != make_packet().uid

    def test_uids_restart_per_cluster(self):
        # Trace parity between serial and forked-worker runs depends
        # on uid numbering being a function of the cluster's own
        # history, not of earlier clusters in the process.
        from repro.machine import Cluster

        Cluster(nnodes=2)
        first = make_packet().uid
        Cluster(nnodes=2)
        assert make_packet().uid == first == 0

    def test_validate_loop(self):
        with pytest.raises(NetworkError):
            make_packet(src=1, dst=1).validate(1024)

    def test_validate_oversize(self):
        with pytest.raises(NetworkError):
            make_packet(payload=b"x" * 1000).validate(1024)

    def test_validate_negative_node(self):
        with pytest.raises(NetworkError):
            make_packet(src=-1).validate(1024)

    def test_validate_headerless(self):
        with pytest.raises(NetworkError):
            make_packet(header=0).validate(1024)


class TestSerialResource:
    def test_idle_service(self):
        r = SerialResource("l")
        assert r.occupy(10.0, 2.0) == 12.0

    def test_queueing(self):
        r = SerialResource("l")
        assert r.occupy(0.0, 5.0) == 5.0
        # Second request at t=1 queues behind the first.
        assert r.occupy(1.0, 5.0) == 10.0

    def test_idle_gap_resets(self):
        r = SerialResource("l")
        r.occupy(0.0, 1.0)
        assert r.occupy(100.0, 1.0) == 101.0

    def test_negative_duration_rejected(self):
        with pytest.raises(NetworkError):
            SerialResource("l").occupy(0.0, -1.0)

    def test_utilization(self):
        r = SerialResource("l")
        r.occupy(0.0, 5.0)
        assert r.utilization(10.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0


class TestTopology:
    def test_group_assignment(self):
        topo = Topology.build(8, SP_1998)  # group_size 4
        assert topo.group_of(0) == 0
        assert topo.group_of(3) == 0
        assert topo.group_of(4) == 1
        assert topo.ngroups == 2

    def test_same_group_single_route(self):
        topo = Topology.build(8, SP_1998)
        routes = topo.routes(0, 1, SP_1998)
        assert len(routes) == 1
        assert not routes[0].crosses_core
        assert len(routes[0].links) == 2

    def test_cross_group_multipath(self):
        topo = Topology.build(8, SP_1998)
        routes = topo.routes(0, 5, SP_1998)
        assert len(routes) == SP_1998.switch_mid_count
        assert all(r.crosses_core for r in routes)
        assert all(len(r.links) == 4 for r in routes)
        # Routes are disjoint in the middle stage.
        mids = {r.links[1] for r in routes}
        assert len(mids) == len(routes)

    def test_route_to_self_rejected(self):
        topo = Topology.build(4, SP_1998)
        with pytest.raises(NetworkError):
            topo.routes(2, 2, SP_1998)

    def test_node_out_of_range(self):
        topo = Topology.build(4, SP_1998)
        with pytest.raises(NetworkError):
            topo.group_of(4)

    def test_cross_group_longer_than_intra(self):
        topo = Topology.build(8, SP_1998)
        intra = topo.routes(0, 1, SP_1998)[0]
        inter = topo.routes(0, 7, SP_1998)[0]
        assert inter.fixed_latency > intra.fixed_latency


def build_fabric(nnodes=2, config=SP_1998, seed=1):
    sim = Simulator()
    rng = RngRegistry(seed=seed)
    switch = Switch(sim, nnodes, config, rng)
    adapters = []
    for i in range(nnodes):
        ad = Adapter(sim, i, config)
        ad.connect(switch)
        adapters.append(ad)
    return sim, switch, adapters


class TestSwitchDelivery:
    def test_packet_travels_end_to_end(self):
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        pkt = make_packet()
        switch.route(pkt)
        sim.run()
        assert client.pending == 1
        ok, got = client.rx.try_get()
        assert ok and got is pkt
        assert switch.packets_routed == 1

    def test_delivery_takes_positive_time(self):
        sim, switch, (a0, a1) = build_fabric()
        a1.attach_client("lapi")
        switch.route(make_packet())
        end = sim.run()
        assert end > 0.0

    def test_unattached_protocol_raises(self):
        sim, switch, (a0, a1) = build_fabric()
        switch.route(make_packet(proto="mystery"))
        with pytest.raises(NetworkError):
            sim.run()

    def test_unattached_node_raises(self):
        sim = Simulator()
        switch = Switch(sim, 2, SP_1998, RngRegistry())
        with pytest.raises(NetworkError):
            switch.route(make_packet())

    def test_double_attach_rejected(self):
        sim, switch, (a0, a1) = build_fabric()
        dup = Adapter(sim, 0, SP_1998)
        with pytest.raises(NetworkError):
            dup.connect(switch)

    def test_loss_injection(self):
        cfg = SP_1998.replace(loss_rate=1.0)
        sim, switch, (a0, a1) = build_fabric(config=cfg)
        client = a1.attach_client("lapi")
        switch.route(make_packet())
        sim.run()
        assert switch.packets_lost == 1
        assert client.pending == 0

    def test_same_link_packets_keep_order(self):
        # Two nodes in one group share a single route: strict FIFO.
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        pkts = [make_packet(payload=bytes([i]) * 8) for i in range(10)]
        for p in pkts:
            switch.route(p)
        sim.run()
        got = client.rx.drain()
        assert [p.uid for p in got] == [p.uid for p in pkts]

    def test_cross_group_can_reorder(self):
        # With 4 disjoint routes and jitter, a burst of packets between
        # groups arrives out of order for some seed.
        cfg = SP_1998.replace(route_jitter=2.0)
        reordered = False
        for seed in range(5):
            sim, switch, adapters = [None] * 3
            sim = Simulator()
            rng = RngRegistry(seed=seed)
            switch = Switch(sim, 8, cfg, rng)
            ads = []
            for i in range(8):
                ad = Adapter(sim, i, cfg)
                ad.connect(switch)
                ads.append(ad)
            client = ads[5].attach_client("lapi")
            pkts = [make_packet(src=0, dst=5, payload=bytes(16))
                    for _ in range(20)]
            for p in pkts:
                switch.route(p)
            sim.run()
            got = client.rx.drain()
            if [p.uid for p in got] != [p.uid for p in pkts]:
                reordered = True
                break
        assert reordered, "multipath routing never reordered packets"


class TestAdapterPaths:
    def test_inject_through_tx_engine(self):
        from repro.machine import Cpu
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        cpu = Cpu(sim, 0, SP_1998)

        def body(thread):
            yield from a0.inject(thread, make_packet())
            return sim.now

        t = cpu.spawn(body)
        sim.run()
        assert client.pending == 1
        assert a0.packets_sent == 1

    def test_inject_async_control(self):
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        assert a0.inject_async(make_packet(kind="ack", payload=b""))
        sim.run()
        assert client.pending == 1

    def test_rx_fifo_overflow_drops(self):
        cfg = SP_1998.replace(adapter_rx_fifo=4)
        sim, switch, (a0, a1) = build_fabric(config=cfg)
        client = a1.attach_client("lapi")
        for _ in range(10):
            switch.route(make_packet())
        sim.run()
        assert client.pending == 4
        assert a1.rx_dropped == 6

    def test_interrupt_fires_once_per_burst(self):
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        fired = []
        client.on_arrival = lambda: fired.append(sim.now)
        for _ in range(5):
            switch.route(make_packet())
        sim.run()
        assert len(fired) == 1  # coalesced until re-armed

    def test_rearm_after_drain_fires_again(self):
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        fired = []
        client.on_arrival = lambda: fired.append(len(client.rx))
        switch.route(make_packet())
        sim.run()
        client.rx.drain()
        client.arm_interrupt()
        switch.route(make_packet())
        sim.run()
        assert len(fired) == 2

    def test_rearm_with_pending_fires_immediately(self):
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        fired = []
        switch.route(make_packet())
        switch.route(make_packet())
        sim.run()
        client.on_arrival = lambda: fired.append(sim.now)
        client.arm_interrupt()  # packets already waiting
        assert fired == [sim.now]

    def test_polling_mode_never_notifies(self):
        sim, switch, (a0, a1) = build_fabric()
        client = a1.attach_client("lapi")
        client.interrupts_enabled = False
        fired = []
        client.on_arrival = lambda: fired.append(1)
        switch.route(make_packet())
        sim.run()
        assert fired == []
        assert client.pending == 1
