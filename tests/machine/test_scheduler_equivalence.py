"""Golden equivalence: calendar scheduler vs the heap scheduler.

The calendar queue must be an invisible wall-clock optimization: every
virtual-time observable -- final clocks, event counts, rendered
metrics blocks, span streams, per-rank results -- must be
byte-identical to the binary-heap scheduler on the same workload.
These tests run real bench workloads (reduced Figure 2 and Table 2
sweeps) and machine jobs under both backends and diff everything.
"""

import pytest

from repro.bench import runner
from repro.bench.bandwidth import run_fig2
from repro.bench.latency import run_table2
from repro.machine import Cluster
from repro.machine.config import SP_1998
from repro.machine.stats import snapshot
from repro.sim import SCHEDULERS, Simulator


@pytest.fixture
def obs_off():
    yield
    runner.configure_observability()


def _ring_job(nnodes, scheduler, topology="sp"):
    """A LAPI ring put + fences; returns every observable surface."""
    cfg = (SP_1998 if topology == "sp"
           else SP_1998.replace(topology=topology))
    cluster = Cluster(nnodes, config=cfg, seed=0xE0, scheduler=scheduler)

    def main(task):
        lapi = task.lapi
        mem = task.memory
        window = mem.malloc(8192)
        src = mem.malloc(8192)
        yield from lapi.gfence()
        right = (task.rank + 1) % task.size
        yield from lapi.put(right, 8192, window, src)
        yield from lapi.fence()
        yield from lapi.gfence()
        return task.now()

    results = cluster.run_job(main, stacks=("lapi",))
    return {
        "results": results,
        "now": cluster.sim.now,
        "events": cluster.sim.events_processed,
        "metrics": cluster.metrics.render(),
        "stats": snapshot(cluster).render(),
    }


class TestJobEquivalence:
    @pytest.mark.parametrize("nnodes", [2, 8])
    def test_ring_identical_across_schedulers(self, nnodes):
        heap = _ring_job(nnodes, "heap")
        cal = _ring_job(nnodes, "calendar")
        assert heap == cal

    @pytest.mark.parametrize("topology", ["fattree", "dragonfly"])
    def test_ring_identical_on_scale_fabrics(self, topology):
        heap = _ring_job(8, "heap", topology=topology)
        cal = _ring_job(8, "calendar", topology=topology)
        assert heap == cal


def _bench_suite():
    """Reduced fig2 + table2 under full observability."""
    fig2 = run_fig2(sizes=[1024, 16384])
    fig2_caps = runner.drain_captures()
    table2 = run_table2()
    table2_caps = runner.drain_captures()
    caps = fig2_caps + table2_caps
    return {
        "fig2_render": fig2.render(),
        "table2_render": table2.render(),
        "metrics": [c.metrics_block for c in caps],
        "virtual_us": [c.now for c in caps],
        "events": [c.events for c in caps],
        "spans": [c.spans for c in caps],
    }


class TestBenchEquivalence:
    def test_fig2_and_table2_byte_identical(self, obs_off, monkeypatch):
        """The acceptance check: real bench experiments produce
        byte-identical tables, metrics blocks, virtual times, and span
        streams whichever scheduler the kernel runs on."""
        runner.configure_observability(metrics=True, capture=True,
                                       spans=True)
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        heap = _bench_suite()
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "calendar")
        cal = _bench_suite()
        assert heap["spans"][0], "expected span records"
        assert heap == cal


class TestKernelEdgeCases:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_timeout_at_fires_on_exact_float(self, scheduler):
        # 0.1 + 0.2 is the canonical non-representable sum; timeout_at
        # must pin the due time to the given float exactly, with no
        # now + delay round trip perturbing it.
        sim = Simulator(scheduler=scheduler)
        due = 0.1 + 0.2
        fired = []
        sim.timeout_at(due).callbacks.append(
            lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [due]

    def test_timeout_at_identical_across_schedulers(self):
        ends = {}
        for scheduler in SCHEDULERS:
            sim = Simulator(scheduler=scheduler)
            for k in range(40):
                sim.timeout_at(k * 0.7 + 0.1)
            ends[scheduler] = (sim.run(), sim.events_processed)
        assert ends["heap"] == ends["calendar"]

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_equal_timestamp_fifo(self, scheduler):
        # Callbacks scheduled for the same instant fire in scheduling
        # order -- from the past, and from within that instant.
        sim = Simulator(scheduler=scheduler)
        order = []
        for i in range(5):
            sim.call_at(10.0, order.append, ("pre", i))

        def at_ten(_):
            order.append(("mid", 0))
            for j in range(3):
                sim.call_at(10.0, order.append, ("post", j))

        sim.call_at(10.0, at_ten, None)
        sim.run()
        assert order == ([("pre", i) for i in range(5)]
                         + [("mid", 0)]
                         + [("post", j) for j in range(3)])

    def test_equal_timestamp_order_matches_heap(self):
        # A mixed brew of same-instant and future wakeups: the full
        # callback sequence must be identical across schedulers.
        def brew(scheduler):
            sim = Simulator(scheduler=scheduler)
            log = []

            def tick(label):
                log.append((sim.now, label))
                if label[0] < 3:
                    sim.call_at(sim.now, tick, (label[0] + 1, "same"))
                    sim.call_at(sim.now + 0.5, tick,
                                (label[0] + 1, "later"))

            for i in range(4):
                sim.call_at(float(i % 2), tick, (0, f"seed{i}"))
            sim.run()
            return log

        assert brew("heap") == brew("calendar")

    def test_unknown_scheduler_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="scheduler"):
            Simulator(scheduler="fifo")

    def test_env_var_selects_scheduler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "heap")
        assert Simulator()._cal is None
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", "calendar")
        assert Simulator()._cal is not None
