"""Tests for cluster assembly and SPMD job execution."""

import pytest

from repro.errors import MachineError
from repro.machine import Cluster
from repro.machine.config import SP_1998


class TestConstruction:
    def test_minimum_size(self):
        with pytest.raises(MachineError):
            Cluster(nnodes=0)

    def test_nodes_and_switch_wired(self):
        c = Cluster(nnodes=3)
        assert c.nnodes == 3
        assert all(n.adapter.switch is c.switch for n in c.nodes)

    def test_invalid_config_rejected(self):
        bad = SP_1998.replace(loss_rate=2.0)
        with pytest.raises(ValueError):
            Cluster(nnodes=2, config=bad)


class TestRunJob:
    def test_returns_per_rank_values(self):
        def main(task):
            yield task.cluster.sim.timeout(1.0)
            return task.rank * 10

        assert Cluster(nnodes=3).run_job(main, stacks=()) == [0, 10, 20]

    def test_ntasks_subset(self):
        def main(task):
            yield task.cluster.sim.timeout(0.0)
            return task.size

        results = Cluster(nnodes=4).run_job(main, ntasks=2, stacks=())
        assert results == [2, 2]

    def test_ntasks_over_cluster_rejected(self):
        with pytest.raises(MachineError):
            Cluster(nnodes=2).run_job(lambda t: iter(()), ntasks=3)

    def test_unknown_stack_rejected(self):
        with pytest.raises(MachineError, match="unknown stacks"):
            Cluster(nnodes=1).run_job(lambda t: iter(()),
                                      stacks=("pvm",))

    def test_unknown_ga_backend_rejected(self):
        with pytest.raises(MachineError, match="backend"):
            Cluster(nnodes=1).run_job(lambda t: iter(()),
                                      ga_backend="tcp")

    def test_deadlock_detected(self):
        def main(task):
            # Wait on an event that never fires.
            yield task.cluster.sim.event()

        with pytest.raises(MachineError, match="deadlock"):
            Cluster(nnodes=1).run_job(main, stacks=())

    def test_virtual_time_budget(self):
        def main(task):
            yield task.cluster.sim.timeout(10_000.0)

        with pytest.raises(MachineError, match="budget"):
            Cluster(nnodes=1).run_job(main, stacks=(), until=100.0)

    def test_max_events_budget(self):
        def main(task):
            while True:
                yield task.cluster.sim.timeout(1.0)

        with pytest.raises(MachineError, match="max_events"):
            Cluster(nnodes=1).run_job(main, stacks=(), max_events=100)

    def test_task_error_propagates(self):
        def main(task):
            yield task.cluster.sim.timeout(1.0)
            raise RuntimeError("task exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            Cluster(nnodes=2).run_job(main, stacks=())

    def test_two_jobs_same_cluster(self):
        c = Cluster(nnodes=2)

        def main(task):
            yield c.sim.timeout(5.0)
            return task.now()

        first = c.run_job(main, stacks=())
        second = c.run_job(main, stacks=())
        assert second[0] > first[0]  # virtual clock persists

    def test_max_events_is_per_call(self):
        # Regression: the budget is relative to the event counter at
        # entry.  Historically the ceiling was absolute, so a second
        # job inherited the first's event count and a back-to-back run
        # with the same max_events died spuriously.
        c = Cluster(nnodes=2)

        def main(task):
            for _ in range(20):
                yield c.sim.timeout(1.0)
            return task.rank

        budget = 400
        assert c.run_job(main, stacks=(), max_events=budget) == [0, 1]
        assert c.sim.events_processed > 40  # first job consumed events
        assert c.run_job(main, stacks=(), max_events=budget) == [0, 1]

    def test_max_events_budget_still_enforced_on_second_job(self):
        c = Cluster(nnodes=1)

        def short(task):
            yield c.sim.timeout(1.0)

        def endless(task):
            while True:
                yield c.sim.timeout(1.0)

        c.run_job(short, stacks=())
        with pytest.raises(MachineError, match="max_events"):
            c.run_job(endless, stacks=(), max_events=50)


class TestOob:
    def test_allgather_accumulates(self):
        c = Cluster(nnodes=2)
        t1 = c.oob_allgather("k", 0, "a", 2)
        assert t1 == {0: "a"}
        t2 = c.oob_allgather("k", 1, "b", 2)
        assert t2 == {0: "a", 1: "b"}
        assert t1 is t2  # shared map

    def test_oversubscription_rejected(self):
        c = Cluster(nnodes=2)
        c.oob_allgather("k", 0, 1, 1)
        with pytest.raises(MachineError):
            c.oob_allgather("k", 1, 2, 1)


class TestTask:
    def test_now_and_memory(self):
        c = Cluster(nnodes=1)

        def main(task):
            addr = task.memory.malloc(8)
            task.memory.write_i64(addr, 7)
            yield c.sim.timeout(3.0)
            return task.now(), task.memory.read_i64(addr)

        now, val = c.run_job(main, stacks=())[0]
        assert now == 3.0
        assert val == 7
