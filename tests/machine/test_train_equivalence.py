"""Golden equivalence: SoA packet trains vs the per-packet object path.

The struct-of-arrays train lane (``MachineConfig.soa_trains``) collapses
a peeled train interior into one :class:`~repro.machine.train.PacketTrain`
record with columnar state and three bound-method stage callbacks.  Like
every fast lane in this repo it must be an invisible wall-clock
optimization: every virtual-time observable -- final clocks, kernel
event counts, rendered metrics blocks, bench tables, span streams -- is
diffed here between lane-on and lane-off runs of the same workload, and
each condition that must disengage the lane (loss, fault schedules,
multipath fabrics, span tracing, structured tracing) is pinned down via
the adapter's ``soa_*`` counters.  The whole suite runs under both
pending-queue backends.
"""

import pytest

from repro.bench import runner
from repro.bench.bandwidth import run_fig2
from repro.bench.latency import run_table2
from repro.faults import FaultSchedule, LinkOutage
from repro.machine import Cluster
from repro.machine.config import SP_1998
from repro.obs import SpanRecorder
from repro.sim import SCHEDULERS, Tracer

NBYTES = 262144  # enough packets for several trains


def _put_job(nbytes, target):
    def main(task):
        lapi = task.lapi
        mem = task.memory
        buf = mem.malloc(nbytes)
        yield from lapi.gfence()
        if task.rank == 0:
            src = mem.malloc(nbytes)
            cmpl = lapi.counter()
            yield from lapi.put(target, nbytes, buf, src,
                                cmpl_cntr=cmpl)
            yield from lapi.waitcntr(cmpl, 1)
        yield from lapi.gfence()
    return main


def _run(config, job, nnodes=2, *, scheduler="calendar", spans=False,
         faults=None, trace=False, seed=0x50A):
    cluster = Cluster(nnodes=nnodes, config=config, seed=seed,
                      scheduler=scheduler,
                      spans=SpanRecorder() if spans else None,
                      trace=Tracer() if trace else None,
                      faults=faults)
    cluster.run_job(job, stacks=("lapi",), interrupt_mode=False)
    return cluster


def _soa_packets(cluster):
    return sum(n.adapter.soa_packets for n in cluster.nodes)


def _soa_fallbacks(cluster):
    return sum(n.adapter.soa_fallbacks for n in cluster.nodes)


def _train_packets(cluster):
    return sum(n.adapter.train_packets for n in cluster.nodes)


def _observables(cluster):
    """Every surface the equivalence contract covers (pools excluded:
    pool hit counts legitimately differ between lane-on and lane-off)."""
    return {
        "now": cluster.sim.now,
        "events": cluster.sim.events_processed,
        "metrics": cluster.metrics.render(),
        "spans": (cluster.spans.span_dicts()
                  if cluster.spans is not None else None),
    }


def _assert_soa_equivalent(config, job, nnodes=2, *,
                           scheduler="calendar", spans=False,
                           faults_factory=None):
    """Same job with the SoA lane on/off: identical physics; the off
    run must never touch the lane.  Returns the lane-on cluster."""
    clusters = {}
    obs = {}
    for flag in (True, False):
        c = _run(config.replace(soa_trains=flag), job, nnodes,
                 scheduler=scheduler, spans=spans,
                 faults=faults_factory() if faults_factory else None)
        clusters[flag] = c
        obs[flag] = _observables(c)
    assert obs[True] == obs[False]
    assert _soa_packets(clusters[False]) == 0
    return clusters[True]


class TestSoaEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_canonical_put_identical_and_engaged(self, scheduler):
        on = _assert_soa_equivalent(SP_1998, _put_job(NBYTES, 1),
                                    scheduler=scheduler)
        # The clean 2-node put is the canonical train workload; if the
        # SoA lane does not engage there, it is dead code.
        assert _soa_packets(on) > 0
        assert _soa_packets(on) == _train_packets(on)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_lossy_config_disengages(self, scheduler):
        # Loss disables train peeling entirely (packet identity is
        # needed for every loss draw), so the SoA lane never sees a
        # train to collapse.
        cfg = SP_1998.replace(loss_rate=0.02)
        on = _assert_soa_equivalent(cfg, _put_job(NBYTES, 1),
                                    scheduler=scheduler)
        assert _soa_packets(on) == 0
        assert _train_packets(on) == 0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_fault_schedule_disengages(self, scheduler):
        # A mid-run outage forces retransmissions; the faults judge
        # needs per-packet draws, so peeling (and the lane) must stay
        # off for the whole run.
        def sched():
            return FaultSchedule([LinkOutage(src=0, dst=1,
                                             start=200.0, end=400.0)])
        on = _assert_soa_equivalent(SP_1998, _put_job(NBYTES, 1),
                                    faults_factory=sched,
                                    scheduler=scheduler)
        assert _soa_packets(on) == 0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_fattree_multipath_disengages(self, scheduler):
        # Cross-pod fat-tree pairs have multiple candidate routes (8 of
        # them at 32 nodes); the per-packet RNG draw needs packet
        # identity, so the train peel (and with it the SoA lane) must
        # fall back.
        cfg = SP_1998.replace(topology="fattree")
        on = _assert_soa_equivalent(cfg, _put_job(NBYTES, 16),
                                    nnodes=32, scheduler=scheduler)
        assert len(on.switch.route_candidates(0, 16)) > 1
        assert _soa_packets(on) == 0

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_span_tracing_disengages_but_keeps_trains(self, scheduler):
        # Span tracing observes per-packet identity mid-flight
        # (bind_packets on the interior), so the SoA lane must yield to
        # the PR-2 timer train -- which stays engaged -- and the span
        # streams must be byte-identical with the lane flag on or off.
        on = _assert_soa_equivalent(SP_1998, _put_job(NBYTES, 1),
                                    spans=True, scheduler=scheduler)
        assert on.spans is not None and on.spans.span_dicts()
        assert _soa_packets(on) == 0
        assert _soa_fallbacks(on) > 0
        assert _train_packets(on) > 0

    def test_structured_tracing_disengages(self):
        # A Tracer wants a record per pipeline hop; the lane skips
        # those hops, so it must fall back when tracing is armed.
        on = _run(SP_1998, _put_job(NBYTES, 1), trace=True)
        off = _run(SP_1998.replace(soa_trains=False),
                   _put_job(NBYTES, 1), trace=True)
        assert on.sim.now == off.sim.now
        assert on.sim.events_processed == off.sim.events_processed
        assert _soa_packets(on) == 0
        assert _soa_fallbacks(on) > 0

    def test_fallback_counter_stays_zero_on_clean_engage(self):
        on = _run(SP_1998, _put_job(NBYTES, 1))
        assert _soa_fallbacks(on) == 0


def _flip_soa(flag):
    """Flip the shared SP_1998 instance (frozen dataclass) in place.

    The bench experiments bind the singleton as their default config,
    so this is the only way to steer them without re-plumbing every
    entry point; tests restore the field in ``finally``.
    """
    object.__setattr__(SP_1998, "soa_trains", flag)


def _bench_suite():
    """Reduced fig2 + table2 under full observability."""
    fig2 = run_fig2(sizes=[1024, 16384])
    fig2_caps = runner.drain_captures()
    table2 = run_table2()
    table2_caps = runner.drain_captures()
    caps = fig2_caps + table2_caps
    return {
        "fig2_render": fig2.render(),
        "table2_render": table2.render(),
        "metrics": [c.metrics_block for c in caps],
        "virtual_us": [c.now for c in caps],
        "events": [c.events for c in caps],
        "spans": [c.spans for c in caps],
    }


class TestBenchEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_fig2_and_table2_byte_identical(self, scheduler,
                                            monkeypatch):
        """The acceptance check: real bench experiments produce
        byte-identical tables, metrics blocks, virtual times, and span
        streams with the SoA lane on or off, under both schedulers."""
        monkeypatch.setenv("REPRO_SIM_SCHEDULER", scheduler)
        runner.configure_observability(metrics=True, capture=True,
                                       spans=True)
        try:
            _flip_soa(True)
            on = _bench_suite()
            _flip_soa(False)
            off = _bench_suite()
        finally:
            _flip_soa(True)
            runner.configure_observability()
        assert on["spans"][0], "expected span records"
        assert on == off
